//! Kill-the-primary chaos campaign over the replicated auditor.
//!
//! Each seed draws a full failure scenario from the fault plane — op
//! count, kill point, a compaction racing the kill, a partition window
//! putting one follower into catch-up, probabilistic ship loss, and an
//! optional torn primary append at the kill — then:
//!
//! 1. runs a crash-free **reference** auditor over the same op
//!    schedule, checkpointing state after every op;
//! 2. runs the **cluster**: a journaled primary shipping to two
//!    followers under `Quorum(1)` through seeded
//!    [`FaultyLink`](alidrone::chaos::FaultyLink)s, killing the
//!    primary at the drawn offset;
//! 3. promotes the most-caught-up follower (fence → replay → new
//!    epoch) and asserts:
//!    * the promoted state is **byte-identical to a reference
//!      checkpoint** (followers hold whole-record journal prefixes);
//!    * **zero acked-then-lost records**: every op the dead primary
//!      acknowledged under `Quorum(1)` is in the promoted state;
//!    * the deposed primary is **fenced** — its next durable mutation
//!      fails with a typed error under any policy;
//!    * post-promotion, the surviving follower converges to a journal
//!      image byte-identical to the new primary's, and the quiesced
//!      scrape reconciles exactly (zero lag, matching acked offsets,
//!      the new epoch, one failover).
//!
//! `FAILOVER_SEEDS=<n>` reduces the campaign (the `make failover` /
//! CI fast path); the default is 40 seeds.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use alidrone::chaos::{FaultPlane, FaultyLink, PartitionSwitch};
use alidrone::core::journal::{MemBackend, StorageBackend};
use alidrone::core::repl::{
    Cluster, ClusterConfig, Follower, InProcessLink, ReplicationPolicy, Replicator,
};
use alidrone::core::{Auditor, AuditorConfig, ProtocolError};
use alidrone::crypto::rng::XorShift64;
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::{Distance, GeoPoint, NoFlyZone};
use alidrone::obs::Obs;

/// Per-seed key cache (512-bit keygen in debug builds is slow).
fn key(seed: u64) -> RsaPrivateKey {
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn zone(i: usize) -> NoFlyZone {
    NoFlyZone::new(
        GeoPoint::new(40.0 + i as f64 * 0.02, -88.2 + (i % 7) as f64 * 0.01).unwrap(),
        Distance::from_meters(60.0 + i as f64),
    )
}

/// Seeds to run: `FAILOVER_SEEDS` for the reduced `make failover`
/// sweep, 40 (≥ the acceptance floor of 30) by default.
fn campaign_seeds() -> u64 {
    std::env::var("FAILOVER_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// One scenario drawn deterministically from the plane.
#[derive(Debug)]
struct Plan {
    n_ops: usize,
    kill_at: usize,
    compact_at: Option<usize>,
    /// Ops during which follower 1's link is cut (catch-up pressure;
    /// may still be cut at the kill — the "kill during catch-up" case).
    partition: Option<(usize, usize)>,
    drop_p: f64,
    /// Tear the primary's final journal append (kill mid-record).
    tear_on_kill: bool,
}

impl Plan {
    fn draw(plane: &FaultPlane) -> Plan {
        let s = plane.stream("failover.plan");
        let n_ops = 10 + (s.next_u64() % 8) as usize;
        let kill_at = 2 + (s.next_u64() % (n_ops as u64 - 2)) as usize;
        let compact_at = s
            .chance(0.6)
            .then(|| (s.next_u64() % n_ops as u64) as usize);
        let partition = s.chance(0.5).then(|| {
            let start = (s.next_u64() % n_ops as u64) as usize;
            let len = 1 + (s.next_u64() % 5) as usize;
            (start, start + len)
        });
        let drop_p = if s.chance(0.4) { 0.15 } else { 0.0 };
        let tear_on_kill = s.chance(0.5);
        Plan {
            n_ops,
            kill_at,
            compact_at,
            partition,
            drop_p,
            tear_on_kill,
        }
    }
}

/// Applies op `i` through the durable (quorum-gated) API. Every op is
/// exactly one journal record, so reference checkpoints align with
/// whole-record follower prefixes.
fn apply_op(auditor: &Auditor, i: usize) -> Result<(), ProtocolError> {
    if i % 5 == 3 {
        auditor
            .register_drone_durable(key(2).public_key().clone(), key(1).public_key().clone())
            .map(|_| ())
    } else {
        auditor.register_zone_durable(zone(i)).map(|_| ())
    }
}

/// The crash-free reference: same ops, no faults, no replication.
/// Returns state checkpoints; `checkpoints[m]` is the state after the
/// first `m` ops.
fn reference_checkpoints(plan: &Plan) -> Vec<Vec<u8>> {
    let (auditor, _) = Auditor::recover(
        Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
    )
    .expect("fresh reference recovers");
    let mut checkpoints = vec![auditor.snapshot()];
    for i in 0..plan.n_ops {
        if plan.compact_at == Some(i) {
            auditor.compact_journal().expect("reference compaction");
        }
        apply_op(&auditor, i).expect("reference op");
        checkpoints.push(auditor.snapshot());
    }
    checkpoints
}

/// One full campaign run. Returns an outcome log so failing seeds can
/// be replayed and compared bit-for-bit.
fn campaign_run(seed: u64) -> Vec<String> {
    let mut log = Vec::new();
    let plane = FaultPlane::new(seed);
    let plan = Plan::draw(&plane);
    log.push(format!("{plan:?}"));
    let checkpoints = reference_checkpoints(&plan);

    // --- cluster under test ------------------------------------------
    let obs = Obs::noop();
    let primary_backend = Arc::new(MemBackend::new());
    let (primary, _) = Auditor::recover_with_obs(
        Arc::clone(&primary_backend) as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
        &obs,
    )
    .expect("primary recovers");
    let primary = Arc::new(primary);
    let followers: Vec<Arc<Follower>> = (0..2)
        .map(|_| Arc::new(Follower::new(Arc::new(MemBackend::new()))))
        .collect();
    let mut switches: Vec<PartitionSwitch> = Vec::new();
    let mut replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1));
    for (i, follower) in followers.iter().enumerate() {
        let link = FaultyLink::new(
            InProcessLink::new(Arc::clone(follower)),
            &plane,
            &format!("repl.f{i}"),
        )
        .drop_with(plan.drop_p);
        switches.push(link.partition_switch());
        replicator = replicator.with_follower(format!("f{i}"), link);
    }
    primary.set_replicator(Arc::new(replicator));
    primary.begin_epoch(1).expect("epoch 1 replicates");

    // Ops until the kill, toggling the partition window on follower 1.
    let mut acked: Vec<usize> = Vec::new();
    for i in 0..plan.kill_at {
        if let Some((start, end)) = plan.partition {
            if i == start {
                switches[1].partition();
            }
            if i == end {
                switches[1].heal();
            }
        }
        if plan.compact_at == Some(i) {
            match primary.compact_journal() {
                Ok(()) => log.push(format!("op {i}: compacted")),
                Err(e) => log.push(format!("op {i}: compact err {e}")),
            }
        }
        match apply_op(&primary, i) {
            Ok(()) => {
                acked.push(i);
                log.push(format!("op {i}: acked"));
            }
            Err(e) => log.push(format!("op {i}: err {e}")),
        }
    }
    // Kill mid-record: the primary's final append tears. The op must
    // surface a typed error (never an ack), and the torn tail must die
    // with the primary.
    if plan.tear_on_kill {
        primary_backend.tear_next_append(4);
        match apply_op(&primary, plan.kill_at) {
            Ok(()) => panic!("seed {seed}: torn append was acked"),
            Err(e) => log.push(format!("kill op: torn err {e}")),
        }
    }

    // --- fail-stop kill + deterministic promotion --------------------
    // Designated follower: the most-caught-up one (with Quorum(1) it is
    // the only choice that can hold every acked record).
    let promote_idx = (0..followers.len())
        .max_by_key(|&i| followers[i].acked_offset())
        .expect("two followers");
    log.push(format!("promote f{promote_idx}"));
    let promoted_follower = Arc::clone(&followers[promote_idx]);
    // Fence FIRST: from here the dead primary's frames land Stale.
    promoted_follower.fence(2);
    let (promoted, report) = Auditor::recover_with_obs(
        Arc::clone(promoted_follower.backend()),
        AuditorConfig::default(),
        key(0),
        &obs,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: promotion replay failed: {e}"));
    assert!(
        !report.torn_tail,
        "seed {seed}: follower received a torn record"
    );
    log.push(format!("replayed {} records", report.records_applied));

    // Byte-identical to a crash-free reference checkpoint, and zero
    // acked-then-lost under Quorum(1).
    let promoted_state = promoted.snapshot();
    let m = (0..checkpoints.len())
        .find(|&m| checkpoints[m] == promoted_state)
        .unwrap_or_else(|| panic!("seed {seed}: promoted state matches no crash-free checkpoint"));
    log.push(format!("promoted at checkpoint {m}"));
    if let Some(&last_acked) = acked.last() {
        assert!(
            last_acked < m,
            "seed {seed}: acked-then-lost — op {last_acked} acked but promoted \
             state only covers {m} ops"
        );
    }

    // New epoch over the surviving follower; the deposed primary's
    // links still point at both followers.
    let survivor_idx = 1 - promote_idx;
    let survivor = Arc::clone(&followers[survivor_idx]);
    switches.iter().for_each(PartitionSwitch::heal);
    let new_replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1))
        .with_follower("survivor", InProcessLink::new(Arc::clone(&survivor)));
    promoted.set_replicator(Arc::new(new_replicator));
    promoted.begin_epoch(2).expect("epoch 2 replicates");
    assert_eq!(promoted.current_epoch(), 2, "seed {seed}");

    // The deposed primary is fenced: its next durable mutation fails
    // with a typed error (stale epoch once a fenced follower answers).
    match apply_op(&primary, plan.n_ops + 90) {
        Ok(()) => panic!("seed {seed}: deposed primary still acks writes"),
        Err(e) => {
            log.push(format!("deposed: {e}"));
            assert!(
                matches!(e, ProtocolError::Storage(_)),
                "seed {seed}: fencing must be a typed storage error, got {e}"
            );
        }
    }

    // The promoted primary keeps serving durable mutations. Resume
    // from checkpoint `m`: ops the dead primary journaled but never
    // got acked by a follower are exactly the ones a client would
    // retry against the new primary.
    for i in m..plan.n_ops {
        apply_op(&promoted, i)
            .unwrap_or_else(|e| panic!("seed {seed}: post-promotion op {i} failed: {e}"));
    }
    assert_eq!(
        promoted.snapshot(),
        *checkpoints.last().expect("checkpoints non-empty"),
        "seed {seed}: promoted primary must finish the schedule on the \
         reference state"
    );

    // Quiesced reconciliation: the survivor's journal image is
    // byte-identical to the new primary's, and the scrape agrees
    // exactly — zero lag, matching acked offset, epoch 2.
    let primary_image = promoted_follower
        .backend()
        .read()
        .expect("promoted journal readable");
    assert_eq!(
        survivor.image().expect("survivor readable"),
        primary_image,
        "seed {seed}: survivor diverged from the promoted primary"
    );
    let snap = obs.snapshot();
    assert_eq!(snap.gauges["repl.lag_bytes"], 0, "seed {seed}");
    assert_eq!(snap.gauges["repl.lag_records"], 0, "seed {seed}");
    assert_eq!(snap.gauges["repl.epoch"], 2, "seed {seed}");
    assert_eq!(
        snap.gauges["repl.acked_offset.survivor"],
        survivor.acked_offset() as i64,
        "seed {seed}"
    );
    log.push(format!(
        "quiesced end={} survivor_epoch={}",
        survivor.acked_offset(),
        survivor.current_epoch()
    ));
    log
}

/// The acceptance campaign: ≥30 seeds (default 40), each killing the
/// primary at a drawn offset — mid-record, mid-batch, during
/// compaction, during catch-up — with every invariant checked inside
/// [`campaign_run`].
#[test]
fn kill_the_primary_campaign() {
    let seeds = campaign_seeds();
    let mut compactions = 0usize;
    let mut catchup_kills = 0usize;
    let mut torn_kills = 0usize;
    for seed in 0..seeds {
        for line in campaign_run(seed) {
            if line.contains("compacted") {
                compactions += 1;
            }
            if line.contains("torn err") {
                torn_kills += 1;
            }
            if line.contains("promote f0") {
                catchup_kills += 1;
            }
        }
    }
    // The plan space must actually cover the interesting offsets.
    if seeds >= 30 {
        assert!(compactions > 0, "no seed compacted before the kill");
        assert!(torn_kills > 0, "no seed tore the final append");
        assert!(catchup_kills > 0, "no seed killed during catch-up");
    }
}

/// A failing (or any) seed replays its exact outcome log.
#[test]
fn failover_seeds_replay_deterministically() {
    for seed in [2u64, 17, 33] {
        assert_eq!(campaign_run(seed), campaign_run(seed), "seed {seed}");
    }
}

/// The packaged [`Cluster`] path: ops, kill-and-promote via
/// [`Cluster::kill_and_promote`], failover metrics on the scrape.
#[test]
fn packaged_cluster_survives_promotion() {
    let obs = Obs::noop();
    let mut cluster = Cluster::new(
        ClusterConfig {
            followers: 2,
            policy: ReplicationPolicy::Quorum(1),
        },
        AuditorConfig::default(),
        key(0),
        &obs,
    )
    .unwrap();
    for i in 0..6 {
        apply_op(cluster.primary(), i).unwrap();
    }
    let before = cluster.primary().snapshot();
    let old_primary = Arc::clone(cluster.primary());
    let promoted = cluster.kill_and_promote(0).unwrap();
    assert_eq!(promoted.snapshot(), before);
    assert_eq!(cluster.epoch(), 2);
    // Old primary fenced, new primary serving.
    assert!(apply_op(&old_primary, 90).is_err());
    for i in 6..9 {
        apply_op(&promoted, i).unwrap();
    }
    let snap = obs.snapshot();
    assert_eq!(snap.counter("repl.failovers"), 1);
    assert_eq!(snap.gauges["repl.epoch"], 2);
    assert_eq!(snap.gauges["repl.lag_bytes"], 0);
    assert!(
        snap.histograms
            .get("repl.failover_duration_us")
            .is_some_and(|h| h.count == 1),
        "failover duration must be recorded once"
    );
}
