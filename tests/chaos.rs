//! Chaos and crash-recovery suite: the robustness cap over the journal,
//! the fault plane, and degraded-mode GPS.
//!
//! Three groups:
//!
//! 1. **Crash-at-every-offset sweep** — a journaled auditor scenario is
//!    truncated at *every* byte offset and recovered; each recovery must
//!    be panic-free and land exactly on the state checkpoint implied by
//!    the surviving clean record prefix.
//! 2. **Seeded campaign** — 120 seeds drive transport drops/corruption
//!    and storage tears/failures/flips through the wire stack; clients
//!    see only `Ok` or typed [`ProtocolError`]s, server state stays
//!    coherent, and failing seeds replay bit-for-bit. A smaller sweep
//!    pushes TEE signing faults, NMEA corruption, GPS dropouts and
//!    clock jumps through whole flights.
//! 3. **Degraded GPS integration** — a fault-plane dropout window mid
//!    flight must surface as a signed gap marker in the PoA and as a
//!    measurably reduced sufficiency margin at the auditor.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use alidrone::chaos::{FaultPlane, FaultyGps, FaultyTransport};
use alidrone::core::journal::{MemBackend, StorageBackend};
use alidrone::core::wire::server::AuditorServer;
use alidrone::core::wire::transport::{AuditorClient, InProcess};
use alidrone::core::{
    run_flight, Auditor, AuditorConfig, PoaSubmission, ProofOfAlibi, ProtocolError,
    SamplingStrategy, Submission, Verdict, ZoneQuery,
};
use alidrone::crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, Duration, GeoPoint, GpsSample, NoFlyZone, Speed, Timestamp};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::{CostModel, SecureWorldBuilder, SignedSample, GPS_SAMPLER_UUID};
use alidrone_crypto::rng::XorShift64;

/// Per-seed key cache (512-bit keygen in debug builds is slow).
fn key(seed: u64) -> RsaPrivateKey {
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn pad() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

/// An eastbound 10 m/s trace at one sample per second, signed by the
/// TEE key — the honest alibi used across the suite.
fn signed_samples(n: usize) -> Vec<SignedSample> {
    (0..n)
        .map(|i| {
            let sample = GpsSample::new(
                pad().destination(90.0, Distance::from_meters(10.0 * i as f64)),
                Timestamp::from_secs(i as f64),
            );
            let sig = key(1).sign(&sample.to_bytes(), HashAlg::Sha1).unwrap();
            SignedSample::from_parts(sample, sig, HashAlg::Sha1)
        })
        .collect()
}

// ------------------------------------------------- 1. crash-offset sweep

/// Builds a journaled scenario one durable mutation at a time, capturing
/// the auditor snapshot after each, then recovers from every truncation
/// of the journal image and checks the recovered state equals the
/// checkpoint for the surviving record prefix.
#[test]
fn recovery_is_exact_at_every_crash_offset() {
    let backend = Arc::new(MemBackend::new());
    let (auditor, report) = Auditor::recover(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
    )
    .unwrap();
    assert_eq!(report.records_applied, 0);

    // Checkpoint 0: the empty auditor.
    let mut checkpoints = vec![auditor.snapshot()];

    // Each step appends exactly one journal record.
    let id = auditor.register_drone(key(2).public_key().clone(), key(1).public_key().clone());
    checkpoints.push(auditor.snapshot());
    auditor.register_zone(NoFlyZone::new(
        pad().destination(0.0, Distance::from_km(1.0)),
        Distance::from_meters(50.0),
    ));
    checkpoints.push(auditor.snapshot());
    let query = ZoneQuery::new_signed(
        id,
        pad().destination(225.0, Distance::from_km(2.0)),
        pad().destination(45.0, Distance::from_km(2.0)),
        [9u8; 16],
        &key(2),
    )
    .unwrap();
    auditor.handle_zone_query(&query).unwrap();
    checkpoints.push(auditor.snapshot());
    let poa = ProofOfAlibi::from_entries(signed_samples(3));
    auditor
        .verify(
            &Submission::plain(PoaSubmission {
                drone_id: id,
                window_start: Timestamp::from_secs(0.0),
                window_end: Timestamp::from_secs(2.0),
                poa,
            }),
            Timestamp::from_secs(10.0),
        )
        .unwrap();
    checkpoints.push(auditor.snapshot());

    let image = backend.bytes();
    let mut last_applied = 0usize;
    for cut in 0..=image.len() {
        let truncated = Arc::new(MemBackend::with_bytes(image[..cut].to_vec()));
        let (recovered, report) = Auditor::recover(
            Arc::clone(&truncated) as Arc<dyn StorageBackend>,
            AuditorConfig::default(),
            key(0),
        )
        .unwrap_or_else(|e| panic!("offset {cut}: truncation must recover, got {e}"));
        // Truncation can only lose a suffix of whole records.
        assert!(
            report.records_applied >= last_applied || report.records_applied == 0,
            "offset {cut}: applied count regressed"
        );
        last_applied = report.records_applied;
        assert_eq!(
            recovered.snapshot(),
            checkpoints[report.records_applied],
            "offset {cut}: recovered state must equal the checkpoint after \
             {} records",
            report.records_applied
        );
        // The torn journal was cleaned: the recovered auditor keeps
        // journaling, and a second recovery replays the new record too.
        recovered.register_zone(NoFlyZone::new(pad(), Distance::from_meters(10.0)));
        assert!(recovered.journal_enabled(), "offset {cut}: journal died");
        let (reread, _) = Auditor::recover(
            Arc::new(MemBackend::with_bytes(truncated.bytes())) as Arc<dyn StorageBackend>,
            AuditorConfig::default(),
            key(0),
        )
        .unwrap_or_else(|e| panic!("offset {cut}: re-recovery failed: {e}"));
        assert_eq!(
            reread.snapshot(),
            recovered.snapshot(),
            "offset {cut}: post-crash appends must replay"
        );
    }
    // The full image replays everything with no torn tail.
    let full = Arc::new(MemBackend::with_bytes(image.clone()));
    let (_, report) = Auditor::recover(
        full as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
    )
    .unwrap();
    assert!(!report.torn_tail);
    assert_eq!(report.records_applied, checkpoints.len() - 1);
}

/// Compaction replaces the image atomically; recovery from the compacted
/// journal plus later appends matches live state.
#[test]
fn compaction_survives_crash_recovery() {
    let backend = Arc::new(MemBackend::new());
    let (auditor, _) = Auditor::recover(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
    )
    .unwrap();
    auditor.register_drone(key(2).public_key().clone(), key(1).public_key().clone());
    auditor.register_zone(NoFlyZone::new(pad(), Distance::from_meters(25.0)));
    auditor.compact_journal().unwrap();
    auditor.register_zone(NoFlyZone::new(
        pad().destination(90.0, Distance::from_km(1.0)),
        Distance::from_meters(40.0),
    ));

    let (recovered, report) = Auditor::recover(
        Arc::new(MemBackend::with_bytes(backend.bytes())) as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
    )
    .unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(recovered.snapshot(), auditor.snapshot());
    assert_eq!(recovered.zone_count(), 2);
    assert_eq!(recovered.drone_count(), 1);
}

// --------------------------------------------------- 2. seeded campaign

/// One campaign run: wire traffic through a fault-injected transport
/// against a journaling auditor whose backend also takes scheduled
/// faults. Returns an outcome log for replay comparison.
fn campaign_run(seed: u64) -> Vec<String> {
    let mut log = Vec::new();
    let plane = FaultPlane::new(seed);
    let backend = Arc::new(MemBackend::new());
    let (auditor, _) = Auditor::recover(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
    )
    .expect("fresh backend recovers");
    let server = Arc::new(AuditorServer::builder(auditor).build());
    let storage = plane.storage("journal", Arc::clone(&backend));
    let transport = FaultyTransport::new(
        InProcess::shared(Arc::clone(&server), &alidrone::obs::Obs::noop()),
        &plane,
        "transport",
    )
    .drop_with(0.15)
    .corrupt_with(0.10);
    let mut client = AuditorClient::new(transport);
    let now = Timestamp::from_secs(5.0);

    // Scheduled storage fault before each durable op.
    log.push(format!("{:?}", storage.roll(0.10, 0.10, 0.05)));
    let id = match client.register_drone(
        key(2).public_key().clone(),
        key(1).public_key().clone(),
        now,
    ) {
        Ok(id) => {
            log.push(format!("drone {id}"));
            Some(id)
        }
        Err(e) => {
            log.push(format!("drone err {e}"));
            None
        }
    };
    for step in 0..3u8 {
        log.push(format!("{:?}", storage.roll(0.10, 0.10, 0.05)));
        match client.register_zone(
            NoFlyZone::new(
                pad().destination(f64::from(step) * 120.0, Distance::from_km(1.0)),
                Distance::from_meters(60.0),
            ),
            now,
        ) {
            Ok(zid) => log.push(format!("zone {zid}")),
            Err(e) => log.push(format!("zone err {e}")),
        }
    }
    if let Some(id) = id {
        log.push(format!("{:?}", storage.roll(0.10, 0.10, 0.05)));
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&seed.to_be_bytes());
        match client.query_rect(
            id,
            pad().destination(225.0, Distance::from_km(2.0)),
            pad().destination(45.0, Distance::from_km(2.0)),
            nonce,
            &key(2),
            now,
        ) {
            Ok(zones) => log.push(format!("query {} zones", zones.len())),
            Err(e) => log.push(format!("query err {e}")),
        }
        log.push(format!("{:?}", storage.roll(0.10, 0.10, 0.05)));
        let poa = ProofOfAlibi::from_entries(signed_samples(3));
        match client.submit_poa(
            id,
            (Timestamp::from_secs(0.0), Timestamp::from_secs(2.0)),
            &poa,
            Timestamp::from_secs(10.0),
        ) {
            Ok(verdict) => log.push(format!("verdict {verdict}")),
            Err(e) => log.push(format!("submit err {e}")),
        }
    }

    // Server-side coherence: counts never exceed what was attempted.
    assert!(server.auditor().drone_count() <= 1, "seed {seed}");
    assert!(server.auditor().zone_count() <= 3, "seed {seed}");

    // The journal image — possibly bit-flipped by the storage faults —
    // must recover cleanly or refuse with a *typed* storage error.
    match Auditor::recover(
        Arc::new(MemBackend::with_bytes(backend.bytes())) as Arc<dyn StorageBackend>,
        AuditorConfig::default(),
        key(0),
    ) {
        Ok((recovered, report)) => {
            log.push(format!(
                "recovered {} records torn={}",
                report.records_applied, report.torn_tail
            ));
            assert!(recovered.drone_count() <= 1, "seed {seed}");
        }
        Err(ProtocolError::Storage(e)) => log.push(format!("recovery refused: {e}")),
        Err(ProtocolError::Malformed(e)) => log.push(format!("recovery refused: {e}")),
        Err(other) => panic!("seed {seed}: recovery failed with untyped error {other}"),
    }
    log
}

/// ≥100 seeded runs: no panics, only typed errors, coherent state.
#[test]
fn transport_and_storage_campaign_is_typed_and_panic_free() {
    let mut succeeded = 0usize;
    let mut failed = 0usize;
    for seed in 0..120 {
        for line in campaign_run(seed) {
            if line.contains("err") || line.contains("refused") {
                failed += 1;
            } else {
                succeeded += 1;
            }
        }
    }
    // The fault rates are tuned so the campaign exercises both paths.
    assert!(succeeded > 0, "campaign never succeeded at anything");
    assert!(failed > 0, "campaign never injected a visible fault");
}

/// A failing (or any) seed replays its exact outcome log.
#[test]
fn campaign_seeds_replay_deterministically() {
    for seed in [3u64, 57, 111] {
        assert_eq!(campaign_run(seed), campaign_run(seed), "seed {seed}");
    }
}

/// TEE and GPS faults through whole flights: signing failures surface as
/// typed errors, dropouts and clock jumps never panic the sampler.
#[test]
fn tee_and_gps_fault_flights_stay_typed() {
    for seed in 0..20u64 {
        let plane = FaultPlane::new(seed);
        let route = TrajectoryBuilder::start_at(pad())
            .travel_to(
                pad().destination(90.0, Distance::from_meters(200.0)),
                Speed::from_mps(10.0),
            )
            .build()
            .unwrap();
        let clock = SimClock::new();
        let receiver = Arc::new(SimulatedReceiver::from_trajectory(
            route,
            clock.clone(),
            5.0,
        ));
        let faulty = Arc::new(
            FaultyGps::new(Arc::clone(&receiver), &plane, "gps")
                .dropout_windows(0.03, 8)
                .clock_jumps(0.01, 90.0),
        );
        let world = SecureWorldBuilder::new()
            .with_sign_key(key(1))
            .with_gps_device(Box::new(Arc::clone(&faulty)))
            .with_cost_model(CostModel::free())
            .with_sign_fault(plane.sign_fault("tee.sign", 0.05))
            .with_nmea_fault(plane.nmea_fault("tee.nmea", 0.2))
            .build()
            .unwrap();
        let client = world.client();
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        match run_flight(
            &clock,
            faulty.as_ref(),
            &session,
            &alidrone::geo::ZoneSet::new(),
            SamplingStrategy::FixedRate(1.0),
            Duration::from_secs(20.0),
        ) {
            Ok(record) => {
                // Whatever was signed must verify under the TEE key.
                for gap in record.poa.gaps() {
                    gap.verify(&client.tee_public_key())
                        .unwrap_or_else(|e| panic!("seed {seed}: bad gap marker: {e}"));
                }
            }
            // Injected faults must surface as typed protocol errors.
            Err(ProtocolError::Tee(_)) => {}
            Err(other) => panic!("seed {seed}: untyped flight failure {other}"),
        }
    }
}

// -------------------------------------- 3. degraded-GPS sufficiency cap

/// Scans for a plane seed whose GPS schedule opens exactly one dropout
/// window mid-flight (updates 55..=70 of a 5 Hz receiver) and nothing
/// else in the first 160 updates. The scan is deterministic, so the test
/// always runs the same seed.
fn dropout_seed(dropout_p: f64, window_len: u64) -> u64 {
    'seed: for seed in 0..20_000u64 {
        let plane = FaultPlane::new(seed);
        let clock = SimClock::new();
        let probe = FaultyGps::new(probe_receiver(clock), &plane, "gps")
            .dropout_windows(dropout_p, window_len);
        let opener = (55..=70u64).find(|k| probe.is_dropped(*k) && !probe.is_dropped(k - 1));
        let Some(k0) = opener else { continue };
        for k in 0..160u64 {
            let inside = k >= k0 && k < k0 + window_len;
            if probe.is_dropped(k) != inside {
                continue 'seed;
            }
        }
        return seed;
    }
    panic!("no suitable dropout seed in range");
}

fn probe_receiver(clock: SimClock) -> SimulatedReceiver {
    let traj = TrajectoryBuilder::start_at(pad())
        .pause(Duration::from_secs(60.0))
        .build()
        .unwrap();
    SimulatedReceiver::from_trajectory(traj, clock, 5.0)
}

fn flight_report(plane: Option<&FaultPlane>) -> (usize, Option<f64>, Verdict, Vec<f64>) {
    let route = TrajectoryBuilder::start_at(pad())
        .travel_to(
            pad().destination(90.0, Distance::from_meters(300.0)),
            Speed::from_mps(10.0),
        )
        .build()
        .unwrap();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let device: Arc<dyn alidrone::gps::GpsDevice> = match plane {
        Some(plane) => {
            Arc::new(FaultyGps::new(Arc::clone(&receiver), plane, "gps").dropout_windows(0.002, 25))
        }
        None => receiver,
    };
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(1))
        .with_gps_device(Box::new(Arc::clone(&device)))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let client = world.client();
    let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
    let record = run_flight(
        &clock,
        device.as_ref(),
        &session,
        &alidrone::geo::ZoneSet::new(),
        SamplingStrategy::FixedRate(1.0),
        Duration::from_secs(30.0),
    )
    .unwrap();
    for gap in record.poa.gaps() {
        gap.verify(&client.tee_public_key()).unwrap();
    }
    let gap_count = record.poa.gaps().len();

    // Audit against a zone 1 km off the flight path: the alibi should
    // hold, with a margin that gap accounting must erode.
    let auditor = Auditor::new(AuditorConfig::default(), key(0));
    let id = auditor.register_drone(key(2).public_key().clone(), key(1).public_key().clone());
    auditor.register_zone(NoFlyZone::new(
        pad().destination(0.0, Distance::from_km(1.0)),
        Distance::from_meters(50.0),
    ));
    let report = auditor
        .verify(
            &Submission::plain(PoaSubmission {
                drone_id: id,
                window_start: record.window_start,
                window_end: record.window_end,
                poa: record.poa.clone(),
            }),
            Timestamp::from_secs(100.0),
        )
        .unwrap();
    let sufficiency = report.sufficiency.expect("alibi reached sufficiency");
    let min_margin = sufficiency
        .pairs
        .iter()
        .map(|p| p.margin_m)
        .fold(f64::INFINITY, f64::min);
    let overlaps: Vec<f64> = sufficiency
        .pairs
        .iter()
        .map(|p| p.gap_overlap_secs)
        .collect();
    (
        gap_count,
        Some(min_margin).filter(|m| m.is_finite()),
        report.verdict,
        overlaps,
    )
}

/// The acceptance scenario: a fault-plane dropout yields signed gap
/// markers and a measurably smaller sufficiency margin than the clean
/// run of the same flight.
#[test]
fn gps_dropout_weakens_the_alibi_measurably() {
    let seed = dropout_seed(0.002, 25);
    let plane = FaultPlane::new(seed);

    let (clean_gaps, clean_margin, clean_verdict, clean_overlaps) = flight_report(None);
    assert_eq!(clean_gaps, 0);
    assert_eq!(clean_verdict, Verdict::Compliant);
    assert!(clean_overlaps.iter().all(|o| *o == 0.0));
    let clean_margin = clean_margin.expect("clean run has pairs");

    let (gaps, margin, verdict, overlaps) = flight_report(Some(&plane));
    assert_eq!(gaps, 1, "one dropout window, one signed gap marker");
    assert_eq!(verdict, Verdict::Compliant, "zone is 1 km away");
    assert!(
        overlaps.iter().any(|o| *o > 0.0),
        "the gapped pair must declare its overlap"
    );
    let margin = margin.expect("degraded run has pairs");
    assert!(
        margin + 10.0 < clean_margin,
        "declared gap must measurably erode the margin: \
         degraded {margin:.1} m vs clean {clean_margin:.1} m"
    );
}
