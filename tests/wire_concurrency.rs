//! Concurrency stress for the networked auditor: many client threads
//! hammer ONE `TcpServer` (one shared `Arc<AuditorServer>`) over real
//! loopback sockets with a mix of request kinds, and every request must
//! be answered, counted, and reflected in the final registry state —
//! with a clean drain on shutdown and no poisoned locks.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

use alidrone::core::wire::server::AuditorServer;
use alidrone::core::wire::tcp::{TcpServer, TcpTransport};
use alidrone::core::wire::transport::{AuditorClient, Flaky, InProcess, RetryPolicy};
use alidrone::core::{Accusation, Auditor, AuditorConfig, ProofOfAlibi};
use alidrone::crypto::rng::XorShift64;
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::{Distance, GeoPoint, NoFlyZone, Timestamp};
use alidrone::obs::Obs;

const THREADS: usize = 8;
/// Iterations per thread; each iteration issues 4 requests, plus one
/// registration up front: 8 × (1 + 4 × 25) = 808 requests total.
const ITERS: usize = 25;

fn key(seed: u64) -> RsaPrivateKey {
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn base() -> GeoPoint {
    GeoPoint::new(40.0, -88.0).unwrap()
}

#[test]
fn eight_threads_hammer_one_tcp_server() {
    let obs = Obs::noop();
    let server = Arc::new(
        AuditorServer::builder(Auditor::new(AuditorConfig::default(), key(1)))
            .obs(&obs)
            .workers(4)
            .read_timeout(Duration::from_millis(200))
            .build(),
    );
    let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).unwrap();
    let addr = tcp.local_addr();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let operator = key(100 + t as u64);
            let tee = key(200 + t as u64);
            let obs = obs.clone();
            thread::spawn(move || -> u64 {
                let mut sent = 0u64;
                let mut client = AuditorClient::with_obs(
                    TcpTransport::with_obs(addr, &obs)
                        .timeouts(Duration::from_secs(10), Duration::from_secs(10)),
                    &obs,
                )
                .retry(RetryPolicy::default())
                .deadline(Duration::from_secs(30));
                let now = Timestamp::from_secs(5.0);
                let drone = client
                    .register_drone(operator.public_key().clone(), tee.public_key().clone(), now)
                    .unwrap();
                sent += 1;
                for i in 0..ITERS {
                    // Each thread claims its own bearing so zones don't
                    // interfere with other threads' queries.
                    let center = base()
                        .destination(t as f64 * 40.0, Distance::from_km(2.0 + i as f64 / 10.0));
                    let zone = NoFlyZone::new(center, Distance::from_meters(15.0));
                    let zid = client.register_zone(zone, now).unwrap();
                    sent += 1;
                    let verdict = client
                        .submit_poa(
                            drone,
                            (Timestamp::from_secs(0.0), Timestamp::from_secs(2.0)),
                            &ProofOfAlibi::from_entries(vec![]),
                            now,
                        )
                        .unwrap();
                    assert_eq!(verdict.to_string(), "empty proof-of-alibi");
                    sent += 1;
                    let (refuted, _reason) = client
                        .accuse(
                            Accusation {
                                zone_id: zid,
                                drone_id: drone,
                                time: Timestamp::from_secs(1.0),
                            },
                            now,
                        )
                        .unwrap();
                    assert!(!refuted, "empty PoA cannot refute an accusation");
                    sent += 1;
                    let mut nonce = [0u8; 16];
                    nonce[..8].copy_from_slice(&((t * 1000 + i) as u64).to_be_bytes());
                    let zones = client
                        .query_rect(
                            drone,
                            center.destination(225.0, Distance::from_meters(500.0)),
                            center.destination(45.0, Distance::from_meters(500.0)),
                            nonce,
                            &operator,
                            now,
                        )
                        .unwrap();
                    sent += 1;
                    assert!(
                        zones.iter().any(|(id, _)| *id == zid),
                        "thread {t} query missed its own zone"
                    );
                }
                sent
            })
        })
        .collect();

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, (THREADS * (1 + 4 * ITERS)) as u64);

    // Graceful drain: every request answered before the threads join.
    tcp.shutdown();

    // No request lost, no lock poisoned: the registries reconcile with
    // the client-side tally exactly.
    let auditor = server.auditor();
    assert_eq!(auditor.drone_count(), THREADS);
    assert_eq!(auditor.zone_count(), THREADS * ITERS);
    assert_eq!(auditor.stored_poa_count(), THREADS * ITERS);
    let snap = obs.snapshot();
    assert_eq!(snap.counter("server.requests"), total);
    assert_eq!(snap.counter("server.malformed_frames"), 0);
    assert_eq!(snap.counter("server.connections"), THREADS as u64);
    // Nothing needed retrying on a healthy loopback... but if the
    // scheduler did force one, it must have been counted.
    assert_eq!(
        snap.counter("transport.calls"),
        total + snap.counter("transport.retries")
    );
}

#[test]
fn flaky_retry_is_deterministic_across_whole_runs() {
    // Same seed, same fault schedule → the same number of retries and
    // physical calls, run after run — loss recovery is reproducible.
    let run = |seed: u64| -> (u64, u64, u64) {
        let obs = Obs::noop();
        let server = Arc::new(
            AuditorServer::builder(Auditor::new(AuditorConfig::default(), key(1)))
                .obs(&obs)
                .build(),
        );
        let transport = Flaky::with_obs(InProcess::shared(server, &obs), &obs).drop_every(3);
        let mut client = AuditorClient::with_obs(transport, &obs).retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            jitter_seed: seed,
        });
        let now = Timestamp::from_secs(1.0);
        for i in 0..40u64 {
            let center = base().destination(0.0, Distance::from_km(1.0 + i as f64));
            client
                .register_zone(NoFlyZone::new(center, Distance::from_meters(10.0)), now)
                .unwrap();
        }
        let snap = obs.snapshot();
        (
            snap.counter("transport.retries"),
            snap.counter("transport.faults.dropped"),
            snap.counter("server.requests"),
        )
    };
    let a = run(0xABCD);
    let b = run(0xABCD);
    assert_eq!(a, b, "same seed must reproduce the same retry schedule");
    assert!(a.0 >= 1, "drop_every(3) over 40 calls must force retries");
    assert_eq!(a.2, 40, "every logical request must eventually land");
}
