//! Tamper-injection chaos campaign over the tamper-evident audit log.
//!
//! Each seed builds an honest journaled history (registrations,
//! stored verdicts, Merkle checkpoints at interval 2), captures the
//! signed tree head a client would hold, then attacks the at-rest
//! journal or the replication stream with one drawn arm:
//!
//! * **bit-flip** — flip one bit inside an audited record's frame;
//! * **rewrite** — mutate an audited record's payload and *recompute
//!   the CRC* (a deliberate forgery, not random corruption);
//! * **drop** — splice a whole audited frame out of the journal;
//! * **reorder** — swap the byte ranges of two distinct audited frames;
//! * **checkpoint-root** — rewrite a checkpoint's Merkle root, CRC
//!   fixed (forge the commitment itself);
//! * **splice** — ship CRC-intact tampered frames to a follower.
//!
//! Every tampered history must be detected — by a typed recovery error
//! ([`ProtocolError::Storage`] / [`ProtocolError::AuditDivergence`]),
//! by the offline consistency check against the honest signed tree
//! head, or (for splices) by the follower's typed
//! [`ReplError::ChainDivergence`] refusal — with **zero silent
//! acceptances**, deterministically per seed. Untampered histories
//! must verify end-to-end: tree-head signature, inclusion proofs,
//! consistency proofs.
//!
//! `TAMPER_SEEDS=<n>` reduces the campaign (the `make tamper` / CI
//! fast path); the default is 40 seeds.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use alidrone::core::audit::{verify_consistency, verify_inclusion, Hash};
use alidrone::core::journal::{crc32, MemBackend, Record, StorageBackend, HEADER_LEN};
use alidrone::core::repl::{Follower, ReplError, ReplFrame};
use alidrone::core::{Auditor, AuditorConfig, DroneId, PoaSubmission, ProofOfAlibi, ProtocolError};
use alidrone::crypto::rng::{Rng, XorShift64};
use alidrone::crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone::geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp};
use alidrone::obs::Obs;
use alidrone::tee::SignedSample;

/// Per-seed key cache (512-bit keygen in debug builds is slow).
fn key(seed: u64) -> RsaPrivateKey {
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn auditor_key() -> RsaPrivateKey {
    key(1)
}

fn tee_key() -> RsaPrivateKey {
    key(2)
}

fn zone(i: usize) -> NoFlyZone {
    NoFlyZone::new(
        GeoPoint::new(40.0 + i as f64 * 0.02, -88.2 + (i % 7) as f64 * 0.01).unwrap(),
        Distance::from_meters(60.0 + i as f64),
    )
}

/// Seeds to run: `TAMPER_SEEDS` for the reduced `make tamper` sweep,
/// 40 (the acceptance floor) by default.
fn campaign_seeds() -> u64 {
    std::env::var("TAMPER_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

fn config() -> AuditorConfig {
    AuditorConfig {
        checkpoint_interval: 2,
        ..AuditorConfig::default()
    }
}

/// A small compliant PoA: samples signed directly under the cached TEE
/// key (what a real enclave would emit), far from every zone.
fn submission(drone_id: DroneId, base_t: f64, n: usize) -> PoaSubmission {
    let entries = (0..n)
        .map(|i| {
            let sample = GpsSample::new(
                GeoPoint::new(38.5 + i as f64 * 1e-5, -90.0).unwrap(),
                Timestamp::from_secs(base_t + i as f64),
            );
            let sig = tee_key()
                .sign(&sample.to_bytes(), HashAlg::Sha1)
                .expect("tee sign");
            SignedSample::from_parts(sample, sig, HashAlg::Sha1)
        })
        .collect();
    PoaSubmission {
        drone_id,
        window_start: Timestamp::from_secs(base_t),
        window_end: Timestamp::from_secs(base_t + (n - 1) as f64),
        poa: ProofOfAlibi::from_entries(entries),
    }
}

/// What an honest client retains: the final signed tree head plus the
/// journal image it was built over.
struct HonestRun {
    bytes: Vec<u8>,
    drone: DroneId,
    /// `(size, root, chain_head)` of the final signed tree head.
    head: (u64, Hash, Hash),
    /// An earlier observed head, for consistency-proof checks.
    earlier: (u64, Hash),
}

/// Builds the honest history: one drone, a mix of zone registrations
/// and stored verdicts, checkpoints every 2 audited records.
fn honest_run(n_ops: usize) -> HonestRun {
    let backend = Arc::new(MemBackend::new());
    let (a, _) = Auditor::recover(
        backend.clone() as Arc<dyn StorageBackend>,
        config(),
        auditor_key(),
    )
    .expect("fresh recovery");
    let drone = a
        .register_drone_durable(key(3).public_key().clone(), tee_key().public_key().clone())
        .expect("register drone");
    let mut earlier = None;
    for i in 0..n_ops {
        if i % 4 == 1 {
            let rep = a
                .verify_submission(&submission(drone, i as f64 * 10.0, 4), Timestamp::EPOCH)
                .expect("submission");
            assert!(
                rep.is_compliant(),
                "fixture PoA must store: {}",
                rep.verdict
            );
        } else {
            a.register_zone_durable(zone(i)).expect("register zone");
        }
        if i == n_ops / 2 {
            let sth = a.signed_tree_head().expect("mid tree head");
            earlier = Some((sth.size, sth.root));
        }
    }
    let sth = a.signed_tree_head().expect("final tree head");
    assert!(sth.verify(auditor_key().public_key()));
    HonestRun {
        bytes: backend.bytes(),
        drone,
        head: (sth.size, sth.root, sth.chain_head),
        earlier: earlier.expect("n_ops >= 2"),
    }
}

/// `(frame_start, payload_len, record)` for every decodable journal
/// frame; `frame_start` points at the 8-byte length/CRC header.
fn frames(bytes: &[u8]) -> Vec<(usize, usize, Record)> {
    let mut out = Vec::new();
    let mut pos = HEADER_LEN;
    while pos + 8 <= bytes.len() {
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        let record = Record::from_payload(&bytes[pos + 8..pos + 8 + len]).expect("honest record");
        out.push((pos, len, record));
        pos += 8 + len;
    }
    out
}

/// Recomputes a frame's CRC after a payload edit, keeping it wire-valid.
fn fix_crc(bytes: &mut [u8], frame_start: usize, payload_len: usize) {
    let crc = crc32(&bytes[frame_start + 8..frame_start + 8 + payload_len]);
    bytes[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_be_bytes());
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Arm {
    BitFlip,
    Rewrite,
    Drop,
    Reorder,
    CheckpointRoot,
    Splice,
}

const ARMS: [Arm; 6] = [
    Arm::BitFlip,
    Arm::Rewrite,
    Arm::Drop,
    Arm::Reorder,
    Arm::CheckpointRoot,
    Arm::Splice,
];

/// Applies the drawn journal tamper; returns the tampered image and a
/// label. `Splice` reuses `Rewrite`'s forgery but delivers it over the
/// replication stream instead of the at-rest journal.
fn tamper(arm: Arm, bytes: &[u8], rng: &mut XorShift64) -> (Vec<u8>, String) {
    let mut out = bytes.to_vec();
    let all = frames(bytes);
    let audited: Vec<&(usize, usize, Record)> =
        all.iter().filter(|(_, _, r)| r.is_audited()).collect();
    assert!(!audited.is_empty(), "honest run journals audited records");
    match arm {
        Arm::BitFlip => {
            let &&(start, len, _) = &audited[(rng.next_u64() as usize) % audited.len()];
            let off = start + (rng.next_u64() as usize) % (8 + len);
            let bit = 1u8 << (rng.next_u64() % 8);
            out[off] ^= bit;
            (out, format!("bit-flip @{off} mask {bit:#04x}"))
        }
        Arm::Rewrite | Arm::Splice => {
            let &&(start, len, _) = &audited[(rng.next_u64() as usize) % audited.len()];
            // Mutate the payload's final byte (always inside the record
            // body) and forge a matching CRC.
            let off = start + 8 + len - 1;
            out[off] ^= 0x01;
            fix_crc(&mut out, start, len);
            (out, format!("crc-intact rewrite @{off}"))
        }
        Arm::Drop => {
            let &&(start, len, _) = &audited[(rng.next_u64() as usize) % audited.len()];
            out.drain(start..start + 8 + len);
            (out, format!("dropped frame @{start}"))
        }
        Arm::Reorder => {
            // Swap two byte-distinct audited frames (registrations and
            // verdicts all differ, so a pair always exists).
            let i = (rng.next_u64() as usize) % (audited.len() - 1);
            let (j, _) = audited
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, (s, l, _))| {
                    let (si, li, _) = *audited[i];
                    bytes[*s..*s + 8 + *l] != bytes[si..si + 8 + li]
                })
                .expect("a distinct frame pair exists");
            let (si, li, _) = *audited[i];
            let (sj, lj, _) = *audited[j];
            let mut swapped = bytes[..si].to_vec();
            swapped.extend_from_slice(&bytes[sj..sj + 8 + lj]);
            swapped.extend_from_slice(&bytes[si + 8 + li..sj]);
            swapped.extend_from_slice(&bytes[si..si + 8 + li]);
            swapped.extend_from_slice(&bytes[sj + 8 + lj..]);
            (swapped, format!("reordered frames @{si} <-> @{sj}"))
        }
        Arm::CheckpointRoot => {
            let checkpoints: Vec<&(usize, usize, Record)> = all
                .iter()
                .filter(|(_, _, r)| matches!(r, Record::AuditCheckpoint { .. }))
                .collect();
            assert!(!checkpoints.is_empty(), "interval 2 must checkpoint");
            let &&(start, len, _) = &checkpoints[(rng.next_u64() as usize) % checkpoints.len()];
            // Checkpoint payload: tag u8 | size u64 | root[32] | sigs.
            let off = start + 8 + 9 + (rng.next_u64() as usize) % 32;
            out[off] ^= 0x80;
            fix_crc(&mut out, start, len);
            (out, format!("checkpoint root forged @{off}"))
        }
    }
}

/// One full campaign run; the returned log replays bit-for-bit.
fn campaign_run(seed: u64) -> Vec<String> {
    let mut log = Vec::new();
    let mut rng = XorShift64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let n_ops = 6 + (rng.next_u64() % 8) as usize;
    let arm = ARMS[(rng.next_u64() as usize) % ARMS.len()];
    log.push(format!("seed {seed}: n_ops {n_ops} arm {arm:?}"));
    let honest = honest_run(n_ops);
    let (size_h, root_h, head_h) = honest.head;

    // --- untampered control: everything verifies end-to-end ----------
    {
        let backend = Arc::new(MemBackend::with_bytes(honest.bytes.clone()));
        let (a, _) = Auditor::recover(backend as Arc<dyn StorageBackend>, config(), auditor_key())
            .expect("untampered journal recovers");
        let sth = a.signed_tree_head().expect("tree head");
        assert_eq!(
            (sth.size, sth.root, sth.chain_head),
            (size_h, root_h, head_h),
            "seed {seed}: untampered recovery must restore the exact head"
        );
        assert!(sth.verify(auditor_key().public_key()), "seed {seed}");
        let proof = a.audit_inclusion_proof(honest.drone, 0).expect("inclusion");
        assert!(
            verify_inclusion(&proof.leaf, proof.index, proof.size, &proof.path, &sth.root),
            "seed {seed}: honest inclusion proof must verify"
        );
        let (old_size, old_root) = honest.earlier;
        let cons = a.audit_consistency_proof(old_size, 0).expect("consistency");
        assert!(
            verify_consistency(
                cons.old_size,
                cons.new_size,
                &cons.path,
                &old_root,
                &sth.root
            ),
            "seed {seed}: honest consistency proof must verify"
        );
        let follower = Follower::new(Arc::new(MemBackend::new()));
        follower
            .apply(&ReplFrame::Append {
                epoch: 1,
                offset: 0,
                bytes: honest.bytes.clone(),
            })
            .expect("honest shipment accepted");
        assert_eq!(follower.acked_offset(), honest.bytes.len() as u64);
        log.push("control: verified".into());
    }

    // --- the attack --------------------------------------------------
    let (tampered, what) = tamper(arm, &honest.bytes, &mut rng);
    log.push(what);

    if arm == Arm::Splice {
        // Replication-stream splice: the follower must refuse with a
        // typed divergence and persist nothing.
        let obs = Obs::noop();
        let follower = Follower::with_obs(Arc::new(MemBackend::new()), &obs);
        let err = follower
            .apply(&ReplFrame::Append {
                epoch: 1,
                offset: 0,
                bytes: tampered,
            })
            .expect_err("spliced shipment must be refused");
        assert!(
            matches!(err, ReplError::ChainDivergence { .. }),
            "seed {seed}: got {err}"
        );
        assert_eq!(follower.acked_offset(), 0, "seed {seed}");
        assert!(
            follower.image().expect("readable").is_empty(),
            "seed {seed}: refused frames must not persist"
        );
        assert_eq!(
            obs.snapshot().counter("repl.chain_divergence"),
            1,
            "seed {seed}"
        );
        log.push(format!("detected: follower {err}"));
        return log;
    }

    // At-rest journal tamper: detection is either a typed recovery
    // error or a recovered head the honest signed tree head refutes.
    let backend = Arc::new(MemBackend::with_bytes(tampered));
    match Auditor::recover(backend as Arc<dyn StorageBackend>, config(), auditor_key()) {
        Err(e) => {
            assert!(
                matches!(
                    e,
                    ProtocolError::Storage(_) | ProtocolError::AuditDivergence { .. }
                ),
                "seed {seed}: tampered recovery must fail typed, got {e}"
            );
            log.push(format!("detected: recovery {e}"));
        }
        Ok((a, _)) => {
            let sth = a.signed_tree_head().expect("tree head");
            assert_ne!(
                (sth.size, sth.root, sth.chain_head),
                (size_h, root_h, head_h),
                "seed {seed}: SILENT ACCEPTANCE — tampered history \
                 reproduced the honest head"
            );
            // The client-side check that fires in the field: the honest
            // signed head cannot be consistent with the tampered log.
            let refuted = if sth.size < size_h {
                // The tampered log is shorter than the head the client
                // holds: no consistency proof can exist.
                a.audit_consistency_proof(size_h, 0).is_err()
            } else {
                let cons = a.audit_consistency_proof(size_h, size_h).expect("proof");
                !verify_consistency(cons.old_size, cons.new_size, &cons.path, &root_h, &sth.root)
            };
            assert!(
                refuted,
                "seed {seed}: offline consistency check failed to refute \
                 the tampered log"
            );
            log.push(format!(
                "detected: head mismatch (size {} vs {size_h})",
                sth.size
            ));
        }
    }
    log
}

/// The acceptance campaign: ≥40 seeds by default, every arm drawn,
/// every tampered history detected with zero silent acceptances (the
/// assertions live in [`campaign_run`]).
#[test]
fn tamper_campaign() {
    let seeds = campaign_seeds();
    let mut arms_hit: Vec<&str> = Vec::new();
    let mut typed = 0usize;
    let mut mismatch = 0usize;
    let mut spliced = 0usize;
    for seed in 0..seeds {
        for line in campaign_run(seed) {
            for arm in ["BitFlip", "Rewrite", "Drop", "Reorder", "CheckpointRoot"] {
                if line.contains(arm) && !arms_hit.contains(&arm) {
                    arms_hit.push(arm);
                }
            }
            if line.contains("detected: recovery") {
                typed += 1;
            }
            if line.contains("detected: head mismatch") {
                mismatch += 1;
            }
            if line.contains("detected: follower") {
                spliced += 1;
            }
        }
    }
    // The arm space must actually cover every attack and both
    // detection modes once the full campaign runs.
    if seeds >= 30 {
        assert_eq!(arms_hit.len(), 5, "arms hit: {arms_hit:?}");
        assert!(typed > 0, "no seed detected via a typed recovery error");
        assert!(mismatch > 0, "no seed detected via head mismatch");
        assert!(spliced > 0, "no seed exercised the replication splice");
    }
}

/// A failing (or any) seed replays its exact outcome log.
#[test]
fn tamper_seeds_replay_deterministically() {
    for seed in [3u64, 19, 31] {
        assert_eq!(campaign_run(seed), campaign_run(seed), "seed {seed}");
    }
}

/// Consistency proofs survive a compaction boundary end-to-end at the
/// integration level: a client head observed before `compact_journal`
/// verifies against heads served from the compacted (and re-recovered)
/// log.
#[test]
fn consistency_survives_compaction() {
    let backend = Arc::new(MemBackend::new());
    let (a, _) = Auditor::recover(
        backend.clone() as Arc<dyn StorageBackend>,
        config(),
        auditor_key(),
    )
    .unwrap();
    let drone = a
        .register_drone_durable(key(3).public_key().clone(), tee_key().public_key().clone())
        .unwrap();
    a.register_zone_durable(zone(0)).unwrap();
    a.verify_submission(&submission(drone, 0.0, 4), Timestamp::EPOCH)
        .unwrap();
    let sth1 = a.signed_tree_head().unwrap();

    a.compact_journal().unwrap();
    a.register_zone_durable(zone(1)).unwrap();
    a.verify_submission(&submission(drone, 50.0, 4), Timestamp::EPOCH)
        .unwrap();

    let (b, rep) =
        Auditor::recover(backend as Arc<dyn StorageBackend>, config(), auditor_key()).unwrap();
    assert!(rep.snapshot_loaded);
    let sth2 = b.signed_tree_head().unwrap();
    assert!(sth2.verify(auditor_key().public_key()));
    let cons = b.audit_consistency_proof(sth1.size, 0).unwrap();
    assert!(verify_consistency(
        cons.old_size,
        cons.new_size,
        &cons.path,
        &sth1.root,
        &sth2.root,
    ));
    let proof = b.audit_inclusion_proof(drone, 0).unwrap();
    assert!(verify_inclusion(
        &proof.leaf,
        proof.index,
        proof.size,
        &proof.path,
        &sth2.root,
    ));
}
