//! Plan → fly → verify: the full loop of protocol step 3's implied
//! planner. A drone whose direct path crosses a registered zone plans a
//! detour, flies it, and the PoA verifies compliant; flying the direct
//! path instead is caught.

use std::sync::{Arc, OnceLock};

use alidrone::core::{Auditor, AuditorConfig, DroneOperator, SamplingStrategy, Verdict};
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::planner::route_is_clear;
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, GeoPoint, NoFlyZone, Speed};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::{CostModel, SecureWorldBuilder};
use alidrone_crypto::rng::XorShift64;

fn key(seed: u64) -> RsaPrivateKey {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn pad() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

/// Builds a trajectory following the planned waypoints at 30 mph.
fn trajectory_from_route(route: &[GeoPoint]) -> alidrone::geo::trajectory::Trajectory {
    let mut b = TrajectoryBuilder::start_at(route[0]);
    for wp in &route[1..] {
        b = b.travel_to(*wp, Speed::from_mph(30.0));
    }
    b.build().unwrap()
}

#[test]
fn planned_detour_flight_is_compliant_but_direct_is_not() {
    let mut rng = XorShift64::seed_from_u64(200);
    let goal = pad().destination(90.0, Distance::from_km(1.0));
    // Zone dead on the direct path.
    let zone = NoFlyZone::new(
        pad().destination(90.0, Distance::from_meters(500.0)),
        Distance::from_meters(60.0),
    );

    let auditor = Auditor::new(AuditorConfig::default(), key(201));
    auditor.register_zone(zone);
    let zones = auditor.zone_set();

    let fly = |route: &[GeoPoint], tee_seed: u64, auditor: &Auditor, rng: &mut XorShift64| {
        let traj = trajectory_from_route(route);
        let flight_time = traj.total_duration();
        let clock = SimClock::new();
        let receiver = Arc::new(SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0));
        let world = SecureWorldBuilder::new()
            .with_sign_key(key(tee_seed))
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .with_cost_model(CostModel::free())
            .build()
            .unwrap();
        let mut operator = DroneOperator::new(key(tee_seed + 100), world.client());
        operator.register_with(auditor);
        let record = operator
            .fly(
                &clock,
                receiver.as_ref(),
                &auditor.zone_set(),
                SamplingStrategy::FixedRate(5.0),
                flight_time,
            )
            .unwrap();
        operator
            .submit_encrypted(auditor, &record, clock.now(), rng)
            .unwrap()
    };

    // Plan a detour and fly it.
    let planner_operator = DroneOperator::new(
        key(202),
        SecureWorldBuilder::new()
            .with_sign_key(key(203))
            .build()
            .unwrap()
            .client(),
    );
    let margin = Distance::from_meters(30.0);
    let route = planner_operator
        .plan_route(pad(), goal, &zones, margin)
        .unwrap();
    assert!(route.len() >= 3, "expected a detour waypoint");
    assert!(route_is_clear(&route, &zones, margin));
    let report = fly(&route, 210, &auditor, &mut rng);
    assert!(report.is_compliant(), "detour verdict {}", report.verdict);

    // Flying the direct line violates the zone.
    let direct = vec![pad(), goal];
    let report = fly(&direct, 220, &auditor, &mut rng);
    assert!(matches!(report.verdict, Verdict::InsideZone { .. }));
}

/// The corner-case this reproduction discovered: along a planned detour
/// with a sharp waypoint turn between zones, the paper's nearest-zone
/// trigger (Algorithm 1 as printed) fires too late and leaves an
/// insufficient pair, while the pairwise-safe variant does not.
#[test]
fn nearest_zone_heuristic_fails_at_sharp_turns_pairwise_fixes_it() {
    let goal = pad().destination(90.0, Distance::from_km(2.0));
    let auditor = Auditor::new(AuditorConfig::default(), key(401));
    for (east_m, north_m, r_m) in [
        (600.0, 0.0, 70.0),
        (1_100.0, 60.0, 50.0),
        (1_500.0, -50.0, 60.0),
    ] {
        auditor.register_zone(NoFlyZone::new(
            pad()
                .destination(90.0, Distance::from_meters(east_m))
                .destination(0.0, Distance::from_meters(north_m)),
            Distance::from_meters(r_m),
        ));
    }
    let zones = auditor.zone_set();
    let margin = Distance::from_meters(25.0);
    let planner_operator = DroneOperator::new(
        key(402),
        SecureWorldBuilder::new()
            .with_sign_key(key(403))
            .build()
            .unwrap()
            .client(),
    );
    let route = planner_operator
        .plan_route(pad(), goal, &zones, margin)
        .unwrap();
    assert!(route.len() >= 3, "need a turn to exercise the corner case");

    let insufficient = |strategy: SamplingStrategy, seed: u64| {
        let traj = trajectory_from_route(&route);
        let flight_time = traj.total_duration();
        let clock = SimClock::new();
        let receiver = Arc::new(SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0));
        let world = SecureWorldBuilder::new()
            .with_sign_key(key(seed))
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .with_cost_model(CostModel::free())
            .build()
            .unwrap();
        let operator = DroneOperator::new(key(seed + 50), world.client());
        let record = operator
            .fly(&clock, receiver.as_ref(), &zones, strategy, flight_time)
            .unwrap();
        alidrone::geo::sufficiency::count_insufficient_pairs(
            &record.poa.alibi(),
            &zones,
            alidrone::geo::FAA_MAX_SPEED,
        )
    };

    let nearest = insufficient(SamplingStrategy::Adaptive, 410);
    let pairwise = insufficient(SamplingStrategy::AdaptivePairwise, 420);
    assert!(
        nearest >= 1,
        "expected the nearest-zone rule to miss the turn (got {nearest})"
    );
    assert_eq!(pairwise, 0, "pairwise-safe variant must close the gap");
}

#[test]
fn planner_threads_multiple_zones_and_adaptive_poa_verifies() {
    let mut rng = XorShift64::seed_from_u64(300);
    let goal = pad().destination(90.0, Distance::from_km(2.0));
    let auditor = Auditor::new(AuditorConfig::default(), key(301));
    for i in 0..4 {
        auditor.register_zone(NoFlyZone::new(
            pad()
                .destination(90.0, Distance::from_meters(400.0 + i as f64 * 400.0))
                .destination(
                    0.0,
                    Distance::from_meters(if i % 2 == 0 { 40.0 } else { -40.0 }),
                ),
            Distance::from_meters(50.0),
        ));
    }
    let zones = auditor.zone_set();
    let margin = Distance::from_meters(25.0);

    let planner_operator = DroneOperator::new(
        key(302),
        SecureWorldBuilder::new()
            .with_sign_key(key(303))
            .build()
            .unwrap()
            .client(),
    );
    let route = planner_operator
        .plan_route(pad(), goal, &zones, margin)
        .unwrap();
    assert!(route_is_clear(&route, &zones, margin));

    let traj = trajectory_from_route(&route);
    let flight_time = traj.total_duration();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0));
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(304))
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let mut operator = DroneOperator::new(key(305), world.client());
    operator.register_with(&auditor);
    let record = operator
        .fly(
            &clock,
            receiver.as_ref(),
            &zones,
            SamplingStrategy::Adaptive,
            flight_time,
        )
        .unwrap();
    let report = operator
        .submit_encrypted(&auditor, &record, clock.now(), &mut rng)
        .unwrap();
    assert!(report.is_compliant(), "verdict {}", report.verdict);
}
