//! Transport parity for a full sim scenario: the airport flight's PoA
//! submitted in-process and over a loopback TCP socket must produce
//! byte-identical responses — and the TCP path must still stitch ONE
//! trace per request, with the client's per-attempt spans parenting the
//! server-side span across the socket (via the wire trace envelope).

use std::time::Duration;

use alidrone::core::wire::transport::RetryPolicy;
use alidrone::core::SamplingStrategy;
use alidrone::crypto::rng::XorShift64;
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::obs::SpanRecord;
use alidrone::sim::net::{submit_run, WireMode, WireOptions};
use alidrone::sim::runner::{experiment_key, run_scenario};
use alidrone::sim::scenarios::airport;
use alidrone::tee::CostModel;

fn by_name<'a>(spans: &'a [SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.name == name).collect()
}

#[test]
fn tcp_submission_matches_in_process_and_stitches_one_trace_per_request() {
    let scenario = airport();
    let run = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::free(),
    )
    .expect("adaptive run");

    let mut rng = XorShift64::seed_from_u64(0x9A17);
    let auditor_key = RsaPrivateKey::generate(512, &mut rng);
    let operator_key = RsaPrivateKey::generate(512, &mut rng);

    let local = submit_run(
        &run,
        &scenario,
        WireMode::InProcess,
        auditor_key.clone(),
        &operator_key,
        WireOptions::default(),
    )
    .expect("in-process submission");

    // The TCP pass additionally drops every 2nd physical call, so the
    // retry layer is forced to replay — the outcome must not change.
    let networked = submit_run(
        &run,
        &scenario,
        WireMode::Tcp,
        auditor_key,
        &operator_key,
        WireOptions {
            drop_every: Some(2),
            retry: Some(RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(5),
                jitter_seed: 0x5EED,
            }),
            scrape: None,
        },
    )
    .expect("tcp submission");

    // Byte parity: same verdict, same ids, same response frames.
    assert_eq!(local.verdict, networked.verdict);
    assert_eq!(local.drone, networked.drone);
    assert_eq!(local.zones, networked.zones);
    assert_eq!(
        local.response_frames, networked.response_frames,
        "response frames must be byte-identical across transports"
    );

    // Trace stitching. Both submissions parent under the run's flight
    // span, so every wire/server/attempt span shares the flight trace.
    let spans = run.recorder.spans();
    let flight = run.flight_span.expect("traced run has a flight span");
    let wire_ids: Vec<u64> = spans
        .iter()
        .filter(|s| s.name.starts_with("wire.") && s.name != "wire.attempt")
        .map(|s| s.context.span_id)
        .collect();
    // 2 submissions × 3 requests each.
    assert_eq!(wire_ids.len(), 6);

    let attempts = by_name(&spans, "wire.attempt");
    assert!(
        attempts.len() >= 4,
        "dropping every 2nd call must force extra attempts, saw {}",
        attempts.len()
    );
    for a in &attempts {
        assert_eq!(a.context.trace_id, flight.trace_id);
        let parent = a.context.parent_id.expect("attempt has a parent");
        assert!(
            wire_ids.contains(&parent),
            "wire.attempt parented outside its logical wire span"
        );
    }

    let attempt_ids: Vec<u64> = attempts.iter().map(|a| a.context.span_id).collect();
    let server_spans: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name.starts_with("server."))
        .collect();
    // Every request was served twice (once per transport) — six server
    // spans, all in the flight's trace.
    assert_eq!(server_spans.len(), 6);
    let mut under_attempt = 0;
    for s in &server_spans {
        assert_eq!(s.context.trace_id, flight.trace_id);
        let parent = s.context.parent_id.expect("server span has a parent");
        if attempt_ids.contains(&parent) {
            under_attempt += 1;
        } else {
            assert!(
                wire_ids.contains(&parent),
                "server span parented outside the client's spans"
            );
        }
    }
    // The TCP (retrying) submission's three server spans hang off
    // attempt spans — proving the envelope carried the attempt context
    // across the socket; the in-process (no-retry) three hang directly
    // off their wire spans.
    assert_eq!(under_attempt, 3);
}
