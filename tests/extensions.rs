//! Integration tests for the paper's §VII extensions, exercised through
//! the public cross-crate API.

use std::sync::{Arc, OnceLock};

use alidrone::core::privacy::{check_sealed_accusation, PrivatePoa};
use alidrone::core::symmetric::establish_flight_key;
use alidrone::core::{AccusationOutcome, Auditor, AuditorConfig, DroneOperator, SamplingStrategy};
use alidrone::crypto::dh::DhGroup;
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::polygon::PolygonZone;
use alidrone::geo::three_d::{CylinderZone, GpsSample3d, ReachableSet3d};
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, Duration, GeoPoint, NoFlyZone, Speed, Timestamp, FAA_MAX_SPEED};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::{CostModel, SecureWorldBuilder, GPS_SAMPLER_UUID};
use alidrone_crypto::rng::XorShift64;

fn key(seed: u64) -> RsaPrivateKey {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn pad() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

#[test]
fn polygon_zone_registration_end_to_end() {
    // §VII-B2: a zone owner registers an L-shaped lot; the auditor covers
    // it with the smallest enclosing circle and verification uses that.
    let auditor = Auditor::new(AuditorConfig::default(), key(80));
    let verts: Vec<GeoPoint> = [
        (0.0, 0.0),
        (60.0, 0.0),
        (60.0, 30.0),
        (30.0, 30.0),
        (30.0, 60.0),
        (0.0, 60.0),
    ]
    .iter()
    .map(|&(e, n)| {
        pad()
            .destination(90.0, Distance::from_meters(e))
            .destination(0.0, Distance::from_meters(n))
    })
    .collect();
    let poly = PolygonZone::new(verts.clone()).unwrap();
    let zid = auditor.register_polygon_zone(&poly).unwrap();
    let zone = auditor.zone(zid).unwrap();
    // Every vertex covered.
    for v in &verts {
        assert!(zone.boundary_distance(v).meters() <= 0.5);
    }
    // A point well inside the L is inside the covering circle.
    let inside = pad()
        .destination(90.0, Distance::from_meters(15.0))
        .destination(0.0, Distance::from_meters(15.0));
    assert!(zone.contains(&inside));
}

#[test]
fn three_d_overflight_legal_but_low_pass_is_not() {
    // §VII-B1: a cylinder NFZ up to 60 m; flying over at 200 m proves
    // alibi, skimming at 20 m does not.
    let zone = CylinderZone::new(
        pad(),
        Distance::from_meters(30.0),
        Distance::from_meters(60.0),
    )
    .unwrap();
    let west = pad().destination(270.0, Distance::from_meters(50.0));
    let east = pad().destination(90.0, Distance::from_meters(50.0));

    let high1 = GpsSample3d::new(
        west,
        Distance::from_meters(200.0),
        Timestamp::from_secs(0.0),
    )
    .unwrap();
    let high2 = GpsSample3d::new(
        east,
        Distance::from_meters(200.0),
        Timestamp::from_secs(3.0),
    )
    .unwrap();
    let e = ReachableSet3d::from_samples(&high1, &high2, FAA_MAX_SPEED).unwrap();
    assert!(!e.intersects_zone(&zone), "high overflight must be clear");

    let low1 =
        GpsSample3d::new(west, Distance::from_meters(20.0), Timestamp::from_secs(0.0)).unwrap();
    let low2 =
        GpsSample3d::new(east, Distance::from_meters(20.0), Timestamp::from_secs(3.0)).unwrap();
    let e = ReachableSet3d::from_samples(&low1, &low2, FAA_MAX_SPEED).unwrap();
    assert!(e.intersects_zone(&zone), "low pass must be suspect");
}

#[test]
fn privacy_preserving_flow_end_to_end() {
    let mut rng = XorShift64::seed_from_u64(81);
    // Fly past a zone, seal the PoA, settle an accusation with a
    // two-sample reveal.
    let end = pad().destination(90.0, Distance::from_km(1.0));
    let zone = NoFlyZone::new(
        pad()
            .destination(90.0, Distance::from_meters(500.0))
            .destination(0.0, Distance::from_meters(80.0)),
        Distance::from_feet(25.0),
    );
    let route = TrajectoryBuilder::start_at(pad())
        .travel_to(end, Speed::from_mph(25.0))
        .build()
        .unwrap();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(82))
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let operator = DroneOperator::new(key(83), world.client());
    let zones = std::iter::once(zone).collect();
    let record = operator
        .fly(
            &clock,
            receiver.as_ref(),
            &zones,
            SamplingStrategy::Adaptive,
            Duration::from_secs(80.0),
        )
        .unwrap();

    let private = PrivatePoa::seal(&record.poa, &mut rng);
    let accused = Timestamp::from_secs(40.0);
    let (i, j) = private.sealed().bracketing_indices(accused).unwrap();
    let reveals = private.reveal(&[i, j]).unwrap();
    let outcome = check_sealed_accusation(
        private.sealed(),
        &reveals,
        &world.client().tee_public_key(),
        &zone,
        accused,
        FAA_MAX_SPEED,
    )
    .unwrap();
    assert_eq!(outcome, AccusationOutcome::Refuted);

    // A reveal for the wrong entries cannot settle it.
    let wrong = private.reveal(&[0]).unwrap();
    assert!(check_sealed_accusation(
        private.sealed(),
        &wrong,
        &world.client().tee_public_key(),
        &zone,
        accused,
        FAA_MAX_SPEED,
    )
    .is_err());
}

#[test]
fn symmetric_flight_key_authenticates_trace() {
    let mut rng = XorShift64::seed_from_u64(84);
    let (drone, auditor_side) = establish_flight_key(&DhGroup::test_512(), &mut rng).unwrap();
    // Authenticate a whole synthetic trace and verify every tag.
    for t in 0..50 {
        let s = alidrone::geo::GpsSample::new(
            pad().destination(90.0, Distance::from_meters(t as f64 * 5.0)),
            Timestamp::from_secs(t as f64),
        );
        let m = drone.authenticate(s);
        assert!(auditor_side.verify(&m));
    }
    // A second flight's session rejects the first flight's tags.
    let (drone2, _) = establish_flight_key(&DhGroup::test_512(), &mut rng).unwrap();
    let s = alidrone::geo::GpsSample::new(pad(), Timestamp::from_secs(0.0));
    let m = drone.authenticate(s);
    let m2 = drone2.authenticate(s);
    assert_ne!(m.tag, m2.tag);
}

#[test]
fn batch_signing_amortises_to_one_signature() {
    let end = pad().destination(90.0, Distance::from_meters(600.0));
    let route = TrajectoryBuilder::start_at(pad())
        .travel_to(end, Speed::from_mph(30.0))
        .build()
        .unwrap();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(85))
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(CostModel::raspberry_pi_3())
        .build()
        .unwrap();
    let session = world.client().open_session(GPS_SAMPLER_UUID).unwrap();

    // Cache 20 samples over 20 s, then a single SignTrace.
    for _ in 0..20 {
        clock.advance(Duration::from_secs(1.0));
        session.cache_sample().unwrap();
    }
    let trace = session.sign_trace().unwrap();
    assert_eq!(trace.samples().len(), 20);
    trace.verify(&world.client().tee_public_key()).unwrap();
    let snap = world.ledger().snapshot();
    assert_eq!(snap.signatures, 1, "exactly one RSA operation");
    assert_eq!(snap.gps_reads, 20);
    // The alibi inside the batch trace is well-formed.
    assert!(alidrone::geo::check_monotonic(trace.samples()).is_ok());
    // Batch mode saves 19 of 20 signatures; caching still pays world
    // switches, so the win over 20 individual GetGPSAuth calls is the
    // signature cost (which dominates at real key sizes — for 1024-bit
    // keys the per-call cost is ~43 ms of which ~41 ms is the RSA op).
    let individual = world.cost_model().get_gps_auth_cost(512).secs();
    let sign = world.cost_model().sign_cost(512).secs();
    assert!(
        snap.busy.secs() < 20.0 * individual - 18.0 * sign,
        "batch busy {:.4}s vs 20 individual {:.4}s",
        snap.busy.secs(),
        20.0 * individual
    );
}

#[test]
fn spoof_detector_declines_authenticity_service() {
    // §VII-A2: a spoofer teleports the receiver mid-flight; the secure-
    // world detector latches suspicious and the GPS Sampler refuses to
    // sign from then on.
    use alidrone::gps::{GpsDevice, GpsFix};
    use alidrone::tee::{PlausibilityDetector, TeeError};

    /// A receiver that reports honest motion for 5 updates and then
    /// teleports 100 km away (the spoofed position).
    struct SpoofedReceiver {
        clock: SimClock,
    }
    impl GpsDevice for SpoofedReceiver {
        fn latest_fix(&self) -> Option<GpsFix> {
            let t = self.clock.now().secs();
            let k = t.floor() as u64;
            let east = if k < 5 {
                k as f64 * 10.0
            } else {
                100_000.0 + k as f64 * 10.0
            };
            Some(GpsFix {
                sample: alidrone::geo::GpsSample::new(
                    pad().destination(90.0, Distance::from_meters(east)),
                    Timestamp::from_secs(k as f64),
                ),
                speed: alidrone::geo::Speed::from_mps(10.0),
                sequence: k,
            })
        }
        fn update_rate_hz(&self) -> f64 {
            1.0
        }
    }

    let clock = SimClock::new();
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(90))
        .with_gps_device(Box::new(SpoofedReceiver {
            clock: clock.clone(),
        }))
        .with_spoof_detector(Box::new(PlausibilityDetector::new()))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let session = world.client().open_session(GPS_SAMPLER_UUID).unwrap();

    // Honest phase: signing works.
    for k in 0..5 {
        clock.set(Timestamp::from_secs(k as f64 + 0.5));
        session.get_gps_auth().unwrap();
    }
    // After the teleport: authenticity service declined, and it stays
    // declined (latched) even if later fixes look locally plausible.
    clock.set(Timestamp::from_secs(5.5));
    assert_eq!(session.get_gps_auth().err(), Some(TeeError::AccessDenied));
    clock.set(Timestamp::from_secs(6.5));
    assert_eq!(session.get_gps_auth().err(), Some(TeeError::AccessDenied));
    // Raw (unauthenticated) reads still work — only authenticity is
    // withdrawn.
    assert!(session.read_gps_raw().is_ok());
    // Batch caching is an authenticity service too.
    assert_eq!(session.cache_sample().err(), Some(TeeError::AccessDenied));
}

#[test]
fn exact_criterion_auditor_accepts_marginal_flights() {
    // Ablation: a trace that the paper criterion rejects but the exact
    // ellipse test accepts (zone beside the path at the margin).
    use alidrone::geo::sufficiency::Criterion;
    let mut rng = XorShift64::seed_from_u64(86);

    let run_with = |criterion: Criterion, rng: &mut XorShift64| {
        let end = pad().destination(90.0, Distance::from_meters(600.0));
        let route = TrajectoryBuilder::start_at(pad())
            .travel_to(end, Speed::from_mph(30.0))
            .build()
            .unwrap();
        let clock = SimClock::new();
        let receiver = Arc::new(SimulatedReceiver::from_trajectory(
            route,
            clock.clone(),
            5.0,
        ));
        let world = SecureWorldBuilder::new()
            .with_sign_key(key(87))
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .with_cost_model(CostModel::free())
            .build()
            .unwrap();
        let auditor = Auditor::new(
            AuditorConfig {
                criterion,
                ..AuditorConfig::default()
            },
            key(88),
        );
        auditor.register_zone(NoFlyZone::new(
            pad()
                .destination(90.0, Distance::from_meters(300.0))
                .destination(0.0, Distance::from_meters(40.0)),
            Distance::from_meters(15.0),
        ));
        let mut operator = DroneOperator::new(key(89), world.client());
        operator.register_with(&auditor);
        // Sample sparsely on purpose (1 Hz): marginal sufficiency.
        let record = operator
            .fly(
                &clock,
                receiver.as_ref(),
                &auditor.zone_set(),
                SamplingStrategy::FixedRate(1.0),
                Duration::from_secs(44.0),
            )
            .unwrap();
        operator
            .submit_encrypted(&auditor, &record, clock.now(), rng)
            .unwrap()
    };

    let paper = run_with(Criterion::Paper, &mut rng);
    let exact = run_with(Criterion::Exact, &mut rng);
    // Exact is never stricter.
    if paper.is_compliant() {
        assert!(exact.is_compliant());
    }
    // And in this marginal geometry, exact accepts strictly more pairs.
    let insufficient = |r: &alidrone::core::VerificationReport| {
        r.sufficiency
            .as_ref()
            .map(|s| s.insufficient_count)
            .unwrap_or(usize::MAX)
    };
    assert!(insufficient(&exact) <= insufficient(&paper));
}
