//! End-to-end protocol tests spanning every crate: receiver → TEE →
//! sampler → PoA → auditor.

use std::sync::{Arc, OnceLock};

use alidrone::core::{
    AccusationOutcome, Auditor, AuditorConfig, DroneOperator, SamplingStrategy, ZoneOwner,
};
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, Duration, GeoPoint, NoFlyZone, Speed, Timestamp};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::{CostModel, SecureWorldBuilder, TeeClient};
use alidrone_crypto::rng::XorShift64;

/// Per-seed key cache: 512-bit keygen in debug builds is slow enough
/// that regenerating per test would dominate the suite.
fn key(seed: u64) -> RsaPrivateKey {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn pad() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

struct Rig {
    clock: SimClock,
    receiver: Arc<SimulatedReceiver>,
    tee: TeeClient,
    flight_time: Duration,
}

fn rig(route_dist_m: f64, tee_seed: u64) -> Rig {
    let end = pad().destination(90.0, Distance::from_meters(route_dist_m));
    let route = TrajectoryBuilder::start_at(pad())
        .travel_to(end, Speed::from_mph(30.0))
        .build()
        .unwrap();
    let flight_time = route.total_duration();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(tee_seed))
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    Rig {
        clock,
        receiver,
        tee: world.client(),
        flight_time,
    }
}

fn auditor() -> Auditor {
    Auditor::new(AuditorConfig::default(), key(1))
}

#[test]
fn honest_flight_full_protocol() {
    let mut rng = XorShift64::seed_from_u64(100);
    let r = rig(900.0, 10);
    let auditor = auditor();
    let mut operator = DroneOperator::new(key(2), r.tee.clone());
    let drone_id = operator.register_with(&auditor);

    // Zone owner registers a zone beside (not on) the route.
    let mut owner = ZoneOwner::new(NoFlyZone::new(
        pad()
            .destination(90.0, Distance::from_meters(450.0))
            .destination(0.0, Distance::from_meters(70.0)),
        Distance::from_feet(20.0),
    ));
    owner.register_with(&auditor);

    let zones = operator
        .query_zones(
            &auditor,
            pad().destination(225.0, Distance::from_km(2.0)),
            pad().destination(45.0, Distance::from_km(2.0)),
            &mut rng,
        )
        .unwrap()
        .zone_set();
    assert_eq!(zones.len(), 1);

    let record = operator
        .fly(
            &r.clock,
            r.receiver.as_ref(),
            &zones,
            SamplingStrategy::Adaptive,
            r.flight_time,
        )
        .unwrap();
    let report = operator
        .submit_encrypted(&auditor, &record, r.clock.now(), &mut rng)
        .unwrap();
    assert!(report.is_compliant(), "verdict {}", report.verdict);

    // Owner accuses mid-flight; the stored PoA refutes it.
    let accusation = owner
        .report(drone_id, record.window_start + r.flight_time * 0.5)
        .unwrap();
    assert_eq!(
        auditor.handle_accusation(&accusation).unwrap(),
        AccusationOutcome::Refuted
    );
}

#[test]
fn violating_flight_is_caught_and_accusation_upheld() {
    let mut rng = XorShift64::seed_from_u64(101);
    let r = rig(900.0, 11);
    let auditor = auditor();
    let mut operator = DroneOperator::new(key(3), r.tee.clone());
    let drone_id = operator.register_with(&auditor);

    // Zone directly on the route.
    let mut owner = ZoneOwner::new(NoFlyZone::new(
        pad().destination(90.0, Distance::from_meters(450.0)),
        Distance::from_feet(25.0),
    ));
    owner.register_with(&auditor);

    let zones = auditor.zone_set();
    let record = operator
        .fly(
            &r.clock,
            r.receiver.as_ref(),
            &zones,
            SamplingStrategy::FixedRate(5.0),
            r.flight_time,
        )
        .unwrap();
    let report = operator
        .submit_encrypted(&auditor, &record, r.clock.now(), &mut rng)
        .unwrap();
    assert!(!report.is_compliant());

    let accusation = owner
        .report(drone_id, record.window_start + r.flight_time * 0.5)
        .unwrap();
    assert!(matches!(
        auditor.handle_accusation(&accusation).unwrap(),
        AccusationOutcome::Upheld { .. }
    ));
}

#[test]
fn multiple_drones_one_auditor() {
    let mut rng = XorShift64::seed_from_u64(102);
    let auditor = auditor();
    auditor.register_zone(NoFlyZone::new(
        pad().destination(0.0, Distance::from_km(10.0)),
        Distance::from_meters(100.0),
    ));
    let mut ids = Vec::new();
    for (i, dist) in [600.0, 900.0, 1_200.0].iter().enumerate() {
        let r = rig(*dist, 20 + i as u64);
        let mut operator = DroneOperator::new(key(30 + i as u64), r.tee.clone());
        let id = operator.register_with(&auditor);
        ids.push(id);
        let record = operator
            .fly(
                &r.clock,
                r.receiver.as_ref(),
                &auditor.zone_set(),
                SamplingStrategy::Adaptive,
                r.flight_time,
            )
            .unwrap();
        let report = operator
            .submit_encrypted(&auditor, &record, r.clock.now(), &mut rng)
            .unwrap();
        assert!(report.is_compliant());
    }
    assert_eq!(auditor.drone_count(), 3);
    assert_eq!(auditor.stored_poa_count(), 3);
    // Ids are distinct.
    ids.dedup();
    assert_eq!(ids.len(), 3);
}

#[test]
fn nonce_replay_rejected_across_flights() {
    let mut rng = XorShift64::seed_from_u64(103);
    let r = rig(500.0, 12);
    let auditor = auditor();
    let mut operator = DroneOperator::new(key(4), r.tee.clone());
    operator.register_with(&auditor);
    // Two queries with independent nonces succeed...
    operator
        .query_zones(&auditor, pad(), pad(), &mut rng)
        .unwrap();
    operator
        .query_zones(&auditor, pad(), pad(), &mut rng)
        .unwrap();
    // ...a verbatim replay of a captured query does not.
    let q = alidrone::core::ZoneQuery::new_signed(
        operator.drone_id().unwrap(),
        pad(),
        pad(),
        [9u8; 16],
        &key(4),
    )
    .unwrap();
    auditor.handle_zone_query(&q).unwrap();
    assert!(auditor.handle_zone_query(&q).is_err());
}

#[test]
fn poa_retention_expires() {
    let mut rng = XorShift64::seed_from_u64(104);
    let r = rig(500.0, 13);
    let auditor = auditor();
    let mut operator = DroneOperator::new(key(5), r.tee.clone());
    let drone_id = operator.register_with(&auditor);
    let record = operator
        .fly(
            &r.clock,
            r.receiver.as_ref(),
            &auditor.zone_set(),
            SamplingStrategy::FixedRate(1.0),
            r.flight_time,
        )
        .unwrap();
    operator
        .submit_encrypted(&auditor, &record, r.clock.now(), &mut rng)
        .unwrap();
    assert_eq!(auditor.stored_poa_count(), 1);
    // Three days later the 2-day retention has purged it; a late
    // accusation can no longer be refuted.
    let mut owner = ZoneOwner::new(NoFlyZone::new(
        pad().destination(0.0, Distance::from_km(5.0)),
        Distance::from_meters(50.0),
    ));
    owner.register_with(&auditor);
    auditor.purge_expired(Timestamp::from_secs(3.0 * 86_400.0));
    assert_eq!(auditor.stored_poa_count(), 0);
    let accusation = owner
        .report(drone_id, record.window_start + r.flight_time * 0.5)
        .unwrap();
    assert!(matches!(
        auditor.handle_accusation(&accusation).unwrap(),
        AccusationOutcome::Upheld { .. }
    ));
}

#[test]
fn tee_cost_ledger_tracks_flight() {
    let end = pad().destination(90.0, Distance::from_meters(500.0));
    let route = TrajectoryBuilder::start_at(pad())
        .travel_to(end, Speed::from_mph(30.0))
        .build()
        .unwrap();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(14))
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(CostModel::raspberry_pi_3())
        .build()
        .unwrap();
    let operator = DroneOperator::new(key(6), world.client());
    let record = operator
        .fly(
            &clock,
            receiver.as_ref(),
            &alidrone::geo::ZoneSet::new(),
            SamplingStrategy::FixedRate(2.0),
            Duration::from_secs(20.0),
        )
        .unwrap();
    let snap = world.ledger().snapshot();
    assert_eq!(snap.signatures as usize, record.sample_count());
    // Each signature costs sign_cost(512) = sign_1024 / 8 ≈ 5.1 ms plus
    // switches and the read.
    let expected = world.cost_model().get_gps_auth_cost(512).secs() * snap.signatures as f64;
    assert!((snap.busy.secs() - expected).abs() < 0.01);
}
