//! Overload-protection campaign: admission control, deadline shedding,
//! rate limiting and client circuit breaking under deterministic load.
//!
//! Four groups:
//!
//! 1. **4× overload sweep** — 50 seeds drive 4× the worker capacity of
//!    a real TCP server whose handlers are slowed by the chaos plane.
//!    Clients must see only `Ok` or typed `Overloaded`/`Timeout`
//!    errors (no panics, no silent drops), the server's shed counters
//!    must reconcile exactly with client-observed rejections, and the
//!    p99 latency of *accepted* requests must stay within the client
//!    deadline.
//! 2. **Rate-limit replay sweep** — 50 seeds drive a seeded arrival
//!    schedule through a rate-limited server twice; the full response
//!    byte vectors must be identical (the shed schedule is a pure
//!    function of the seed).
//! 3. **Circuit breaker lifecycle** — consecutive sheds open the
//!    breaker (calls fail fast, the server sees nothing), and after
//!    load subsides the breaker probes half-open and closes.
//! 4. **Deadline propagation** — a stale-budget submission queued
//!    behind a slow worker is shed *before* verification: the client
//!    sees `Timeout`, and the server records the shed without ever
//!    running `submit_poa`.
//! 5. **Live introspection** — every overload run mounts the scrape
//!    endpoint; `GET /metrics` mid-flight must return valid Prometheus
//!    text with per-stage histograms, and once the run quiesces the
//!    per-stage `_sum`s must reconcile exactly with the per-request
//!    latency totals.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use alidrone::chaos::FaultPlane;
use alidrone::core::wire::server::{AuditorServer, RateLimitConfig};
use alidrone::core::wire::tcp::{TcpServer, TcpTransport};
use alidrone::core::wire::transport::{
    AuditorClient, BreakerState, CircuitBreakerPolicy, InProcess,
};
use alidrone::core::wire::Request;
use alidrone::core::{Auditor, AuditorConfig, DroneId, ProtocolError};
use alidrone::geo::{Distance, GeoPoint, NoFlyZone, Timestamp};
use alidrone::obs::Obs;
use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;

/// Shared auditor key (512-bit keygen in debug builds is slow).
fn key() -> RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(512, &mut XorShift64::seed_from_u64(0x0AD5)))
        .clone()
}

fn zone() -> NoFlyZone {
    NoFlyZone::new(
        GeoPoint::new(40.0, -88.0).expect("valid point"),
        Distance::from_meters(50.0),
    )
}

fn now() -> Timestamp {
    Timestamp::from_secs(100.0)
}

/// Client-observed outcome of one logical call, bucketed for
/// reconciliation against the server's shed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Outcome {
    Ok,
    Overloaded,
    Timeout,
    Other,
}

// ------------------------------------------------------- 1. 4× sweep

/// A minimal HTTP/1.0 GET against the scrape endpoint, returning the
/// response body (everything past the blank line).
fn http_get_body(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect scrape endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send scrape request");
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .expect("read scrape response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("http head/body split");
    assert!(head.starts_with("HTTP/1.0 200"), "scrape failed: {head}");
    body.to_string()
}

/// The server's request pipeline stages, as exported to Prometheus.
const PIPELINE_STAGES: [&str; 4] = ["decode", "admission", "handle", "encode"];

/// The value of an unlabelled sample line, if present.
fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let (metric, value) = line.rsplit_once(' ')?;
        if metric == name {
            value.parse().ok()
        } else {
            None
        }
    })
}

/// Structural validation of the exposition format: every line is a
/// `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample whose
/// name stays in the identifier charset and whose value parses as a
/// number — and the per-stage histograms must be present.
fn assert_valid_prometheus(body: &str, seed: u64) {
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "seed {seed}: unknown comment {line:?}"
            );
            continue;
        }
        let (metric, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("seed {seed}: sample without value: {line:?}"));
        let name_end = metric.find('{').unwrap_or(metric.len());
        let name = &metric[..name_end];
        assert!(
            !name.is_empty()
                && !name.starts_with(|c: char| c.is_ascii_digit())
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "seed {seed}: bad metric name in {line:?}"
        );
        if name_end < metric.len() {
            assert!(
                metric.ends_with('}'),
                "seed {seed}: unterminated labels in {line:?}"
            );
        }
        assert!(
            value.parse::<f64>().is_ok(),
            "seed {seed}: non-numeric value in {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "seed {seed}: empty scrape");
    for stage in PIPELINE_STAGES {
        assert!(
            body.contains(&format!("server_stage_{stage}_bucket{{le=")),
            "seed {seed}: missing per-stage histogram for {stage:?}"
        );
    }
}

/// On a quiescent server, every executed request contributed the same
/// microseconds to each stage histogram as to its per-kind latency
/// histogram — so the scraped `_sum`s and `_count`s must reconcile.
fn assert_stage_sums_reconcile(body: &str, seed: u64) {
    let latency_lines = |suffix: &str| -> Vec<f64> {
        body.lines()
            .filter_map(|line| {
                let (metric, value) = line.rsplit_once(' ')?;
                (metric.starts_with("server_latency_") && metric.ends_with(suffix))
                    .then(|| value.parse::<f64>().expect("numeric sample"))
            })
            .collect()
    };
    let latency_sum: f64 = latency_lines("_sum").iter().sum();
    let latency_count: f64 = latency_lines("_count").iter().sum();

    for stage in PIPELINE_STAGES {
        let count = metric_value(body, &format!("server_stage_{stage}_count"))
            .unwrap_or_else(|| panic!("seed {seed}: no count for stage {stage:?}"));
        assert_eq!(
            count, latency_count,
            "seed {seed}: stage {stage:?} count diverges from executed requests"
        );
    }
    let stage_sum: f64 = PIPELINE_STAGES
        .iter()
        .map(|stage| {
            metric_value(body, &format!("server_stage_{stage}_sum"))
                .unwrap_or_else(|| panic!("seed {seed}: no sum for stage {stage:?}"))
        })
        .sum();
    // The underlying microsecond totals are equal integers; only the
    // µs → s float conversion leaves room for rounding.
    assert!(
        (stage_sum - latency_sum).abs() <= 1e-9 + latency_sum * 1e-12,
        "seed {seed}: stage sums {stage_sum} do not reconcile with latency totals {latency_sum}"
    );
    // Queue wait is measured per executed request too, but outside the
    // latency total (it precedes the pipeline).
    assert_eq!(
        metric_value(body, "server_stage_queue_wait_count"),
        Some(latency_count),
        "seed {seed}: queue-wait count diverges from executed requests"
    );
}

/// What one overload run produced: per-call client outcomes, server
/// counters, and two live `/metrics` scrapes (one mid-flight, one
/// after the clients quiesced).
struct OverloadRun {
    results: Vec<(Outcome, Duration)>,
    counters: HashMap<&'static str, u64>,
    midflight_metrics: String,
    quiesced_metrics: String,
}

/// One overload run: `threads` clients (each making `calls` sequential
/// register-zone calls over a fresh connection per call) against a
/// server with `workers` workers and a bounded admission queue.
/// Returns per-call (outcome, wall latency) plus the server's obs
/// snapshot counters.
fn overload_run(seed: u64) -> OverloadRun {
    const WORKERS: usize = 2;
    const THREADS: usize = 8; // 4× worker capacity
    const CALLS_PER_THREAD: usize = 3;
    const DEADLINE: Duration = Duration::from_millis(500);

    let plane = FaultPlane::new(seed);
    let obs = Obs::noop();
    let server = Arc::new(
        AuditorServer::builder(Auditor::new(AuditorConfig::default(), key()))
            .obs(&obs)
            .workers(WORKERS)
            .queue_cap(WORKERS)
            .read_timeout(Duration::from_millis(100))
            .handle_delay(plane.delay_hook("server.slow", 0.75, Duration::from_millis(3)))
            .scrape("127.0.0.1:0".parse().expect("loopback addr"))
            .build(),
    );
    let scrape_addr = server.scrape_addr().expect("scrape endpoint bound");
    let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    let addr = tcp.local_addr();

    let results = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let results = Arc::clone(&results);
            thread::spawn(move || {
                for _ in 0..CALLS_PER_THREAD {
                    // A fresh connection per logical call: a rejected
                    // connection is closed by the server, so reusing it
                    // would surface ambiguous transport errors instead
                    // of the typed rejection.
                    let transport = TcpTransport::new(addr)
                        .timeouts(Duration::from_secs(5), Duration::from_secs(5));
                    let mut client = AuditorClient::new(transport).deadline(DEADLINE);
                    let t0 = Instant::now();
                    let outcome = match client.register_zone(zone(), now()) {
                        Ok(_) => Outcome::Ok,
                        Err(ProtocolError::Overloaded { retry_after_ms }) => {
                            assert!(retry_after_ms > 0, "shed without a retry hint");
                            Outcome::Overloaded
                        }
                        Err(ProtocolError::Timeout) => Outcome::Timeout,
                        Err(_) => Outcome::Other,
                    };
                    results.lock().unwrap().push((outcome, t0.elapsed()));
                }
            })
        })
        .collect();
    // Live scrape while the client threads are still hammering: the
    // endpoint must answer without perturbing the campaign.
    let midflight_metrics = http_get_body(scrape_addr, "/metrics");
    for h in handles {
        h.join().expect("client thread");
    }
    // All clients joined and the queue drained, so this scrape is a
    // quiescent cut: stage sums can reconcile exactly.
    let quiesced_metrics = http_get_body(scrape_addr, "/metrics");
    tcp.shutdown();

    let snap = obs.snapshot();
    let mut counters = HashMap::new();
    for name in [
        "server.requests",
        "server.shed.queue_full",
        "server.shed.expired",
        "server.shed.ratelimited",
    ] {
        counters.insert(name, snap.counter(name));
    }
    let results = Arc::try_unwrap(results)
        .expect("all threads joined")
        .into_inner()
        .unwrap();
    OverloadRun {
        results,
        counters,
        midflight_metrics,
        quiesced_metrics,
    }
}

#[test]
fn four_x_overload_sheds_typed_errors_only_and_counters_reconcile() {
    const SEEDS: u64 = 50;
    const DEADLINE: Duration = Duration::from_millis(500);
    let mut total_shed = 0u64;
    let mut accepted_latencies: Vec<Duration> = Vec::new();

    for seed in 0..SEEDS {
        let run = overload_run(seed);
        let (results, counters) = (run.results, run.counters);
        assert_eq!(results.len(), 24, "seed {seed}: lost calls");

        // Live introspection rides the campaign: the mid-flight scrape
        // must already be well-formed, and the quiescent scrape's
        // per-stage sums must reconcile with the latency totals.
        assert_valid_prometheus(&run.midflight_metrics, seed);
        assert_valid_prometheus(&run.quiesced_metrics, seed);
        assert_stage_sums_reconcile(&run.quiesced_metrics, seed);

        let count = |o: Outcome| results.iter().filter(|(r, _)| *r == o).count() as u64;
        // Typed errors only: every call resolved to Ok, Overloaded or
        // Timeout — never a panic, connection reset, or silent drop.
        assert_eq!(
            count(Outcome::Other),
            0,
            "seed {seed}: untyped failures in {results:?}"
        );

        // Reconciliation: every client-observed rejection matches a
        // server-side shed counter, one for one. (No rate limiter in
        // this config, so Overloaded can only mean queue-full.)
        assert_eq!(counters["server.shed.ratelimited"], 0);
        assert_eq!(
            counters["server.shed.queue_full"],
            count(Outcome::Overloaded),
            "seed {seed}: queue-full sheds do not reconcile"
        );
        assert_eq!(
            counters["server.shed.expired"],
            count(Outcome::Timeout),
            "seed {seed}: expired sheds do not reconcile"
        );
        // Everything the server *handled* (including expired sheds,
        // which pass through the handler's admission checks) is a
        // client Ok or Timeout; queue-full rejects never reach it.
        assert_eq!(
            counters["server.requests"],
            count(Outcome::Ok) + count(Outcome::Timeout),
            "seed {seed}: handled-request accounting broken"
        );

        total_shed += counters["server.shed.queue_full"] + counters["server.shed.expired"];
        accepted_latencies.extend(
            results
                .iter()
                .filter(|(r, _)| *r == Outcome::Ok)
                .map(|(_, d)| *d),
        );
    }

    // The sweep must have produced real overload somewhere.
    assert!(
        total_shed > 0,
        "4x load never filled a 2-slot queue across {SEEDS} seeds"
    );
    // Accepted requests stay fast *because* the rest were shed: p99
    // within the client deadline.
    accepted_latencies.sort();
    assert!(!accepted_latencies.is_empty());
    let p99 = accepted_latencies[(accepted_latencies.len() - 1) * 99 / 100];
    assert!(
        p99 <= DEADLINE,
        "accepted p99 {p99:?} blew the {DEADLINE:?} deadline"
    );
}

// ------------------------------------------------ 2. rate-limit replay

/// Drives a seeded arrival schedule through a rate-limited server and
/// returns the exact response bytes, in order.
fn rate_limit_run(seed: u64) -> Vec<Vec<u8>> {
    let plane = FaultPlane::new(seed);
    let server = AuditorServer::builder(Auditor::new(AuditorConfig::default(), key()))
        .rate_limit(RateLimitConfig {
            tokens_per_sec: 25.0,
            burst: 20.0,
            retry_after_cap_ms: 2_000,
        })
        .build();
    let arrivals = plane.stream("arrivals");
    let mut t = 0.0f64;
    (0..40)
        .map(|i| {
            // Seeded inter-arrival in [0, 0.4) s; two drones interleave
            // so both buckets see pressure.
            t += arrivals.below(400) as f64 / 1000.0;
            let req = Request::SubmitPoa {
                drone_id: DroneId::new(1 + (i % 2)),
                window_start: Timestamp::from_secs(0.0),
                window_end: Timestamp::from_secs(1.0),
                poa: vec![0xAB; 8],
            };
            server.handle(&req.to_bytes(), Timestamp::from_secs(t))
        })
        .collect()
}

#[test]
fn rate_limited_response_schedule_replays_byte_identically() {
    const SEEDS: u64 = 50;
    let mut shed_seen = false;
    let mut admitted_seen = false;
    for seed in 0..SEEDS {
        let first = rate_limit_run(seed);
        let second = rate_limit_run(seed);
        assert_eq!(first, second, "seed {seed}: shed schedule not replayable");
        // Overloaded responses are tagged 7 (first byte); anything else
        // was admitted to the handler.
        shed_seen |= first.iter().any(|r| r.first() == Some(&7));
        admitted_seen |= first.iter().any(|r| r.first() != Some(&7));
    }
    assert!(shed_seen, "no seed ever tripped the rate limiter");
    assert!(admitted_seen, "rate limiter shed everything");
}

// ------------------------------------------------ 3. breaker lifecycle

#[test]
fn breaker_opens_under_shedding_and_recovers_when_load_subsides() {
    let obs = Obs::noop();
    // SubmitPoa costs 10 tokens; a 10-token bucket admits exactly one
    // burst, then sheds until the request clock refills it.
    let server = AuditorServer::builder(Auditor::new(AuditorConfig::default(), key()))
        .obs(&obs)
        .rate_limit(RateLimitConfig {
            tokens_per_sec: 10.0,
            burst: 10.0,
            retry_after_cap_ms: 5_000,
        })
        .build();
    let mut client = AuditorClient::with_obs(InProcess::shared(Arc::new(server), &obs), &obs)
        .circuit_breaker(CircuitBreakerPolicy {
            failure_threshold: 3,
            open_secs: 2.0,
            half_open_successes: 1,
            jitter_seed: 0xCAFE,
        });
    let submit = |c: &mut AuditorClient<InProcess>, t: f64| {
        c.submit_poa(
            DroneId::new(1),
            (Timestamp::from_secs(0.0), Timestamp::from_secs(1.0)),
            &alidrone::core::ProofOfAlibi::from_entries(Vec::new()),
            Timestamp::from_secs(t),
        )
    };

    // t=0: one admitted burst (the server answers — breaker success),
    // then three sheds trip the breaker.
    assert!(!matches!(
        submit(&mut client, 0.0).unwrap_err(),
        ProtocolError::Overloaded { .. }
    ));
    for _ in 0..3 {
        assert!(matches!(
            submit(&mut client, 0.0).unwrap_err(),
            ProtocolError::Overloaded { .. }
        ));
    }
    assert!(matches!(
        client.breaker_snapshot(),
        Some(BreakerState::Open { .. })
    ));

    // While open, calls fail fast: the server never sees them.
    let served_before = obs.snapshot().counter("server.requests");
    assert_eq!(
        submit(&mut client, 1.0).unwrap_err(),
        ProtocolError::CircuitOpen
    );
    assert_eq!(obs.snapshot().counter("server.requests"), served_before);

    // Load subsides: past the open interval (2 s + ≤1 s jitter) the
    // breaker half-opens; the bucket has refilled on the request
    // clock, the probe is admitted, and one success closes it.
    assert!(!matches!(
        submit(&mut client, 20.0).unwrap_err(),
        ProtocolError::Overloaded { .. } | ProtocolError::CircuitOpen
    ));
    assert_eq!(
        client.breaker_snapshot(),
        Some(BreakerState::Closed {
            consecutive_failures: 0
        })
    );
    let snap = obs.snapshot();
    assert_eq!(snap.counter("transport.breaker.opened"), 1);
    assert_eq!(snap.counter("transport.breaker.rejected"), 1);
    assert_eq!(snap.counter("transport.breaker.half_open"), 1);
    assert_eq!(snap.counter("transport.breaker.closed"), 1);
    assert_eq!(snap.counter("server.shed.ratelimited"), 3);
}

// -------------------------------------------- 4. deadline propagation

#[test]
fn stale_deadline_submission_is_shed_before_verification() {
    let obs = Obs::noop();
    let server = Arc::new(
        AuditorServer::builder(Auditor::new(AuditorConfig::default(), key()))
            .obs(&obs)
            .workers(1)
            .read_timeout(Duration::from_millis(100))
            .handle_delay(|| Duration::from_millis(80))
            .build(),
    );
    let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    let addr = tcp.local_addr();

    // Occupy the single worker for ~80 ms.
    let occupier = thread::spawn(move || {
        let mut c = AuditorClient::new(TcpTransport::new(addr));
        c.register_zone(zone(), now()).expect("occupier call");
    });
    thread::sleep(Duration::from_millis(30));

    // This submission's 25 ms budget expires while it waits behind the
    // occupier; the server must shed it without running submit_poa.
    let mut stale = AuditorClient::new(TcpTransport::new(addr)).deadline(Duration::from_millis(25));
    let err = stale
        .submit_poa(
            DroneId::new(1),
            (Timestamp::from_secs(0.0), Timestamp::from_secs(1.0)),
            &alidrone::core::ProofOfAlibi::from_entries(Vec::new()),
            now(),
        )
        .unwrap_err();
    assert_eq!(err, ProtocolError::Timeout);

    occupier.join().expect("occupier thread");
    tcp.shutdown();

    let snap = obs.snapshot();
    assert_eq!(snap.counter("server.shed.expired"), 1);
    // Shed *before* execution: the submit handler never ran, so its
    // latency histogram is empty and nothing was stored.
    assert_eq!(
        snap.histogram("server.latency.submit_poa")
            .expect("pre-registered")
            .count,
        0
    );
    assert_eq!(server.auditor().stored_poa_count(), 0);
}

// --------------------------------------------- health under pressure

#[test]
fn health_checks_survive_total_rate_limiting() {
    // A zero-capacity bucket sheds every costed request, but health
    // checks short-circuit before admission control.
    let server = AuditorServer::builder(Auditor::new(AuditorConfig::default(), key()))
        .rate_limit(RateLimitConfig {
            tokens_per_sec: 0.0,
            burst: 0.0,
            retry_after_cap_ms: 1_000,
        })
        .build();
    let mut c = AuditorClient::new(InProcess::new(server));
    assert!(matches!(
        c.register_zone(zone(), now()).unwrap_err(),
        ProtocolError::Overloaded { .. }
    ));
    assert_eq!(c.health_check(now()).unwrap(), (0, 0));
}
