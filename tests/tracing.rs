//! End-to-end tracing tests: a full airport-scenario PoA must appear as
//! ONE stitched trace — drone-side sample spans (with the TEE sign span
//! as their child), the client's wire span, and the server's request
//! span with the auditor's verify span under it, all sharing a trace id.

use alidrone::core::wire::server::AuditorServer;
use alidrone::core::wire::transport::{AuditorClient, InProcess};
use alidrone::core::{Auditor, AuditorConfig, SamplingStrategy};
use alidrone::geo::Timestamp;
use alidrone::obs::export::chrome_trace;
use alidrone::obs::{Json, SpanRecord};
use alidrone::sim::runner::{experiment_key, run_scenario, ScenarioRun};
use alidrone::sim::scenarios::airport;
use alidrone::tee::CostModel;
use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;

/// Runs the airport scenario adaptively and submits its PoA through a
/// traced in-process wire stack sharing the run's obs handle.
fn traced_submission() -> (ScenarioRun, AuditorClient<InProcess>) {
    let scenario = airport();
    let run = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )
    .expect("adaptive run");

    let obs = run.obs.clone();
    let mut rng = XorShift64::seed_from_u64(0x7e57);
    let auditor_key = RsaPrivateKey::generate(512, &mut rng);
    let operator_key = RsaPrivateKey::generate(512, &mut rng);
    let auditor = Auditor::with_obs(AuditorConfig::default(), auditor_key, &obs);
    let server = std::sync::Arc::new(
        AuditorServer::builder(auditor)
            .obs(&obs)
            .flight_recorder(run.recorder.clone())
            .build(),
    );
    let mut client = AuditorClient::with_obs(InProcess::shared(server, &obs), &obs);
    client.set_trace_parent(run.flight_span);

    let now = Timestamp::from_secs(scenario.duration.secs() + 60.0);
    let drone = client
        .register_drone(
            operator_key.public_key().clone(),
            run.tee.tee_public_key(),
            now,
        )
        .expect("register drone");
    for zone in scenario.zones.iter() {
        client.register_zone(*zone, now).expect("register zone");
    }
    client
        .submit_poa(
            drone,
            (run.record.window_start, run.record.window_end),
            &run.record.poa,
            now,
        )
        .expect("submit poa");
    (run, client)
}

fn by_name<'a>(spans: &'a [SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.name == name).collect()
}

#[test]
fn airport_poa_is_one_stitched_trace() {
    let (run, _client) = traced_submission();
    let spans = run.recorder.spans();
    assert_eq!(
        run.recorder.dropped_spans(),
        0,
        "recorder must hold the whole trace"
    );

    let flight = run.flight_span.expect("traced run has a flight span");
    for name in [
        "flight",
        "drone.sample",
        "tee.sign",
        "wire.submit_poa",
        "server.submit_poa",
        "auditor.verify",
    ] {
        let found = by_name(&spans, name);
        assert!(!found.is_empty(), "no {name} span recorded");
        for s in &found {
            assert_eq!(
                s.context.trace_id, flight.trace_id,
                "{name} span is not in the flight's trace"
            );
        }
    }

    // Parenting: tee.sign under drone.sample under flight; the wire
    // span under flight; server.submit_poa under the wire span;
    // auditor.verify under server.submit_poa.
    let sample_ids: Vec<u64> = by_name(&spans, "drone.sample")
        .iter()
        .map(|s| s.context.span_id)
        .collect();
    for sign in by_name(&spans, "tee.sign") {
        let parent = sign.context.parent_id.expect("tee.sign has a parent");
        assert!(
            sample_ids.contains(&parent),
            "tee.sign parented outside drone.sample"
        );
    }
    for sample in by_name(&spans, "drone.sample") {
        assert_eq!(sample.context.parent_id, Some(flight.span_id));
    }
    let wire = by_name(&spans, "wire.submit_poa");
    assert_eq!(wire.len(), 1);
    assert_eq!(wire[0].context.parent_id, Some(flight.span_id));
    let server = by_name(&spans, "server.submit_poa");
    assert_eq!(server.len(), 1);
    assert_eq!(server[0].context.parent_id, Some(wire[0].context.span_id));
    let verify = by_name(&spans, "auditor.verify");
    assert_eq!(verify.len(), 1);
    assert_eq!(verify[0].context.parent_id, Some(server[0].context.span_id));

    // The exported document is valid Chrome trace JSON: it survives the
    // hand-rolled parser and exposes one complete event per span.
    let doc = chrome_trace(&spans, &run.recorder.events());
    let parsed = Json::parse(&doc.to_pretty()).expect("chrome trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .count();
    assert_eq!(complete, spans.len());
}

#[test]
fn malformed_frame_dumps_the_flight_recorder() {
    let (_run, client) = traced_submission();
    let server = client.transport().server_arc();
    assert!(server.last_crash_dump().is_none());
    let now = Timestamp::from_secs(1_000.0);
    let _ = server.handle(&[0xDE, 0xAD, 0xBE, 0xEF], now);
    let dump = server
        .last_crash_dump()
        .expect("malformed frame must dump the recorder");
    assert!(!dump.is_empty(), "dump must carry the trace so far");
    assert!(!dump.spans.is_empty());
    assert!(dump.spans.iter().any(|s| s.name == "server.submit_poa"));
}
