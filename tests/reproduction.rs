//! Reproduction claims: the headline quantitative results of the paper's
//! evaluation section, asserted as tests. Each test names the paper
//! artefact it guards.
//!
//! Absolute agreement is asserted only where our substrate genuinely
//! pins the number (e.g. the 1 Hz fixed-rate sample count and the
//! cost-model-calibrated Table II cells); elsewhere the test pins the
//! *shape* — orderings, feasibility patterns, crossovers.

use std::sync::OnceLock;

use alidrone::core::SamplingStrategy;
use alidrone::sim::power::{fixed_rate_row, paper_table2, scenario_row};
use alidrone::sim::runner::{experiment_key, run_scenario, ScenarioRun};
use alidrone::sim::scenarios::{airport, residential};
use alidrone::tee::CostModel;

/// Runs are cached: the residential scenario in a debug build costs a
/// few seconds per strategy.
fn airport_runs() -> &'static (ScenarioRun, ScenarioRun) {
    static RUNS: OnceLock<(ScenarioRun, ScenarioRun)> = OnceLock::new();
    RUNS.get_or_init(|| {
        let s = airport();
        (
            run_scenario(
                &s,
                SamplingStrategy::FixedRate(1.0),
                experiment_key(),
                CostModel::free(),
            )
            .unwrap(),
            run_scenario(
                &s,
                SamplingStrategy::Adaptive,
                experiment_key(),
                CostModel::free(),
            )
            .unwrap(),
        )
    })
}

fn residential_runs() -> &'static [(f64, ScenarioRun); 4] {
    static RUNS: OnceLock<[(f64, ScenarioRun); 4]> = OnceLock::new();
    RUNS.get_or_init(|| {
        let s = residential();
        let go = |st| run_scenario(&s, st, experiment_key(), CostModel::free()).unwrap();
        [
            (2.0, go(SamplingStrategy::FixedRate(2.0))),
            (3.0, go(SamplingStrategy::FixedRate(3.0))),
            (5.0, go(SamplingStrategy::FixedRate(5.0))),
            (0.0, go(SamplingStrategy::Adaptive)),
        ]
    })
}

// ------------------------------------------------------------------ Fig 6

#[test]
fn fig6_fixed_1hz_collects_649_samples() {
    // Paper: "the 649 samples collected by 1Hz fix rate sampling".
    let (fixed, _) = airport_runs();
    assert!(
        (fixed.sample_count() as i64 - 649).abs() <= 2,
        "got {}",
        fixed.sample_count()
    );
}

#[test]
fn fig6_adaptive_uses_order_of_magnitude_fewer() {
    // Paper: adaptive uses 14 samples → 46x fewer. Our drive profile is
    // constant-speed, which yields ~24 → >25x; the shape claim is the
    // order-of-magnitude reduction at equal sufficiency.
    let (fixed, adaptive) = airport_runs();
    let ratio = fixed.sample_count() as f64 / adaptive.sample_count() as f64;
    assert!(ratio > 20.0, "reduction only {ratio:.1}x");
    assert!(
        adaptive.sample_count() < 35,
        "adaptive {}",
        adaptive.sample_count()
    );
}

#[test]
fn fig6_adaptive_sampling_density_falls_with_distance() {
    let (_, adaptive) = airport_runs();
    let series = alidrone::sim::metrics::fig6_series(&adaptive.record);
    let total = series.last().unwrap().cumulative_samples as f64;
    let within_500ft = series
        .iter()
        .find(|p| p.distance_ft >= 500.0)
        .unwrap()
        .cumulative_samples as f64;
    assert!(
        within_500ft / total > 0.4,
        "only {within_500ft}/{total} samples within 500 ft"
    );
}

// ------------------------------------------------------------------ Fig 8

#[test]
fn fig8a_distance_profile() {
    // Paper: 50–100 ft early, 20–70 ft dense, minimum 21 ft.
    let runs = residential_runs();
    let series = alidrone::sim::metrics::fig8a_series(&runs[0].1.record);
    let min = series.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
    assert!((min - 21.0).abs() < 3.0, "min {min} ft (paper 21 ft)");
}

#[test]
fn fig8b_adaptive_rate_adapts_to_density() {
    let runs = residential_runs();
    let adaptive = &runs[3].1;
    let series = alidrone::sim::metrics::fig8b_series(&adaptive.record, 4.0);
    let early: Vec<f64> = series
        .iter()
        .filter(|p| p.t < 40.0)
        .map(|p| p.value)
        .collect();
    let late: Vec<f64> = series
        .iter()
        .filter(|p| p.t > 100.0)
        .map(|p| p.value)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    // Paper Fig. 8(b): below ~2 Hz in the sparse stretch, pushed toward
    // the hardware maximum among the dense houses.
    assert!(mean(&early) < 2.5, "early mean {:.2} Hz", mean(&early));
    assert!(mean(&late) > mean(&early) + 1.0, "no adaptation visible");
}

#[test]
fn fig8c_insufficiency_ordering_matches_paper() {
    // Paper: 39 (2 Hz) > 9 (3 Hz) > ~1 (5 Hz) ≈ 1 (adaptive).
    let runs = residential_runs();
    let c2 = runs[0].1.insufficient_pairs;
    let c3 = runs[1].1.insufficient_pairs;
    let c5 = runs[2].1.insufficient_pairs;
    let ca = runs[3].1.insufficient_pairs;
    assert!(c2 > c3 && c3 > c5, "ordering broken: {c2} / {c3} / {c5}");
    assert!(c2 >= 20, "2 Hz should fail tens of pairs, got {c2}");
    assert!(c5 <= 3, "5 Hz should be near-sufficient, got {c5}");
    assert!(ca <= c5 + 1 && ca >= 1, "adaptive {ca} vs 5 Hz {c5}");
}

#[test]
fn fig8c_adaptive_single_insufficiency_is_the_dropout() {
    // Paper §VI-A3: "an insufficient PoA is identified at a time the
    // vehicle is 25 ft to an NFZ … the GPS hardware misses an update".
    let scen = residential();
    let adaptive = &residential_runs()[3].1;
    let report = alidrone::geo::sufficiency::check_alibi(
        &adaptive.record.poa.alibi(),
        &scen.zones,
        alidrone::geo::FAA_MAX_SPEED,
        alidrone::geo::sufficiency::Criterion::Paper,
    );
    assert_eq!(report.insufficient_count, 1);
    // The offending pair sits in the dense stretch near the dropout.
    let idx = report.insufficient_indices()[0];
    let alibi = adaptive.record.poa.alibi();
    let t = alibi[idx].time().secs();
    let dropout_t = scen.dropouts[0] as f64 / scen.hw_rate_hz;
    assert!(
        (t - dropout_t).abs() < 2.0,
        "insufficient pair at t={t:.1}s, dropout at t={dropout_t:.1}s"
    );
}

// --------------------------------------------------------------- Table II

#[test]
fn table2_fixed_rate_cells_match_paper() {
    let model = CostModel::raspberry_pi_3();
    for (bits, case, cpu, power) in paper_table2() {
        let Some(rate) = case
            .strip_prefix("Fixed ")
            .and_then(|r| r.strip_suffix(" Hz").and_then(|x| x.parse::<f64>().ok()))
        else {
            continue;
        };
        let row = fixed_rate_row(&model, bits, rate);
        match (cpu, row.cpu_pct) {
            (None, None) => {} // both infeasible: the 2048 @ 5 Hz cell
            (Some(p), Some(m)) => {
                assert!(
                    (m - p).abs() / p < 0.15,
                    "{bits}-bit {case}: {m:.2}% vs paper {p}%"
                );
                let pw = row.power_w.unwrap();
                let ppw = power.unwrap();
                assert!(
                    (pw - ppw).abs() < 0.005,
                    "{bits}-bit {case}: {pw} W vs {ppw} W"
                );
            }
            (p, m) => panic!("{bits}-bit {case}: feasibility mismatch {p:?} vs {m:?}"),
        }
    }
}

#[test]
fn table2_airport_cell_is_negligible_cpu() {
    // Paper: 0.024 % (1024-bit). The shape claim: adaptive sampling on a
    // receding zone costs well under 0.1 % of the four cores.
    let model = CostModel::raspberry_pi_3();
    let s = airport();
    let (_, adaptive) = airport_runs();
    let row = scenario_row(
        &model,
        1024,
        "Airport",
        adaptive.sample_count(),
        s.duration,
        1.0,
    );
    assert!(row.cpu_pct.unwrap() < 0.1, "{:?}", row.cpu_pct);
}

#[test]
fn table2_residential_cell_feasibility_pattern() {
    // Paper: residential is feasible at 1024 bits (1.567 %) and "-" at
    // 2048 bits (adaptive demands the full 5 Hz near the houses, which a
    // 2048-bit signature cannot sustain).
    let model = CostModel::raspberry_pi_3();
    let s = residential();
    let adaptive = &residential_runs()[3].1;
    let peak = alidrone::sim::metrics::fig8b_series(&adaptive.record, 4.0)
        .iter()
        .map(|p| p.value)
        .fold(0.0f64, f64::max);
    let r1024 = scenario_row(
        &model,
        1024,
        "Residential",
        adaptive.sample_count(),
        s.duration,
        peak,
    );
    let r2048 = scenario_row(
        &model,
        2048,
        "Residential",
        adaptive.sample_count(),
        s.duration,
        peak,
    );
    assert!(!r1024.is_infeasible());
    assert!(r1024.cpu_pct.unwrap() < 6.0, "{:?}", r1024.cpu_pct);
    assert!(r2048.is_infeasible());
}

#[test]
fn table2_key_size_cost_ratio() {
    // Paper's implicit claim: 2048-bit signing is ~5x the 1024-bit cost
    // (10.94/2.17 = 5.04 at 2 Hz).
    let model = CostModel::raspberry_pi_3();
    let r1 = fixed_rate_row(&model, 1024, 2.0).cpu_pct.unwrap();
    let r2 = fixed_rate_row(&model, 2048, 2.0).cpu_pct.unwrap();
    let ratio = r2 / r1;
    assert!(ratio > 4.5 && ratio < 5.6, "ratio {ratio:.2}");
}
