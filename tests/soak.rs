//! Workspace-level soak smoke: a small fleet campaign end to end
//! through the `alidrone` facade — real TCP auditor, scrape-fed
//! time-series, SLO verdicts, machine-checked report.
//!
//! The full campaign lives in `exp_soak` (and CI's `make soak-smoke`);
//! this test keeps the path — fleet driver, sampler, SLO engine,
//! report schema — under `cargo test` at a size that stays fast.

use std::time::Duration;

use alidrone::obs::Json;
use alidrone::sim::fleet::{check_report, run_fleet, soak_report_json, FleetConfig};

fn small_config() -> FleetConfig {
    FleetConfig {
        clients: 2,
        label_cap: 10,
        sample_every: Duration::from_millis(200),
        ..FleetConfig::soak(0xA11B1, 16)
    }
}

/// The degraded phase must be flagged as an SLO breach while every
/// healthy phase passes, the per-phase op ledger must agree with the
/// server's request counter, and the serialised report must survive a
/// disk-shaped round trip through the machine checker.
#[test]
fn small_fleet_soak_breaches_only_where_expected() {
    let outcome = run_fleet(&small_config());

    let breached: Vec<&str> = outcome
        .phases
        .iter()
        .filter(|p| p.breached)
        .map(|p| p.name)
        .collect();
    assert_eq!(breached, ["degraded"], "only the chaos phase may breach");
    for p in &outcome.phases {
        assert_eq!(p.ops, p.requests_delta, "phase {}", p.name);
    }
    assert!(outcome.reconciliation.iter().all(|r| r.ok()));
    assert!(outcome.scrape_matches_registry);
    // The label cap is below the fleet size, so the interner must
    // have collapsed the surplus drones into the `other` series.
    assert_eq!(outcome.labels_admitted, 10);
    assert!(outcome.labels_dropped > 0);

    let text = soak_report_json(&outcome).to_pretty();
    let parsed = Json::parse(&text).expect("report parses");
    check_report(&parsed).expect("report machine-checks");
}
