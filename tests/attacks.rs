//! Threat-model coverage (paper §III-B): every forgery strategy the
//! paper attributes to a dishonest Drone Operator must be rejected by the
//! auditor, through the real cross-crate stack.

use std::sync::{Arc, OnceLock};

use alidrone::core::{
    Auditor, AuditorConfig, DroneOperator, PoaSubmission, ProofOfAlibi, SamplingStrategy,
    Submission, Verdict,
};
use alidrone::crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, Duration, GeoPoint, GpsSample, NoFlyZone, Speed, Timestamp};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::{CostModel, SecureWorldBuilder, SignedSample};
use alidrone_crypto::rng::XorShift64;

fn key(seed: u64) -> RsaPrivateKey {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static KEYS: OnceLock<Mutex<HashMap<u64, RsaPrivateKey>>> = OnceLock::new();
    let cache = KEYS.get_or_init(Default::default);
    let mut map = cache.lock().unwrap();
    map.entry(seed)
        .or_insert_with(|| {
            let mut rng = XorShift64::seed_from_u64(seed);
            RsaPrivateKey::generate(512, &mut rng)
        })
        .clone()
}

fn pad() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

/// A fixture: honest flight record + registered auditor/operator, with a
/// zone beside the route. Built once and cloned by every attack test.
struct Fixture {
    auditor: Auditor,
    honest: alidrone::core::FlightRecord,
    drone_id: alidrone::core::DroneId,
    now: Timestamp,
}

fn fixture() -> Fixture {
    let end = pad().destination(90.0, Distance::from_meters(800.0));
    let route = TrajectoryBuilder::start_at(pad())
        .travel_to(end, Speed::from_mph(30.0))
        .build()
        .unwrap();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_sign_key(key(50))
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let auditor = Auditor::new(AuditorConfig::default(), key(51));
    auditor.register_zone(NoFlyZone::new(
        pad()
            .destination(90.0, Distance::from_meters(400.0))
            .destination(0.0, Distance::from_meters(100.0)),
        Distance::from_meters(30.0),
    ));
    let mut operator = DroneOperator::new(key(52), world.client());
    let drone_id = operator.register_with(&auditor);
    let honest = operator
        .fly(
            &clock,
            receiver.as_ref(),
            &auditor.zone_set(),
            SamplingStrategy::Adaptive,
            Duration::from_secs(59.0),
        )
        .unwrap();
    Fixture {
        auditor,
        honest,
        drone_id,
        now: clock.now(),
    }
}

fn submit(f: &mut Fixture, poa: ProofOfAlibi) -> Verdict {
    f.auditor
        .verify(
            &Submission::plain(PoaSubmission {
                drone_id: f.drone_id,
                window_start: f.honest.window_start,
                window_end: f.honest.window_end,
                poa,
            }),
            f.now,
        )
        .expect("registered drone")
        .verdict
}

#[test]
fn honest_baseline_is_compliant() {
    let mut f = fixture();
    let poa = f.honest.poa.clone();
    assert_eq!(submit(&mut f, poa), Verdict::Compliant);
}

#[test]
fn precomputed_route_with_attacker_key_rejected() {
    let mut f = fixture();
    let attacker_key = key(53);
    let forged: ProofOfAlibi = f
        .honest
        .poa
        .alibi()
        .iter()
        .map(|s| {
            let sig = attacker_key.sign(&s.to_bytes(), HashAlg::Sha1).unwrap();
            SignedSample::from_parts(*s, sig, HashAlg::Sha1)
        })
        .collect();
    assert!(matches!(
        submit(&mut f, forged),
        Verdict::BadSignature { index: 0 }
    ));
}

#[test]
fn single_tampered_coordinate_rejected() {
    let mut f = fixture();
    let mut entries = f.honest.poa.entries().to_vec();
    let idx = entries.len() / 2;
    let shifted = GpsSample::new(
        entries[idx]
            .sample()
            .point()
            .destination(180.0, Distance::from_meters(1.0)), // just 1 m!
        entries[idx].sample().time(),
    );
    entries[idx] =
        SignedSample::from_parts(shifted, entries[idx].signature().to_vec(), HashAlg::Sha1);
    assert!(matches!(
        submit(&mut f, ProofOfAlibi::from_entries(entries)),
        Verdict::BadSignature { .. }
    ));
}

#[test]
fn tampered_timestamp_rejected() {
    let mut f = fixture();
    let mut entries = f.honest.poa.entries().to_vec();
    let idx = entries.len() / 2;
    let retimed = GpsSample::new(
        entries[idx].sample().point(),
        entries[idx].sample().time() + Duration::from_secs(0.001),
    );
    entries[idx] =
        SignedSample::from_parts(retimed, entries[idx].signature().to_vec(), HashAlg::Sha1);
    assert!(matches!(
        submit(&mut f, ProofOfAlibi::from_entries(entries)),
        Verdict::BadSignature { .. }
    ));
}

#[test]
fn replayed_old_samples_rejected() {
    let mut f = fixture();
    let mut entries = f.honest.poa.entries().to_vec();
    let early = entries[0].clone();
    entries.push(early);
    assert!(matches!(
        submit(&mut f, ProofOfAlibi::from_entries(entries)),
        Verdict::NonMonotonic { .. }
    ));
}

#[test]
fn whole_poa_replayed_for_later_window_rejected() {
    let f = fixture();
    // Claim the same PoA covers a flight two hours later.
    let poa = f.honest.poa.clone();
    let verdict = f
        .auditor
        .verify(
            &Submission::plain(PoaSubmission {
                drone_id: f.drone_id,
                window_start: f.honest.window_start + Duration::from_secs(7200.0),
                window_end: f.honest.window_end + Duration::from_secs(7200.0),
                poa,
            }),
            f.now,
        )
        .unwrap()
        .verdict;
    assert_eq!(verdict, Verdict::WindowNotCovered);
}

#[test]
fn relayed_poa_from_other_drone_rejected() {
    let mut f = fixture();
    // Another drone (different TEE key) flies the same route honestly.
    let end = pad().destination(90.0, Distance::from_meters(800.0));
    let route = TrajectoryBuilder::start_at(pad())
        .travel_to(end, Speed::from_mph(30.0))
        .build()
        .unwrap();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let other_world = SecureWorldBuilder::new()
        .with_sign_key(key(54))
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let other = DroneOperator::new(key(55), other_world.client());
    let other_flight = other
        .fly(
            &clock,
            receiver.as_ref(),
            &f.auditor.zone_set(),
            SamplingStrategy::Adaptive,
            Duration::from_secs(59.0),
        )
        .unwrap();
    // Submitted under the *first* drone's id.
    assert!(matches!(
        submit(&mut f, other_flight.poa),
        Verdict::BadSignature { .. }
    ));
}

#[test]
fn omitting_near_zone_samples_rejected() {
    let mut f = fixture();
    let n = f.honest.poa.len();
    let entries: Vec<SignedSample> = f
        .honest
        .poa
        .entries()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < 2 || *i + 2 >= n)
        .map(|(_, e)| e.clone())
        .collect();
    assert!(matches!(
        submit(&mut f, ProofOfAlibi::from_entries(entries)),
        Verdict::InsufficientAlibi { .. }
    ));
}

#[test]
fn spliced_impossible_trace_rejected() {
    let f = fixture();
    // Splice two genuinely-signed samples from different parts of the
    // flight into adjacent instants: physically impossible.
    let entries = f.honest.poa.entries();
    assert!(entries.len() >= 2);
    let first = entries[0].clone();
    let last = entries[entries.len() - 1].clone();
    // first at t0, last at t_end; narrow the window claim so only these
    // two remain, then check feasibility kicks in. Re-time is impossible
    // without breaking signatures, so splice = keep both but drop all
    // middles: if the gap is big enough the pair is merely insufficient;
    // to force impossibility, use samples far apart in space from two
    // *different* recorded flights of the same drone.
    let verdict = f
        .auditor
        .verify(
            &Submission::plain(PoaSubmission {
                drone_id: f.drone_id,
                window_start: first.sample().time(),
                window_end: last.sample().time(),
                poa: ProofOfAlibi::from_entries(vec![first, last]),
            }),
            f.now,
        )
        .unwrap()
        .verdict;
    // 800 m in 59 s is feasible at 44.7 m/s, so this degrades to an
    // insufficiency rejection — still rejected.
    assert!(!verdict.is_compliant(), "got {verdict}");
}

#[test]
fn forged_wire_bytes_do_not_parse_or_verify() {
    // Bit-flip a serialized PoA in transit; either parsing fails or the
    // auditor rejects the signature.
    let f = fixture();
    let bytes = f.honest.poa.to_bytes();
    for flip in [4usize, 10, 40] {
        let mut corrupted = bytes.clone();
        if flip >= corrupted.len() {
            continue;
        }
        corrupted[flip] ^= 0x40;
        match ProofOfAlibi::from_bytes(&corrupted) {
            Err(_) => {}
            Ok(poa) => {
                let mut f2 = fixture();
                let verdict = submit(&mut f2, poa);
                assert!(!verdict.is_compliant(), "flip {flip} slipped through");
            }
        }
    }
}
