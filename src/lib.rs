//! AliDrone — a from-scratch Rust reproduction of *AliDrone: Enabling
//! Trustworthy Proof-of-Alibi for Commercial Drone Compliance*
//! (Liu, Hojjati, Bates, Nahrstedt — ICDCS 2018).
//!
//! This facade crate re-exports the workspace's crates under one root:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geo`] | `alidrone-geo` | geodesy, reachable-set ellipses, NFZs, sufficiency (eq. 1–3) |
//! | [`crypto`] | `alidrone-crypto` | big integers, RSA PKCS#1 v1.5, SHA-1/256, HMAC, ChaCha20, DH |
//! | [`nmea`] | `alidrone-nmea` | NMEA 0183 parsing/encoding (RMC, GGA) |
//! | [`gps`] | `alidrone-gps` | simulated receiver, virtual clock, trace replay |
//! | [`tee`] | `alidrone-tee` | the TrustZone/OP-TEE model: worlds, TAs, key isolation, cost ledger |
//! | [`core`] | `alidrone-core` | the PoA protocol: auditor, operator, zone owner, Algorithm 1 |
//! | [`obs`] | `alidrone-obs` | metrics, spans, structured events, JSON export |
//! | [`chaos`] | `alidrone-chaos` | seeded fault plane: transport/storage/TEE/GPS fault injection |
//! | [`sim`] | `alidrone-sim` | field-study scenarios, power model, experiment harness |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a full registration → zone query →
//! flight → verification round trip, and `DESIGN.md` / `EXPERIMENTS.md`
//! for the paper-reproduction map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use alidrone_chaos as chaos;
pub use alidrone_core as core;
pub use alidrone_crypto as crypto;
pub use alidrone_geo as geo;
pub use alidrone_gps as gps;
pub use alidrone_nmea as nmea;
pub use alidrone_obs as obs;
pub use alidrone_sim as sim;
pub use alidrone_tee as tee;
