(function() {
    const implementors = Object.fromEntries([["alidrone_obs",[]],["alidrone_sim",[["impl <a class=\"trait\" href=\"alidrone_obs/json/trait.ToJson.html\" title=\"trait alidrone_obs::json::ToJson\">ToJson</a> for <a class=\"struct\" href=\"alidrone_sim/export/struct.Fig6Export.html\" title=\"struct alidrone_sim::export::Fig6Export\">Fig6Export</a>",0],["impl <a class=\"trait\" href=\"alidrone_obs/json/trait.ToJson.html\" title=\"trait alidrone_obs::json::ToJson\">ToJson</a> for <a class=\"struct\" href=\"alidrone_sim/export/struct.TimelineExport.html\" title=\"struct alidrone_sim::export::TimelineExport\">TimelineExport</a>",0]]],["alidrone_sim",[["impl ToJson for <a class=\"struct\" href=\"alidrone_sim/export/struct.Fig6Export.html\" title=\"struct alidrone_sim::export::Fig6Export\">Fig6Export</a>",0],["impl ToJson for <a class=\"struct\" href=\"alidrone_sim/export/struct.TimelineExport.html\" title=\"struct alidrone_sim::export::TimelineExport\">TimelineExport</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[19,571,349]}