(function() {
    const implementors = Object.fromEntries([["alidrone_obs",[]],["alidrone_sim",[["impl <a class=\"trait\" href=\"alidrone_obs/clock/trait.Clock.html\" title=\"trait alidrone_obs::clock::Clock\">Clock</a> for <a class=\"struct\" href=\"alidrone_sim/runner/struct.SimClockBridge.html\" title=\"struct alidrone_sim::runner::SimClockBridge\">SimClockBridge</a>",0]]],["alidrone_sim",[["impl Clock for <a class=\"struct\" href=\"alidrone_sim/runner/struct.SimClockBridge.html\" title=\"struct alidrone_sim::runner::SimClockBridge\">SimClockBridge</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[19,300,189]}