(function() {
    const implementors = Object.fromEntries([["alidrone_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.Extend.html\" title=\"trait core::iter::traits::collect::Extend\">Extend</a>&lt;<a class=\"struct\" href=\"alidrone_tee/sampler/struct.SignedSample.html\" title=\"struct alidrone_tee::sampler::SignedSample\">SignedSample</a>&gt; for <a class=\"struct\" href=\"alidrone_core/struct.ProofOfAlibi.html\" title=\"struct alidrone_core::ProofOfAlibi\">ProofOfAlibi</a>",0]]],["alidrone_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.Extend.html\" title=\"trait core::iter::traits::collect::Extend\">Extend</a>&lt;SignedSample&gt; for <a class=\"struct\" href=\"alidrone_core/struct.ProofOfAlibi.html\" title=\"struct alidrone_core::ProofOfAlibi\">ProofOfAlibi</a>",0]]],["alidrone_geo",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.Extend.html\" title=\"trait core::iter::traits::collect::Extend\">Extend</a>&lt;<a class=\"struct\" href=\"alidrone_geo/struct.NoFlyZone.html\" title=\"struct alidrone_geo::NoFlyZone\">NoFlyZone</a>&gt; for <a class=\"struct\" href=\"alidrone_geo/struct.ZoneSet.html\" title=\"struct alidrone_geo::ZoneSet\">ZoneSet</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[483,352,440]}