(function() {
    const implementors = Object.fromEntries([["alidrone_geo",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Div.html\" title=\"trait core::ops::arith::Div\">Div</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f64.html\">f64</a>&gt; for <a class=\"struct\" href=\"alidrone_geo/struct.Distance.html\" title=\"struct alidrone_geo::Distance\">Distance</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Div.html\" title=\"trait core::ops::arith::Div\">Div</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f64.html\">f64</a>&gt; for <a class=\"struct\" href=\"alidrone_geo/struct.Duration.html\" title=\"struct alidrone_geo::Duration\">Duration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Div.html\" title=\"trait core::ops::arith::Div\">Div</a>&lt;<a class=\"struct\" href=\"alidrone_geo/struct.Speed.html\" title=\"struct alidrone_geo::Speed\">Speed</a>&gt; for <a class=\"struct\" href=\"alidrone_geo/struct.Distance.html\" title=\"struct alidrone_geo::Distance\">Distance</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[1142]}