/root/repo/target/debug/deps/exp_table2-a527540455207af7.d: crates/sim/src/bin/exp_table2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table2-a527540455207af7.rmeta: crates/sim/src/bin/exp_table2.rs Cargo.toml

crates/sim/src/bin/exp_table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
