/root/repo/target/debug/deps/alidrone-9843869fa1ba5087.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone-9843869fa1ba5087.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
