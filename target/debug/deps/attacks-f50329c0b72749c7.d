/root/repo/target/debug/deps/attacks-f50329c0b72749c7.d: tests/attacks.rs

/root/repo/target/debug/deps/attacks-f50329c0b72749c7: tests/attacks.rs

tests/attacks.rs:
