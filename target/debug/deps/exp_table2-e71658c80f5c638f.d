/root/repo/target/debug/deps/exp_table2-e71658c80f5c638f.d: crates/sim/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-e71658c80f5c638f: crates/sim/src/bin/exp_table2.rs

crates/sim/src/bin/exp_table2.rs:
