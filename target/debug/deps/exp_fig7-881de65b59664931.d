/root/repo/target/debug/deps/exp_fig7-881de65b59664931.d: crates/sim/src/bin/exp_fig7.rs

/root/repo/target/debug/deps/exp_fig7-881de65b59664931: crates/sim/src/bin/exp_fig7.rs

crates/sim/src/bin/exp_fig7.rs:
