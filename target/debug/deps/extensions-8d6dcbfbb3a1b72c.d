/root/repo/target/debug/deps/extensions-8d6dcbfbb3a1b72c.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-8d6dcbfbb3a1b72c: tests/extensions.rs

tests/extensions.rs:
