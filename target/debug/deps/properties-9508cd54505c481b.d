/root/repo/target/debug/deps/properties-9508cd54505c481b.d: crates/crypto/tests/properties.rs

/root/repo/target/debug/deps/properties-9508cd54505c481b: crates/crypto/tests/properties.rs

crates/crypto/tests/properties.rs:
