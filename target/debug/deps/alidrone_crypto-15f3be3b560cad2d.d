/root/repo/target/debug/deps/alidrone_crypto-15f3be3b560cad2d.d: crates/crypto/src/lib.rs crates/crypto/src/bigint.rs crates/crypto/src/chacha20.rs crates/crypto/src/dh.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/prime.rs crates/crypto/src/rng.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_crypto-15f3be3b560cad2d.rmeta: crates/crypto/src/lib.rs crates/crypto/src/bigint.rs crates/crypto/src/chacha20.rs crates/crypto/src/dh.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/prime.rs crates/crypto/src/rng.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/bigint.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/dh.rs:
crates/crypto/src/error.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/prime.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/rsa.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
