/root/repo/target/debug/deps/exp_fig6-ee8ac92ee8e3e827.d: crates/sim/src/bin/exp_fig6.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig6-ee8ac92ee8e3e827.rmeta: crates/sim/src/bin/exp_fig6.rs Cargo.toml

crates/sim/src/bin/exp_fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
