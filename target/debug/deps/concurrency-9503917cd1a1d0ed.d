/root/repo/target/debug/deps/concurrency-9503917cd1a1d0ed.d: crates/tee/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-9503917cd1a1d0ed.rmeta: crates/tee/tests/concurrency.rs Cargo.toml

crates/tee/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
