/root/repo/target/debug/deps/exp_ablation-d6bcb836e63a62bf.d: crates/sim/src/bin/exp_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation-d6bcb836e63a62bf.rmeta: crates/sim/src/bin/exp_ablation.rs Cargo.toml

crates/sim/src/bin/exp_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
