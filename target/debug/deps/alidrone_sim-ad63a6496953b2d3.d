/root/repo/target/debug/deps/alidrone_sim-ad63a6496953b2d3.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_sim-ad63a6496953b2d3.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
