/root/repo/target/debug/deps/bench_scenarios-9b4393911b6d69a6.d: crates/bench/benches/bench_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libbench_scenarios-9b4393911b6d69a6.rmeta: crates/bench/benches/bench_scenarios.rs Cargo.toml

crates/bench/benches/bench_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
