/root/repo/target/debug/deps/exp_fig7-5be20f65c2a07b92.d: crates/sim/src/bin/exp_fig7.rs

/root/repo/target/debug/deps/exp_fig7-5be20f65c2a07b92: crates/sim/src/bin/exp_fig7.rs

crates/sim/src/bin/exp_fig7.rs:
