/root/repo/target/debug/deps/alidrone_core-6fb10cca8af92db1.d: crates/core/src/lib.rs crates/core/src/auditor.rs crates/core/src/error.rs crates/core/src/flight.rs crates/core/src/identity.rs crates/core/src/messages.rs crates/core/src/operator.rs crates/core/src/poa.rs crates/core/src/test_support.rs crates/core/src/zone_owner.rs crates/core/src/privacy.rs crates/core/src/sampling/mod.rs crates/core/src/sampling/adaptive.rs crates/core/src/sampling/fixed.rs crates/core/src/symmetric.rs crates/core/src/wire/mod.rs crates/core/src/wire/codec.rs crates/core/src/wire/server.rs crates/core/src/wire/transport.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_core-6fb10cca8af92db1.rmeta: crates/core/src/lib.rs crates/core/src/auditor.rs crates/core/src/error.rs crates/core/src/flight.rs crates/core/src/identity.rs crates/core/src/messages.rs crates/core/src/operator.rs crates/core/src/poa.rs crates/core/src/test_support.rs crates/core/src/zone_owner.rs crates/core/src/privacy.rs crates/core/src/sampling/mod.rs crates/core/src/sampling/adaptive.rs crates/core/src/sampling/fixed.rs crates/core/src/symmetric.rs crates/core/src/wire/mod.rs crates/core/src/wire/codec.rs crates/core/src/wire/server.rs crates/core/src/wire/transport.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/auditor.rs:
crates/core/src/error.rs:
crates/core/src/flight.rs:
crates/core/src/identity.rs:
crates/core/src/messages.rs:
crates/core/src/operator.rs:
crates/core/src/poa.rs:
crates/core/src/test_support.rs:
crates/core/src/zone_owner.rs:
crates/core/src/privacy.rs:
crates/core/src/sampling/mod.rs:
crates/core/src/sampling/adaptive.rs:
crates/core/src/sampling/fixed.rs:
crates/core/src/symmetric.rs:
crates/core/src/wire/mod.rs:
crates/core/src/wire/codec.rs:
crates/core/src/wire/server.rs:
crates/core/src/wire/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
