/root/repo/target/debug/deps/bench_scenarios-d5e88cf1f01b40dd.d: crates/bench/benches/bench_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libbench_scenarios-d5e88cf1f01b40dd.rmeta: crates/bench/benches/bench_scenarios.rs Cargo.toml

crates/bench/benches/bench_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
