/root/repo/target/debug/deps/alidrone_nmea-085d2b22d40a8471.d: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_nmea-085d2b22d40a8471.rmeta: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs Cargo.toml

crates/nmea/src/lib.rs:
crates/nmea/src/coord.rs:
crates/nmea/src/error.rs:
crates/nmea/src/gga.rs:
crates/nmea/src/gsa.rs:
crates/nmea/src/rmc.rs:
crates/nmea/src/sentence.rs:
crates/nmea/src/vtg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
