/root/repo/target/debug/deps/exp_all-d97370aa381b8a31.d: crates/sim/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-d97370aa381b8a31: crates/sim/src/bin/exp_all.rs

crates/sim/src/bin/exp_all.rs:
