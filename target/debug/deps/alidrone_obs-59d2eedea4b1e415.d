/root/repo/target/debug/deps/alidrone_obs-59d2eedea4b1e415.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/alidrone_obs-59d2eedea4b1e415: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
