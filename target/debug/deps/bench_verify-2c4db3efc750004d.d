/root/repo/target/debug/deps/bench_verify-2c4db3efc750004d.d: crates/bench/benches/bench_verify.rs Cargo.toml

/root/repo/target/debug/deps/libbench_verify-2c4db3efc750004d.rmeta: crates/bench/benches/bench_verify.rs Cargo.toml

crates/bench/benches/bench_verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
