/root/repo/target/debug/deps/properties-abd48e773c39a7b2.d: crates/tee/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-abd48e773c39a7b2.rmeta: crates/tee/tests/properties.rs Cargo.toml

crates/tee/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
