/root/repo/target/debug/deps/properties-a8cb5a189ccec51a.d: crates/geo/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a8cb5a189ccec51a.rmeta: crates/geo/tests/properties.rs Cargo.toml

crates/geo/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
