/root/repo/target/debug/deps/properties-a0d127491e939ab9.d: crates/geo/tests/properties.rs

/root/repo/target/debug/deps/properties-a0d127491e939ab9: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
