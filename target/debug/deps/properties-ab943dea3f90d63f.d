/root/repo/target/debug/deps/properties-ab943dea3f90d63f.d: crates/tee/tests/properties.rs

/root/repo/target/debug/deps/properties-ab943dea3f90d63f: crates/tee/tests/properties.rs

crates/tee/tests/properties.rs:
