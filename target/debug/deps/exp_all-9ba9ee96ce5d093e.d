/root/repo/target/debug/deps/exp_all-9ba9ee96ce5d093e.d: crates/sim/src/bin/exp_all.rs Cargo.toml

/root/repo/target/debug/deps/libexp_all-9ba9ee96ce5d093e.rmeta: crates/sim/src/bin/exp_all.rs Cargo.toml

crates/sim/src/bin/exp_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
