/root/repo/target/debug/deps/exp_table2-9f3827b384ab3b83.d: crates/sim/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-9f3827b384ab3b83: crates/sim/src/bin/exp_table2.rs

crates/sim/src/bin/exp_table2.rs:
