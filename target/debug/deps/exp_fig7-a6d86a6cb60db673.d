/root/repo/target/debug/deps/exp_fig7-a6d86a6cb60db673.d: crates/sim/src/bin/exp_fig7.rs

/root/repo/target/debug/deps/exp_fig7-a6d86a6cb60db673: crates/sim/src/bin/exp_fig7.rs

crates/sim/src/bin/exp_fig7.rs:
