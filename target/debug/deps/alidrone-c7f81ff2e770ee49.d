/root/repo/target/debug/deps/alidrone-c7f81ff2e770ee49.d: src/lib.rs

/root/repo/target/debug/deps/alidrone-c7f81ff2e770ee49: src/lib.rs

src/lib.rs:
