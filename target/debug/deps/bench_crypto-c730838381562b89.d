/root/repo/target/debug/deps/bench_crypto-c730838381562b89.d: crates/bench/benches/bench_crypto.rs Cargo.toml

/root/repo/target/debug/deps/libbench_crypto-c730838381562b89.rmeta: crates/bench/benches/bench_crypto.rs Cargo.toml

crates/bench/benches/bench_crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
