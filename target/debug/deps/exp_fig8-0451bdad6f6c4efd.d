/root/repo/target/debug/deps/exp_fig8-0451bdad6f6c4efd.d: crates/sim/src/bin/exp_fig8.rs

/root/repo/target/debug/deps/exp_fig8-0451bdad6f6c4efd: crates/sim/src/bin/exp_fig8.rs

crates/sim/src/bin/exp_fig8.rs:
