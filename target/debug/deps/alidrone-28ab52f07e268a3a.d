/root/repo/target/debug/deps/alidrone-28ab52f07e268a3a.d: src/lib.rs

/root/repo/target/debug/deps/libalidrone-28ab52f07e268a3a.rlib: src/lib.rs

/root/repo/target/debug/deps/libalidrone-28ab52f07e268a3a.rmeta: src/lib.rs

src/lib.rs:
