/root/repo/target/debug/deps/alidrone_bench-62c50b667f4e5601.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_bench-62c50b667f4e5601.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
