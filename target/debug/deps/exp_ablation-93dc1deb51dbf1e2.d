/root/repo/target/debug/deps/exp_ablation-93dc1deb51dbf1e2.d: crates/sim/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-93dc1deb51dbf1e2: crates/sim/src/bin/exp_ablation.rs

crates/sim/src/bin/exp_ablation.rs:
