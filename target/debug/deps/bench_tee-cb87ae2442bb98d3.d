/root/repo/target/debug/deps/bench_tee-cb87ae2442bb98d3.d: crates/bench/benches/bench_tee.rs Cargo.toml

/root/repo/target/debug/deps/libbench_tee-cb87ae2442bb98d3.rmeta: crates/bench/benches/bench_tee.rs Cargo.toml

crates/bench/benches/bench_tee.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
