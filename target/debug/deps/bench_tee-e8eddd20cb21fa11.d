/root/repo/target/debug/deps/bench_tee-e8eddd20cb21fa11.d: crates/bench/benches/bench_tee.rs Cargo.toml

/root/repo/target/debug/deps/libbench_tee-e8eddd20cb21fa11.rmeta: crates/bench/benches/bench_tee.rs Cargo.toml

crates/bench/benches/bench_tee.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
