/root/repo/target/debug/deps/exp_fig6-5fa2f651618ad6cf.d: crates/sim/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-5fa2f651618ad6cf: crates/sim/src/bin/exp_fig6.rs

crates/sim/src/bin/exp_fig6.rs:
