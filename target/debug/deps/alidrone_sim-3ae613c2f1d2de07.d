/root/repo/target/debug/deps/alidrone_sim-3ae613c2f1d2de07.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/debug/deps/alidrone_sim-3ae613c2f1d2de07: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
