/root/repo/target/debug/deps/exp_all-711565f0090abee8.d: crates/sim/src/bin/exp_all.rs Cargo.toml

/root/repo/target/debug/deps/libexp_all-711565f0090abee8.rmeta: crates/sim/src/bin/exp_all.rs Cargo.toml

crates/sim/src/bin/exp_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
