/root/repo/target/debug/deps/end_to_end-3bc2a0322518f50f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3bc2a0322518f50f: tests/end_to_end.rs

tests/end_to_end.rs:
