/root/repo/target/debug/deps/properties-d2796d44977c23af.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d2796d44977c23af.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
