/root/repo/target/debug/deps/alidrone_sim-9fa60cb1f2d2fa3b.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/debug/deps/alidrone_sim-9fa60cb1f2d2fa3b: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
