/root/repo/target/debug/deps/alidrone_bench-33b3c7ab1ff7bc1b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_bench-33b3c7ab1ff7bc1b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
