/root/repo/target/debug/deps/bench_scenarios-5eb3f3ac6b575bfd.d: crates/bench/benches/bench_scenarios.rs

/root/repo/target/debug/deps/bench_scenarios-5eb3f3ac6b575bfd: crates/bench/benches/bench_scenarios.rs

crates/bench/benches/bench_scenarios.rs:
