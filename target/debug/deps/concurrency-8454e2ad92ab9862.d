/root/repo/target/debug/deps/concurrency-8454e2ad92ab9862.d: crates/tee/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-8454e2ad92ab9862: crates/tee/tests/concurrency.rs

crates/tee/tests/concurrency.rs:
