/root/repo/target/debug/deps/exp_table2-2d0499ce937e7a14.d: crates/sim/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-2d0499ce937e7a14: crates/sim/src/bin/exp_table2.rs

crates/sim/src/bin/exp_table2.rs:
