/root/repo/target/debug/deps/alidrone_bench-18ce8dd6dc6b0439.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libalidrone_bench-18ce8dd6dc6b0439.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libalidrone_bench-18ce8dd6dc6b0439.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
