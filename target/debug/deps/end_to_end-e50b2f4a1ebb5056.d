/root/repo/target/debug/deps/end_to_end-e50b2f4a1ebb5056.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e50b2f4a1ebb5056: tests/end_to_end.rs

tests/end_to_end.rs:
