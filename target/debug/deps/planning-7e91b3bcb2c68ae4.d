/root/repo/target/debug/deps/planning-7e91b3bcb2c68ae4.d: tests/planning.rs

/root/repo/target/debug/deps/planning-7e91b3bcb2c68ae4: tests/planning.rs

tests/planning.rs:
