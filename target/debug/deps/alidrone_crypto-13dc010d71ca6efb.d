/root/repo/target/debug/deps/alidrone_crypto-13dc010d71ca6efb.d: crates/crypto/src/lib.rs crates/crypto/src/bigint.rs crates/crypto/src/chacha20.rs crates/crypto/src/dh.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/prime.rs crates/crypto/src/rng.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libalidrone_crypto-13dc010d71ca6efb.rmeta: crates/crypto/src/lib.rs crates/crypto/src/bigint.rs crates/crypto/src/chacha20.rs crates/crypto/src/dh.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/prime.rs crates/crypto/src/rng.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/bigint.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/dh.rs:
crates/crypto/src/error.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/prime.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/rsa.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
