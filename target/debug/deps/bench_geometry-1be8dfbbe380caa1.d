/root/repo/target/debug/deps/bench_geometry-1be8dfbbe380caa1.d: crates/bench/benches/bench_geometry.rs Cargo.toml

/root/repo/target/debug/deps/libbench_geometry-1be8dfbbe380caa1.rmeta: crates/bench/benches/bench_geometry.rs Cargo.toml

crates/bench/benches/bench_geometry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
