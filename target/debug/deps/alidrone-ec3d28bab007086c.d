/root/repo/target/debug/deps/alidrone-ec3d28bab007086c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone-ec3d28bab007086c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
