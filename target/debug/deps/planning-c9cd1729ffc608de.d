/root/repo/target/debug/deps/planning-c9cd1729ffc608de.d: tests/planning.rs Cargo.toml

/root/repo/target/debug/deps/libplanning-c9cd1729ffc608de.rmeta: tests/planning.rs Cargo.toml

tests/planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
