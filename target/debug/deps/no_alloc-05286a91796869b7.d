/root/repo/target/debug/deps/no_alloc-05286a91796869b7.d: crates/obs/tests/no_alloc.rs

/root/repo/target/debug/deps/no_alloc-05286a91796869b7: crates/obs/tests/no_alloc.rs

crates/obs/tests/no_alloc.rs:
