/root/repo/target/debug/deps/bench_verify-88c4898a3b1b01aa.d: crates/bench/benches/bench_verify.rs Cargo.toml

/root/repo/target/debug/deps/libbench_verify-88c4898a3b1b01aa.rmeta: crates/bench/benches/bench_verify.rs Cargo.toml

crates/bench/benches/bench_verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
