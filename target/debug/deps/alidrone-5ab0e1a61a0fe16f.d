/root/repo/target/debug/deps/alidrone-5ab0e1a61a0fe16f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone-5ab0e1a61a0fe16f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
