/root/repo/target/debug/deps/alidrone_bench-ff895c6baa76f41f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/alidrone_bench-ff895c6baa76f41f: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
