/root/repo/target/debug/deps/extensions-b2999b55d0c2bb77.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-b2999b55d0c2bb77.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
