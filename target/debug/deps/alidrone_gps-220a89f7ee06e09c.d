/root/repo/target/debug/deps/alidrone_gps-220a89f7ee06e09c.d: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

/root/repo/target/debug/deps/alidrone_gps-220a89f7ee06e09c: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

crates/gps/src/lib.rs:
crates/gps/src/clock.rs:
crates/gps/src/nmea_feed.rs:
crates/gps/src/receiver.rs:
crates/gps/src/receiver3d.rs:
crates/gps/src/trace.rs:
