/root/repo/target/debug/deps/exp_ablation-79c48582f84e7b53.d: crates/sim/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-79c48582f84e7b53: crates/sim/src/bin/exp_ablation.rs

crates/sim/src/bin/exp_ablation.rs:
