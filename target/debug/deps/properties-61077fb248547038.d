/root/repo/target/debug/deps/properties-61077fb248547038.d: crates/tee/tests/properties.rs

/root/repo/target/debug/deps/properties-61077fb248547038: crates/tee/tests/properties.rs

crates/tee/tests/properties.rs:
