/root/repo/target/debug/deps/exp_ablation-ce00992fa3660dfc.d: crates/sim/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-ce00992fa3660dfc: crates/sim/src/bin/exp_ablation.rs

crates/sim/src/bin/exp_ablation.rs:
