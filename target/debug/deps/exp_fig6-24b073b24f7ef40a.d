/root/repo/target/debug/deps/exp_fig6-24b073b24f7ef40a.d: crates/sim/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-24b073b24f7ef40a: crates/sim/src/bin/exp_fig6.rs

crates/sim/src/bin/exp_fig6.rs:
