/root/repo/target/debug/deps/alidrone_sim-9f6146aa368e4b07.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_sim-9f6146aa368e4b07.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
