/root/repo/target/debug/deps/attacks-35ba4d5f23758b56.d: tests/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-35ba4d5f23758b56.rmeta: tests/attacks.rs Cargo.toml

tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
