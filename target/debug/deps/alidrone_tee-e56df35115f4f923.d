/root/repo/target/debug/deps/alidrone_tee-e56df35115f4f923.d: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

/root/repo/target/debug/deps/libalidrone_tee-e56df35115f4f923.rlib: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

/root/repo/target/debug/deps/libalidrone_tee-e56df35115f4f923.rmeta: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

crates/tee/src/lib.rs:
crates/tee/src/client.rs:
crates/tee/src/cost.rs:
crates/tee/src/error.rs:
crates/tee/src/keystore.rs:
crates/tee/src/sampler.rs:
crates/tee/src/spoof.rs:
crates/tee/src/storage.rs:
crates/tee/src/uuid.rs:
crates/tee/src/world.rs:
