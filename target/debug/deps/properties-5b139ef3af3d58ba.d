/root/repo/target/debug/deps/properties-5b139ef3af3d58ba.d: crates/gps/tests/properties.rs

/root/repo/target/debug/deps/properties-5b139ef3af3d58ba: crates/gps/tests/properties.rs

crates/gps/tests/properties.rs:
