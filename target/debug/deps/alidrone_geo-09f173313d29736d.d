/root/repo/target/debug/deps/alidrone_geo-09f173313d29736d.d: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/nfz.rs crates/geo/src/point.rs crates/geo/src/projection.rs crates/geo/src/reachable.rs crates/geo/src/sample.rs crates/geo/src/units.rs crates/geo/src/planner.rs crates/geo/src/polygon.rs crates/geo/src/sufficiency.rs crates/geo/src/three_d.rs crates/geo/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_geo-09f173313d29736d.rmeta: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/nfz.rs crates/geo/src/point.rs crates/geo/src/projection.rs crates/geo/src/reachable.rs crates/geo/src/sample.rs crates/geo/src/units.rs crates/geo/src/planner.rs crates/geo/src/polygon.rs crates/geo/src/sufficiency.rs crates/geo/src/three_d.rs crates/geo/src/trajectory.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/error.rs:
crates/geo/src/nfz.rs:
crates/geo/src/point.rs:
crates/geo/src/projection.rs:
crates/geo/src/reachable.rs:
crates/geo/src/sample.rs:
crates/geo/src/units.rs:
crates/geo/src/planner.rs:
crates/geo/src/polygon.rs:
crates/geo/src/sufficiency.rs:
crates/geo/src/three_d.rs:
crates/geo/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
