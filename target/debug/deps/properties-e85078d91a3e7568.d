/root/repo/target/debug/deps/properties-e85078d91a3e7568.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-e85078d91a3e7568: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
