/root/repo/target/debug/deps/tracing-ecd2d2bf640327e4.d: tests/tracing.rs Cargo.toml

/root/repo/target/debug/deps/libtracing-ecd2d2bf640327e4.rmeta: tests/tracing.rs Cargo.toml

tests/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
