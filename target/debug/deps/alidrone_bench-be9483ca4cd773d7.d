/root/repo/target/debug/deps/alidrone_bench-be9483ca4cd773d7.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_bench-be9483ca4cd773d7.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
