/root/repo/target/debug/deps/bench_crypto-0e11f0d272bfec1d.d: crates/bench/benches/bench_crypto.rs

/root/repo/target/debug/deps/bench_crypto-0e11f0d272bfec1d: crates/bench/benches/bench_crypto.rs

crates/bench/benches/bench_crypto.rs:
