/root/repo/target/debug/deps/alidrone_tee-6cce887e02649eaa.d: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

/root/repo/target/debug/deps/libalidrone_tee-6cce887e02649eaa.rmeta: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

crates/tee/src/lib.rs:
crates/tee/src/client.rs:
crates/tee/src/cost.rs:
crates/tee/src/error.rs:
crates/tee/src/keystore.rs:
crates/tee/src/sampler.rs:
crates/tee/src/spoof.rs:
crates/tee/src/storage.rs:
crates/tee/src/uuid.rs:
crates/tee/src/world.rs:
