/root/repo/target/debug/deps/bench_tee-81da180bf87e21d1.d: crates/bench/benches/bench_tee.rs

/root/repo/target/debug/deps/bench_tee-81da180bf87e21d1: crates/bench/benches/bench_tee.rs

crates/bench/benches/bench_tee.rs:
