/root/repo/target/debug/deps/alidrone_obs-02719640fd252b0b.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libalidrone_obs-02719640fd252b0b.rlib: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libalidrone_obs-02719640fd252b0b.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
