/root/repo/target/debug/deps/concurrency-8ed0359df53b836f.d: crates/tee/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-8ed0359df53b836f.rmeta: crates/tee/tests/concurrency.rs Cargo.toml

crates/tee/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
