/root/repo/target/debug/deps/bench_geometry-3c2ff365f39b3f33.d: crates/bench/benches/bench_geometry.rs

/root/repo/target/debug/deps/bench_geometry-3c2ff365f39b3f33: crates/bench/benches/bench_geometry.rs

crates/bench/benches/bench_geometry.rs:
