/root/repo/target/debug/deps/alidrone-c4f5deb705f19e46.d: src/lib.rs

/root/repo/target/debug/deps/alidrone-c4f5deb705f19e46: src/lib.rs

src/lib.rs:
