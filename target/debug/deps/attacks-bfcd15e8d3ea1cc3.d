/root/repo/target/debug/deps/attacks-bfcd15e8d3ea1cc3.d: tests/attacks.rs

/root/repo/target/debug/deps/attacks-bfcd15e8d3ea1cc3: tests/attacks.rs

tests/attacks.rs:
