/root/repo/target/debug/deps/no_alloc-07ea0c0d58814e42.d: crates/obs/tests/no_alloc.rs

/root/repo/target/debug/deps/no_alloc-07ea0c0d58814e42: crates/obs/tests/no_alloc.rs

crates/obs/tests/no_alloc.rs:
