/root/repo/target/debug/deps/exp_trace-117f316e85da598d.d: crates/sim/src/bin/exp_trace.rs Cargo.toml

/root/repo/target/debug/deps/libexp_trace-117f316e85da598d.rmeta: crates/sim/src/bin/exp_trace.rs Cargo.toml

crates/sim/src/bin/exp_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
