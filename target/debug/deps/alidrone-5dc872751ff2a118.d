/root/repo/target/debug/deps/alidrone-5dc872751ff2a118.d: src/lib.rs

/root/repo/target/debug/deps/libalidrone-5dc872751ff2a118.rlib: src/lib.rs

/root/repo/target/debug/deps/libalidrone-5dc872751ff2a118.rmeta: src/lib.rs

src/lib.rs:
