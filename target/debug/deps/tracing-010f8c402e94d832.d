/root/repo/target/debug/deps/tracing-010f8c402e94d832.d: tests/tracing.rs

/root/repo/target/debug/deps/tracing-010f8c402e94d832: tests/tracing.rs

tests/tracing.rs:
