/root/repo/target/debug/deps/exp_ablation-d93a718eb2cae909.d: crates/sim/src/bin/exp_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation-d93a718eb2cae909.rmeta: crates/sim/src/bin/exp_ablation.rs Cargo.toml

crates/sim/src/bin/exp_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
