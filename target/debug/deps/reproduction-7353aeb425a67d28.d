/root/repo/target/debug/deps/reproduction-7353aeb425a67d28.d: tests/reproduction.rs

/root/repo/target/debug/deps/reproduction-7353aeb425a67d28: tests/reproduction.rs

tests/reproduction.rs:
