/root/repo/target/debug/deps/alidrone_obs-558f32b699de9c03.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libalidrone_obs-558f32b699de9c03.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/span.rs:
