/root/repo/target/debug/deps/concurrency-fd291a0514e782e6.d: crates/tee/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-fd291a0514e782e6: crates/tee/tests/concurrency.rs

crates/tee/tests/concurrency.rs:
