/root/repo/target/debug/deps/exp_fig8-28c8277309ad862f.d: crates/sim/src/bin/exp_fig8.rs

/root/repo/target/debug/deps/exp_fig8-28c8277309ad862f: crates/sim/src/bin/exp_fig8.rs

crates/sim/src/bin/exp_fig8.rs:
