/root/repo/target/debug/deps/bench_crypto-c73d0cafe7564734.d: crates/bench/benches/bench_crypto.rs Cargo.toml

/root/repo/target/debug/deps/libbench_crypto-c73d0cafe7564734.rmeta: crates/bench/benches/bench_crypto.rs Cargo.toml

crates/bench/benches/bench_crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
