/root/repo/target/debug/deps/alidrone_sim-94e5cf3d74b8e5c2.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/debug/deps/libalidrone_sim-94e5cf3d74b8e5c2.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
