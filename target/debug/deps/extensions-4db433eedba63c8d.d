/root/repo/target/debug/deps/extensions-4db433eedba63c8d.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-4db433eedba63c8d.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
