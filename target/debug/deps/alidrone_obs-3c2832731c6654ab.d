/root/repo/target/debug/deps/alidrone_obs-3c2832731c6654ab.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_obs-3c2832731c6654ab.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
