/root/repo/target/debug/deps/exp_fig8-1f14386ebf99f6da.d: crates/sim/src/bin/exp_fig8.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig8-1f14386ebf99f6da.rmeta: crates/sim/src/bin/exp_fig8.rs Cargo.toml

crates/sim/src/bin/exp_fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
