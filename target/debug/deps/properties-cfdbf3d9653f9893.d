/root/repo/target/debug/deps/properties-cfdbf3d9653f9893.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-cfdbf3d9653f9893: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
