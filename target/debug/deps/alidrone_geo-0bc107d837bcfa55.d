/root/repo/target/debug/deps/alidrone_geo-0bc107d837bcfa55.d: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/nfz.rs crates/geo/src/point.rs crates/geo/src/projection.rs crates/geo/src/reachable.rs crates/geo/src/sample.rs crates/geo/src/units.rs crates/geo/src/planner.rs crates/geo/src/polygon.rs crates/geo/src/sufficiency.rs crates/geo/src/three_d.rs crates/geo/src/trajectory.rs

/root/repo/target/debug/deps/libalidrone_geo-0bc107d837bcfa55.rmeta: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/nfz.rs crates/geo/src/point.rs crates/geo/src/projection.rs crates/geo/src/reachable.rs crates/geo/src/sample.rs crates/geo/src/units.rs crates/geo/src/planner.rs crates/geo/src/polygon.rs crates/geo/src/sufficiency.rs crates/geo/src/three_d.rs crates/geo/src/trajectory.rs

crates/geo/src/lib.rs:
crates/geo/src/error.rs:
crates/geo/src/nfz.rs:
crates/geo/src/point.rs:
crates/geo/src/projection.rs:
crates/geo/src/reachable.rs:
crates/geo/src/sample.rs:
crates/geo/src/units.rs:
crates/geo/src/planner.rs:
crates/geo/src/polygon.rs:
crates/geo/src/sufficiency.rs:
crates/geo/src/three_d.rs:
crates/geo/src/trajectory.rs:
