/root/repo/target/debug/deps/exp_fig7-d10002acdd836888.d: crates/sim/src/bin/exp_fig7.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig7-d10002acdd836888.rmeta: crates/sim/src/bin/exp_fig7.rs Cargo.toml

crates/sim/src/bin/exp_fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
