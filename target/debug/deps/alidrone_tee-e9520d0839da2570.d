/root/repo/target/debug/deps/alidrone_tee-e9520d0839da2570.d: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/test_support.rs crates/tee/src/uuid.rs crates/tee/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_tee-e9520d0839da2570.rmeta: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/test_support.rs crates/tee/src/uuid.rs crates/tee/src/world.rs Cargo.toml

crates/tee/src/lib.rs:
crates/tee/src/client.rs:
crates/tee/src/cost.rs:
crates/tee/src/error.rs:
crates/tee/src/keystore.rs:
crates/tee/src/sampler.rs:
crates/tee/src/spoof.rs:
crates/tee/src/storage.rs:
crates/tee/src/test_support.rs:
crates/tee/src/uuid.rs:
crates/tee/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
