/root/repo/target/debug/deps/reproduction-c31e57496b27331c.d: tests/reproduction.rs

/root/repo/target/debug/deps/reproduction-c31e57496b27331c: tests/reproduction.rs

tests/reproduction.rs:
