/root/repo/target/debug/deps/alidrone_gps-574d49ab5259f91c.d: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

/root/repo/target/debug/deps/libalidrone_gps-574d49ab5259f91c.rmeta: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

crates/gps/src/lib.rs:
crates/gps/src/clock.rs:
crates/gps/src/nmea_feed.rs:
crates/gps/src/receiver.rs:
crates/gps/src/receiver3d.rs:
crates/gps/src/trace.rs:
