/root/repo/target/debug/deps/exp_fig8-4f4d1aeaae98c101.d: crates/sim/src/bin/exp_fig8.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig8-4f4d1aeaae98c101.rmeta: crates/sim/src/bin/exp_fig8.rs Cargo.toml

crates/sim/src/bin/exp_fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
