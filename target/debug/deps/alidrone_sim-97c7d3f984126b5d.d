/root/repo/target/debug/deps/alidrone_sim-97c7d3f984126b5d.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/debug/deps/libalidrone_sim-97c7d3f984126b5d.rlib: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/debug/deps/libalidrone_sim-97c7d3f984126b5d.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
