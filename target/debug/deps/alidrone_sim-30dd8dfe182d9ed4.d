/root/repo/target/debug/deps/alidrone_sim-30dd8dfe182d9ed4.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/debug/deps/libalidrone_sim-30dd8dfe182d9ed4.rlib: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/debug/deps/libalidrone_sim-30dd8dfe182d9ed4.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
