/root/repo/target/debug/deps/no_alloc-890e43e3b31b12e0.d: crates/obs/tests/no_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libno_alloc-890e43e3b31b12e0.rmeta: crates/obs/tests/no_alloc.rs Cargo.toml

crates/obs/tests/no_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
