/root/repo/target/debug/deps/exp_fig6-4231524a01c77911.d: crates/sim/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-4231524a01c77911: crates/sim/src/bin/exp_fig6.rs

crates/sim/src/bin/exp_fig6.rs:
