/root/repo/target/debug/deps/alidrone-ca77db3ef1ba8bdf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone-ca77db3ef1ba8bdf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
