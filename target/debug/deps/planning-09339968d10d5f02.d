/root/repo/target/debug/deps/planning-09339968d10d5f02.d: tests/planning.rs Cargo.toml

/root/repo/target/debug/deps/libplanning-09339968d10d5f02.rmeta: tests/planning.rs Cargo.toml

tests/planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
