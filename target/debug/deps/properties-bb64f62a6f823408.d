/root/repo/target/debug/deps/properties-bb64f62a6f823408.d: crates/tee/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bb64f62a6f823408.rmeta: crates/tee/tests/properties.rs Cargo.toml

crates/tee/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
