/root/repo/target/debug/deps/exp_fig8-77b98631e3694b87.d: crates/sim/src/bin/exp_fig8.rs

/root/repo/target/debug/deps/exp_fig8-77b98631e3694b87: crates/sim/src/bin/exp_fig8.rs

crates/sim/src/bin/exp_fig8.rs:
