/root/repo/target/debug/deps/exp_ablation-f95087b37a97b7b1.d: crates/sim/src/bin/exp_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation-f95087b37a97b7b1.rmeta: crates/sim/src/bin/exp_ablation.rs Cargo.toml

crates/sim/src/bin/exp_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
