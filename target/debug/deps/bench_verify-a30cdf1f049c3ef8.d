/root/repo/target/debug/deps/bench_verify-a30cdf1f049c3ef8.d: crates/bench/benches/bench_verify.rs

/root/repo/target/debug/deps/bench_verify-a30cdf1f049c3ef8: crates/bench/benches/bench_verify.rs

crates/bench/benches/bench_verify.rs:
