/root/repo/target/debug/deps/properties-ba6933dffb85dc2d.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ba6933dffb85dc2d.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
