/root/repo/target/debug/deps/properties-859d1bfecf4a6835.d: crates/crypto/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-859d1bfecf4a6835.rmeta: crates/crypto/tests/properties.rs Cargo.toml

crates/crypto/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
