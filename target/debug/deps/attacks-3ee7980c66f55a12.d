/root/repo/target/debug/deps/attacks-3ee7980c66f55a12.d: tests/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-3ee7980c66f55a12.rmeta: tests/attacks.rs Cargo.toml

tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
