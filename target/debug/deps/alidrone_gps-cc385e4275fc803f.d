/root/repo/target/debug/deps/alidrone_gps-cc385e4275fc803f.d: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_gps-cc385e4275fc803f.rmeta: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs Cargo.toml

crates/gps/src/lib.rs:
crates/gps/src/clock.rs:
crates/gps/src/nmea_feed.rs:
crates/gps/src/receiver.rs:
crates/gps/src/receiver3d.rs:
crates/gps/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
