/root/repo/target/debug/deps/planning-11083b6368eaf258.d: tests/planning.rs

/root/repo/target/debug/deps/planning-11083b6368eaf258: tests/planning.rs

tests/planning.rs:
