/root/repo/target/debug/deps/alidrone_nmea-09908ea55ecac49b.d: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs

/root/repo/target/debug/deps/libalidrone_nmea-09908ea55ecac49b.rmeta: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs

crates/nmea/src/lib.rs:
crates/nmea/src/coord.rs:
crates/nmea/src/error.rs:
crates/nmea/src/gga.rs:
crates/nmea/src/gsa.rs:
crates/nmea/src/rmc.rs:
crates/nmea/src/sentence.rs:
crates/nmea/src/vtg.rs:
