/root/repo/target/debug/deps/no_alloc-e5edea57af88555d.d: crates/obs/tests/no_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libno_alloc-e5edea57af88555d.rmeta: crates/obs/tests/no_alloc.rs Cargo.toml

crates/obs/tests/no_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
