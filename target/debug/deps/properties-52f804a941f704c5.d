/root/repo/target/debug/deps/properties-52f804a941f704c5.d: crates/nmea/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-52f804a941f704c5.rmeta: crates/nmea/tests/properties.rs Cargo.toml

crates/nmea/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
