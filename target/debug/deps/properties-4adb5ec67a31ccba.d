/root/repo/target/debug/deps/properties-4adb5ec67a31ccba.d: crates/nmea/tests/properties.rs

/root/repo/target/debug/deps/properties-4adb5ec67a31ccba: crates/nmea/tests/properties.rs

crates/nmea/tests/properties.rs:
