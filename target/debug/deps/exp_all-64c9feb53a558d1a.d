/root/repo/target/debug/deps/exp_all-64c9feb53a558d1a.d: crates/sim/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-64c9feb53a558d1a: crates/sim/src/bin/exp_all.rs

crates/sim/src/bin/exp_all.rs:
