/root/repo/target/debug/deps/extensions-d7fe5d5a75fc9913.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-d7fe5d5a75fc9913: tests/extensions.rs

tests/extensions.rs:
