/root/repo/target/debug/deps/alidrone_obs-fc2ee931a78e4ee0.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/alidrone_obs-fc2ee931a78e4ee0: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/span.rs:
