/root/repo/target/debug/deps/properties-6545fe7e8c3fc598.d: crates/gps/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6545fe7e8c3fc598.rmeta: crates/gps/tests/properties.rs Cargo.toml

crates/gps/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
