/root/repo/target/debug/deps/exp_all-1e0d0f7b9467908f.d: crates/sim/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-1e0d0f7b9467908f: crates/sim/src/bin/exp_all.rs

crates/sim/src/bin/exp_all.rs:
