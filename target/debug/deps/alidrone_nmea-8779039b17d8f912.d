/root/repo/target/debug/deps/alidrone_nmea-8779039b17d8f912.d: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs Cargo.toml

/root/repo/target/debug/deps/libalidrone_nmea-8779039b17d8f912.rmeta: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs Cargo.toml

crates/nmea/src/lib.rs:
crates/nmea/src/coord.rs:
crates/nmea/src/error.rs:
crates/nmea/src/gga.rs:
crates/nmea/src/gsa.rs:
crates/nmea/src/rmc.rs:
crates/nmea/src/sentence.rs:
crates/nmea/src/vtg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
