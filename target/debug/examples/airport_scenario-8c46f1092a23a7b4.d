/root/repo/target/debug/examples/airport_scenario-8c46f1092a23a7b4.d: examples/airport_scenario.rs Cargo.toml

/root/repo/target/debug/examples/libairport_scenario-8c46f1092a23a7b4.rmeta: examples/airport_scenario.rs Cargo.toml

examples/airport_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
