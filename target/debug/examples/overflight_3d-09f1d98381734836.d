/root/repo/target/debug/examples/overflight_3d-09f1d98381734836.d: examples/overflight_3d.rs

/root/repo/target/debug/examples/overflight_3d-09f1d98381734836: examples/overflight_3d.rs

examples/overflight_3d.rs:
