/root/repo/target/debug/examples/quickstart-9383ae6f39a950cb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9383ae6f39a950cb: examples/quickstart.rs

examples/quickstart.rs:
