/root/repo/target/debug/examples/delivery_fleet-412892a48ba707c0.d: examples/delivery_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libdelivery_fleet-412892a48ba707c0.rmeta: examples/delivery_fleet.rs Cargo.toml

examples/delivery_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
