/root/repo/target/debug/examples/quickstart-e1e4fff475a0cb65.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e1e4fff475a0cb65: examples/quickstart.rs

examples/quickstart.rs:
