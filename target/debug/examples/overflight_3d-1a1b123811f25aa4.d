/root/repo/target/debug/examples/overflight_3d-1a1b123811f25aa4.d: examples/overflight_3d.rs Cargo.toml

/root/repo/target/debug/examples/liboverflight_3d-1a1b123811f25aa4.rmeta: examples/overflight_3d.rs Cargo.toml

examples/overflight_3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
