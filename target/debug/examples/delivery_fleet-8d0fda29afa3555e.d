/root/repo/target/debug/examples/delivery_fleet-8d0fda29afa3555e.d: examples/delivery_fleet.rs

/root/repo/target/debug/examples/delivery_fleet-8d0fda29afa3555e: examples/delivery_fleet.rs

examples/delivery_fleet.rs:
