/root/repo/target/debug/examples/residential_scenario-462b5648e3831af9.d: examples/residential_scenario.rs

/root/repo/target/debug/examples/residential_scenario-462b5648e3831af9: examples/residential_scenario.rs

examples/residential_scenario.rs:
