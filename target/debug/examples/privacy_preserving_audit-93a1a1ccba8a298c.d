/root/repo/target/debug/examples/privacy_preserving_audit-93a1a1ccba8a298c.d: examples/privacy_preserving_audit.rs Cargo.toml

/root/repo/target/debug/examples/libprivacy_preserving_audit-93a1a1ccba8a298c.rmeta: examples/privacy_preserving_audit.rs Cargo.toml

examples/privacy_preserving_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
