/root/repo/target/debug/examples/route_planning-c7538843c880747e.d: examples/route_planning.rs Cargo.toml

/root/repo/target/debug/examples/libroute_planning-c7538843c880747e.rmeta: examples/route_planning.rs Cargo.toml

examples/route_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
