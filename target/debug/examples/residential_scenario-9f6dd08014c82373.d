/root/repo/target/debug/examples/residential_scenario-9f6dd08014c82373.d: examples/residential_scenario.rs Cargo.toml

/root/repo/target/debug/examples/libresidential_scenario-9f6dd08014c82373.rmeta: examples/residential_scenario.rs Cargo.toml

examples/residential_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
