/root/repo/target/debug/examples/route_planning-49da43b42ffbff84.d: examples/route_planning.rs

/root/repo/target/debug/examples/route_planning-49da43b42ffbff84: examples/route_planning.rs

examples/route_planning.rs:
