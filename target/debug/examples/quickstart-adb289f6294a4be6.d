/root/repo/target/debug/examples/quickstart-adb289f6294a4be6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-adb289f6294a4be6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
