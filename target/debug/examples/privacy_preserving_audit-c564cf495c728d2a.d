/root/repo/target/debug/examples/privacy_preserving_audit-c564cf495c728d2a.d: examples/privacy_preserving_audit.rs

/root/repo/target/debug/examples/privacy_preserving_audit-c564cf495c728d2a: examples/privacy_preserving_audit.rs

examples/privacy_preserving_audit.rs:
