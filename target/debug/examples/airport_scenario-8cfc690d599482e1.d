/root/repo/target/debug/examples/airport_scenario-8cfc690d599482e1.d: examples/airport_scenario.rs

/root/repo/target/debug/examples/airport_scenario-8cfc690d599482e1: examples/airport_scenario.rs

examples/airport_scenario.rs:
