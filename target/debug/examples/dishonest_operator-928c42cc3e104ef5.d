/root/repo/target/debug/examples/dishonest_operator-928c42cc3e104ef5.d: examples/dishonest_operator.rs Cargo.toml

/root/repo/target/debug/examples/libdishonest_operator-928c42cc3e104ef5.rmeta: examples/dishonest_operator.rs Cargo.toml

examples/dishonest_operator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
