/root/repo/target/debug/examples/airport_scenario-1cf9cdfc3779dee6.d: examples/airport_scenario.rs

/root/repo/target/debug/examples/airport_scenario-1cf9cdfc3779dee6: examples/airport_scenario.rs

examples/airport_scenario.rs:
