/root/repo/target/debug/examples/quickstart-1f5fa3fb4db9cc2a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1f5fa3fb4db9cc2a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
