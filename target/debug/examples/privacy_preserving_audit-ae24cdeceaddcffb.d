/root/repo/target/debug/examples/privacy_preserving_audit-ae24cdeceaddcffb.d: examples/privacy_preserving_audit.rs

/root/repo/target/debug/examples/privacy_preserving_audit-ae24cdeceaddcffb: examples/privacy_preserving_audit.rs

examples/privacy_preserving_audit.rs:
