/root/repo/target/debug/examples/delivery_fleet-8e7f3b7c4d76135d.d: examples/delivery_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libdelivery_fleet-8e7f3b7c4d76135d.rmeta: examples/delivery_fleet.rs Cargo.toml

examples/delivery_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
