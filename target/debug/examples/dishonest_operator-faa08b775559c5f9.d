/root/repo/target/debug/examples/dishonest_operator-faa08b775559c5f9.d: examples/dishonest_operator.rs

/root/repo/target/debug/examples/dishonest_operator-faa08b775559c5f9: examples/dishonest_operator.rs

examples/dishonest_operator.rs:
