/root/repo/target/debug/examples/route_planning-9d12cb4ed6c35adc.d: examples/route_planning.rs

/root/repo/target/debug/examples/route_planning-9d12cb4ed6c35adc: examples/route_planning.rs

examples/route_planning.rs:
