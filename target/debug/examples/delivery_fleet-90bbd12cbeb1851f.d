/root/repo/target/debug/examples/delivery_fleet-90bbd12cbeb1851f.d: examples/delivery_fleet.rs

/root/repo/target/debug/examples/delivery_fleet-90bbd12cbeb1851f: examples/delivery_fleet.rs

examples/delivery_fleet.rs:
