/root/repo/target/debug/examples/dishonest_operator-8efe97f193784011.d: examples/dishonest_operator.rs Cargo.toml

/root/repo/target/debug/examples/libdishonest_operator-8efe97f193784011.rmeta: examples/dishonest_operator.rs Cargo.toml

examples/dishonest_operator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
