/root/repo/target/debug/examples/overflight_3d-f960df2b67750746.d: examples/overflight_3d.rs

/root/repo/target/debug/examples/overflight_3d-f960df2b67750746: examples/overflight_3d.rs

examples/overflight_3d.rs:
