/root/repo/target/debug/examples/dishonest_operator-5f623719d3faa643.d: examples/dishonest_operator.rs

/root/repo/target/debug/examples/dishonest_operator-5f623719d3faa643: examples/dishonest_operator.rs

examples/dishonest_operator.rs:
