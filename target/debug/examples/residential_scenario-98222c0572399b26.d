/root/repo/target/debug/examples/residential_scenario-98222c0572399b26.d: examples/residential_scenario.rs Cargo.toml

/root/repo/target/debug/examples/libresidential_scenario-98222c0572399b26.rmeta: examples/residential_scenario.rs Cargo.toml

examples/residential_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
