/root/repo/target/debug/examples/residential_scenario-8400f2dd0a77b08e.d: examples/residential_scenario.rs

/root/repo/target/debug/examples/residential_scenario-8400f2dd0a77b08e: examples/residential_scenario.rs

examples/residential_scenario.rs:
