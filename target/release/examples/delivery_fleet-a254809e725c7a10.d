/root/repo/target/release/examples/delivery_fleet-a254809e725c7a10.d: examples/delivery_fleet.rs

/root/repo/target/release/examples/delivery_fleet-a254809e725c7a10: examples/delivery_fleet.rs

examples/delivery_fleet.rs:
