/root/repo/target/release/examples/airport_scenario-46151908be6a0327.d: examples/airport_scenario.rs

/root/repo/target/release/examples/airport_scenario-46151908be6a0327: examples/airport_scenario.rs

examples/airport_scenario.rs:
