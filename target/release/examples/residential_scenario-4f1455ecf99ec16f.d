/root/repo/target/release/examples/residential_scenario-4f1455ecf99ec16f.d: examples/residential_scenario.rs

/root/repo/target/release/examples/residential_scenario-4f1455ecf99ec16f: examples/residential_scenario.rs

examples/residential_scenario.rs:
