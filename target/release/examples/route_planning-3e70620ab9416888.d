/root/repo/target/release/examples/route_planning-3e70620ab9416888.d: examples/route_planning.rs

/root/repo/target/release/examples/route_planning-3e70620ab9416888: examples/route_planning.rs

examples/route_planning.rs:
