/root/repo/target/release/examples/overflight_3d-32374204bd92a8f5.d: examples/overflight_3d.rs

/root/repo/target/release/examples/overflight_3d-32374204bd92a8f5: examples/overflight_3d.rs

examples/overflight_3d.rs:
