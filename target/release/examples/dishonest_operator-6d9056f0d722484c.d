/root/repo/target/release/examples/dishonest_operator-6d9056f0d722484c.d: examples/dishonest_operator.rs

/root/repo/target/release/examples/dishonest_operator-6d9056f0d722484c: examples/dishonest_operator.rs

examples/dishonest_operator.rs:
