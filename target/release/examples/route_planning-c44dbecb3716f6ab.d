/root/repo/target/release/examples/route_planning-c44dbecb3716f6ab.d: examples/route_planning.rs

/root/repo/target/release/examples/route_planning-c44dbecb3716f6ab: examples/route_planning.rs

examples/route_planning.rs:
