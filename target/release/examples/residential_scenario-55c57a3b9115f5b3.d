/root/repo/target/release/examples/residential_scenario-55c57a3b9115f5b3.d: examples/residential_scenario.rs

/root/repo/target/release/examples/residential_scenario-55c57a3b9115f5b3: examples/residential_scenario.rs

examples/residential_scenario.rs:
