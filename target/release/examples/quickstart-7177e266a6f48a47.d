/root/repo/target/release/examples/quickstart-7177e266a6f48a47.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7177e266a6f48a47: examples/quickstart.rs

examples/quickstart.rs:
