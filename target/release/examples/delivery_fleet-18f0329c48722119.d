/root/repo/target/release/examples/delivery_fleet-18f0329c48722119.d: examples/delivery_fleet.rs

/root/repo/target/release/examples/delivery_fleet-18f0329c48722119: examples/delivery_fleet.rs

examples/delivery_fleet.rs:
