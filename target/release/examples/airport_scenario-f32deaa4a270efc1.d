/root/repo/target/release/examples/airport_scenario-f32deaa4a270efc1.d: examples/airport_scenario.rs

/root/repo/target/release/examples/airport_scenario-f32deaa4a270efc1: examples/airport_scenario.rs

examples/airport_scenario.rs:
