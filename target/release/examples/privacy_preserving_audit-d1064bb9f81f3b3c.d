/root/repo/target/release/examples/privacy_preserving_audit-d1064bb9f81f3b3c.d: examples/privacy_preserving_audit.rs

/root/repo/target/release/examples/privacy_preserving_audit-d1064bb9f81f3b3c: examples/privacy_preserving_audit.rs

examples/privacy_preserving_audit.rs:
