/root/repo/target/release/examples/dishonest_operator-31c85ab17697887a.d: examples/dishonest_operator.rs

/root/repo/target/release/examples/dishonest_operator-31c85ab17697887a: examples/dishonest_operator.rs

examples/dishonest_operator.rs:
