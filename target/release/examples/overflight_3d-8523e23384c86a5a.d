/root/repo/target/release/examples/overflight_3d-8523e23384c86a5a.d: examples/overflight_3d.rs

/root/repo/target/release/examples/overflight_3d-8523e23384c86a5a: examples/overflight_3d.rs

examples/overflight_3d.rs:
