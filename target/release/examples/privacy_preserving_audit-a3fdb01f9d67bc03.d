/root/repo/target/release/examples/privacy_preserving_audit-a3fdb01f9d67bc03.d: examples/privacy_preserving_audit.rs

/root/repo/target/release/examples/privacy_preserving_audit-a3fdb01f9d67bc03: examples/privacy_preserving_audit.rs

examples/privacy_preserving_audit.rs:
