/root/repo/target/release/examples/quickstart-ef97cea886a2bdf0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ef97cea886a2bdf0: examples/quickstart.rs

examples/quickstart.rs:
