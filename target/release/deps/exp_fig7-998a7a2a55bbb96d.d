/root/repo/target/release/deps/exp_fig7-998a7a2a55bbb96d.d: crates/sim/src/bin/exp_fig7.rs

/root/repo/target/release/deps/exp_fig7-998a7a2a55bbb96d: crates/sim/src/bin/exp_fig7.rs

crates/sim/src/bin/exp_fig7.rs:
