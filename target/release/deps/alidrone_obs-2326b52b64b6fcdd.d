/root/repo/target/release/deps/alidrone_obs-2326b52b64b6fcdd.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/release/deps/alidrone_obs-2326b52b64b6fcdd: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
