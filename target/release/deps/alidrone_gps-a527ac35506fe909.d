/root/repo/target/release/deps/alidrone_gps-a527ac35506fe909.d: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

/root/repo/target/release/deps/alidrone_gps-a527ac35506fe909: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

crates/gps/src/lib.rs:
crates/gps/src/clock.rs:
crates/gps/src/nmea_feed.rs:
crates/gps/src/receiver.rs:
crates/gps/src/receiver3d.rs:
crates/gps/src/trace.rs:
