/root/repo/target/release/deps/exp_fig7-9be9e207b9861988.d: crates/sim/src/bin/exp_fig7.rs

/root/repo/target/release/deps/exp_fig7-9be9e207b9861988: crates/sim/src/bin/exp_fig7.rs

crates/sim/src/bin/exp_fig7.rs:
