/root/repo/target/release/deps/attacks-1cb55b16b50a59a9.d: tests/attacks.rs

/root/repo/target/release/deps/attacks-1cb55b16b50a59a9: tests/attacks.rs

tests/attacks.rs:
