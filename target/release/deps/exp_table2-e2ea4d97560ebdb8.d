/root/repo/target/release/deps/exp_table2-e2ea4d97560ebdb8.d: crates/sim/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-e2ea4d97560ebdb8: crates/sim/src/bin/exp_table2.rs

crates/sim/src/bin/exp_table2.rs:
