/root/repo/target/release/deps/planning-40f7c262fbbfc7d6.d: tests/planning.rs

/root/repo/target/release/deps/planning-40f7c262fbbfc7d6: tests/planning.rs

tests/planning.rs:
