/root/repo/target/release/deps/exp_all-222ff06adf9a97b8.d: crates/sim/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-222ff06adf9a97b8: crates/sim/src/bin/exp_all.rs

crates/sim/src/bin/exp_all.rs:
