/root/repo/target/release/deps/bench_verify-0298e8526bf09d88.d: crates/bench/benches/bench_verify.rs

/root/repo/target/release/deps/bench_verify-0298e8526bf09d88: crates/bench/benches/bench_verify.rs

crates/bench/benches/bench_verify.rs:
