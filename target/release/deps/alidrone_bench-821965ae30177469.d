/root/repo/target/release/deps/alidrone_bench-821965ae30177469.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/alidrone_bench-821965ae30177469: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
