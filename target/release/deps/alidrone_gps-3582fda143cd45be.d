/root/repo/target/release/deps/alidrone_gps-3582fda143cd45be.d: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

/root/repo/target/release/deps/libalidrone_gps-3582fda143cd45be.rlib: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

/root/repo/target/release/deps/libalidrone_gps-3582fda143cd45be.rmeta: crates/gps/src/lib.rs crates/gps/src/clock.rs crates/gps/src/nmea_feed.rs crates/gps/src/receiver.rs crates/gps/src/receiver3d.rs crates/gps/src/trace.rs

crates/gps/src/lib.rs:
crates/gps/src/clock.rs:
crates/gps/src/nmea_feed.rs:
crates/gps/src/receiver.rs:
crates/gps/src/receiver3d.rs:
crates/gps/src/trace.rs:
