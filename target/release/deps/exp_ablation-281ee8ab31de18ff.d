/root/repo/target/release/deps/exp_ablation-281ee8ab31de18ff.d: crates/sim/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-281ee8ab31de18ff: crates/sim/src/bin/exp_ablation.rs

crates/sim/src/bin/exp_ablation.rs:
