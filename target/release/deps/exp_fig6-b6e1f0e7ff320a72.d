/root/repo/target/release/deps/exp_fig6-b6e1f0e7ff320a72.d: crates/sim/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-b6e1f0e7ff320a72: crates/sim/src/bin/exp_fig6.rs

crates/sim/src/bin/exp_fig6.rs:
