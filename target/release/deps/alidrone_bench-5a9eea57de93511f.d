/root/repo/target/release/deps/alidrone_bench-5a9eea57de93511f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libalidrone_bench-5a9eea57de93511f.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libalidrone_bench-5a9eea57de93511f.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
