/root/repo/target/release/deps/exp_ablation-4429aee2520ffdb1.d: crates/sim/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-4429aee2520ffdb1: crates/sim/src/bin/exp_ablation.rs

crates/sim/src/bin/exp_ablation.rs:
