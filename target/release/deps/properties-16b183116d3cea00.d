/root/repo/target/release/deps/properties-16b183116d3cea00.d: crates/geo/tests/properties.rs

/root/repo/target/release/deps/properties-16b183116d3cea00: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
