/root/repo/target/release/deps/no_alloc-0cf47fc9c6511f00.d: crates/obs/tests/no_alloc.rs

/root/repo/target/release/deps/no_alloc-0cf47fc9c6511f00: crates/obs/tests/no_alloc.rs

crates/obs/tests/no_alloc.rs:
