/root/repo/target/release/deps/attacks-4c5f2778f6963923.d: tests/attacks.rs

/root/repo/target/release/deps/attacks-4c5f2778f6963923: tests/attacks.rs

tests/attacks.rs:
