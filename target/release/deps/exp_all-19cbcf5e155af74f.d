/root/repo/target/release/deps/exp_all-19cbcf5e155af74f.d: crates/sim/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-19cbcf5e155af74f: crates/sim/src/bin/exp_all.rs

crates/sim/src/bin/exp_all.rs:
