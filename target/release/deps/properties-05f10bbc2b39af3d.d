/root/repo/target/release/deps/properties-05f10bbc2b39af3d.d: crates/tee/tests/properties.rs

/root/repo/target/release/deps/properties-05f10bbc2b39af3d: crates/tee/tests/properties.rs

crates/tee/tests/properties.rs:
