/root/repo/target/release/deps/bench_crypto-aeeec594903e04bf.d: crates/bench/benches/bench_crypto.rs

/root/repo/target/release/deps/bench_crypto-aeeec594903e04bf: crates/bench/benches/bench_crypto.rs

crates/bench/benches/bench_crypto.rs:
