/root/repo/target/release/deps/planning-c8971e243a6deaeb.d: tests/planning.rs

/root/repo/target/release/deps/planning-c8971e243a6deaeb: tests/planning.rs

tests/planning.rs:
