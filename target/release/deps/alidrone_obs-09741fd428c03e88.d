/root/repo/target/release/deps/alidrone_obs-09741fd428c03e88.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libalidrone_obs-09741fd428c03e88.rlib: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libalidrone_obs-09741fd428c03e88.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/span.rs:
