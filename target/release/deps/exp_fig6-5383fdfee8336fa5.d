/root/repo/target/release/deps/exp_fig6-5383fdfee8336fa5.d: crates/sim/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-5383fdfee8336fa5: crates/sim/src/bin/exp_fig6.rs

crates/sim/src/bin/exp_fig6.rs:
