/root/repo/target/release/deps/properties-a3cf04d37d45f7f1.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-a3cf04d37d45f7f1: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
