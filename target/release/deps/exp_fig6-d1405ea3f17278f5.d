/root/repo/target/release/deps/exp_fig6-d1405ea3f17278f5.d: crates/sim/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-d1405ea3f17278f5: crates/sim/src/bin/exp_fig6.rs

crates/sim/src/bin/exp_fig6.rs:
