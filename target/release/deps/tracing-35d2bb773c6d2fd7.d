/root/repo/target/release/deps/tracing-35d2bb773c6d2fd7.d: tests/tracing.rs

/root/repo/target/release/deps/tracing-35d2bb773c6d2fd7: tests/tracing.rs

tests/tracing.rs:
