/root/repo/target/release/deps/bench_tee-a9d41bc54a8db601.d: crates/bench/benches/bench_tee.rs

/root/repo/target/release/deps/bench_tee-a9d41bc54a8db601: crates/bench/benches/bench_tee.rs

crates/bench/benches/bench_tee.rs:
