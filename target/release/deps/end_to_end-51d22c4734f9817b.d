/root/repo/target/release/deps/end_to_end-51d22c4734f9817b.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-51d22c4734f9817b: tests/end_to_end.rs

tests/end_to_end.rs:
