/root/repo/target/release/deps/exp_table2-50c85e229c9bad63.d: crates/sim/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-50c85e229c9bad63: crates/sim/src/bin/exp_table2.rs

crates/sim/src/bin/exp_table2.rs:
