/root/repo/target/release/deps/reproduction-21c0dc52d48e794e.d: tests/reproduction.rs

/root/repo/target/release/deps/reproduction-21c0dc52d48e794e: tests/reproduction.rs

tests/reproduction.rs:
