/root/repo/target/release/deps/extensions-d30629031858b55b.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-d30629031858b55b: tests/extensions.rs

tests/extensions.rs:
