/root/repo/target/release/deps/exp_fig8-2b6b16da8fa8a957.d: crates/sim/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-2b6b16da8fa8a957: crates/sim/src/bin/exp_fig8.rs

crates/sim/src/bin/exp_fig8.rs:
