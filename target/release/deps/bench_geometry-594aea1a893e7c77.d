/root/repo/target/release/deps/bench_geometry-594aea1a893e7c77.d: crates/bench/benches/bench_geometry.rs

/root/repo/target/release/deps/bench_geometry-594aea1a893e7c77: crates/bench/benches/bench_geometry.rs

crates/bench/benches/bench_geometry.rs:
