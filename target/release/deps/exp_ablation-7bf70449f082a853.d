/root/repo/target/release/deps/exp_ablation-7bf70449f082a853.d: crates/sim/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-7bf70449f082a853: crates/sim/src/bin/exp_ablation.rs

crates/sim/src/bin/exp_ablation.rs:
