/root/repo/target/release/deps/properties-9b30b461514446cf.d: crates/nmea/tests/properties.rs

/root/repo/target/release/deps/properties-9b30b461514446cf: crates/nmea/tests/properties.rs

crates/nmea/tests/properties.rs:
