/root/repo/target/release/deps/bench_scenarios-bbe89adec6387193.d: crates/bench/benches/bench_scenarios.rs

/root/repo/target/release/deps/bench_scenarios-bbe89adec6387193: crates/bench/benches/bench_scenarios.rs

crates/bench/benches/bench_scenarios.rs:
