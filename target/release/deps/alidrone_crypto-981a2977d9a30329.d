/root/repo/target/release/deps/alidrone_crypto-981a2977d9a30329.d: crates/crypto/src/lib.rs crates/crypto/src/bigint.rs crates/crypto/src/chacha20.rs crates/crypto/src/dh.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/prime.rs crates/crypto/src/rng.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libalidrone_crypto-981a2977d9a30329.rlib: crates/crypto/src/lib.rs crates/crypto/src/bigint.rs crates/crypto/src/chacha20.rs crates/crypto/src/dh.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/prime.rs crates/crypto/src/rng.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libalidrone_crypto-981a2977d9a30329.rmeta: crates/crypto/src/lib.rs crates/crypto/src/bigint.rs crates/crypto/src/chacha20.rs crates/crypto/src/dh.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/prime.rs crates/crypto/src/rng.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/bigint.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/dh.rs:
crates/crypto/src/error.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/prime.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/rsa.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
