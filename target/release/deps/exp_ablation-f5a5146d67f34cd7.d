/root/repo/target/release/deps/exp_ablation-f5a5146d67f34cd7.d: crates/sim/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-f5a5146d67f34cd7: crates/sim/src/bin/exp_ablation.rs

crates/sim/src/bin/exp_ablation.rs:
