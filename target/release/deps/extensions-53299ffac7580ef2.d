/root/repo/target/release/deps/extensions-53299ffac7580ef2.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-53299ffac7580ef2: tests/extensions.rs

tests/extensions.rs:
