/root/repo/target/release/deps/exp_fig7-6329586f60eda8ee.d: crates/sim/src/bin/exp_fig7.rs

/root/repo/target/release/deps/exp_fig7-6329586f60eda8ee: crates/sim/src/bin/exp_fig7.rs

crates/sim/src/bin/exp_fig7.rs:
