/root/repo/target/release/deps/alidrone_obs-de805413ae2829b3.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libalidrone_obs-de805413ae2829b3.rlib: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libalidrone_obs-de805413ae2829b3.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
