/root/repo/target/release/deps/exp_table2-bf042ba077d59fa5.d: crates/sim/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-bf042ba077d59fa5: crates/sim/src/bin/exp_table2.rs

crates/sim/src/bin/exp_table2.rs:
