/root/repo/target/release/deps/alidrone-8c1c5a4480b49593.d: src/lib.rs

/root/repo/target/release/deps/libalidrone-8c1c5a4480b49593.rlib: src/lib.rs

/root/repo/target/release/deps/libalidrone-8c1c5a4480b49593.rmeta: src/lib.rs

src/lib.rs:
