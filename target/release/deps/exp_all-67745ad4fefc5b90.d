/root/repo/target/release/deps/exp_all-67745ad4fefc5b90.d: crates/sim/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-67745ad4fefc5b90: crates/sim/src/bin/exp_all.rs

crates/sim/src/bin/exp_all.rs:
