/root/repo/target/release/deps/alidrone_bench-bf6fdaec39240fb4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libalidrone_bench-bf6fdaec39240fb4.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libalidrone_bench-bf6fdaec39240fb4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
