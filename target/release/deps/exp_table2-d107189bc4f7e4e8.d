/root/repo/target/release/deps/exp_table2-d107189bc4f7e4e8.d: crates/sim/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-d107189bc4f7e4e8: crates/sim/src/bin/exp_table2.rs

crates/sim/src/bin/exp_table2.rs:
