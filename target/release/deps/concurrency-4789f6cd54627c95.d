/root/repo/target/release/deps/concurrency-4789f6cd54627c95.d: crates/tee/tests/concurrency.rs

/root/repo/target/release/deps/concurrency-4789f6cd54627c95: crates/tee/tests/concurrency.rs

crates/tee/tests/concurrency.rs:
