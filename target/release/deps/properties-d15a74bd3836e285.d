/root/repo/target/release/deps/properties-d15a74bd3836e285.d: crates/gps/tests/properties.rs

/root/repo/target/release/deps/properties-d15a74bd3836e285: crates/gps/tests/properties.rs

crates/gps/tests/properties.rs:
