/root/repo/target/release/deps/end_to_end-bf10fda3fe0469f0.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-bf10fda3fe0469f0: tests/end_to_end.rs

tests/end_to_end.rs:
