/root/repo/target/release/deps/alidrone_core-092d851fe21dccf9.d: crates/core/src/lib.rs crates/core/src/auditor.rs crates/core/src/error.rs crates/core/src/flight.rs crates/core/src/identity.rs crates/core/src/messages.rs crates/core/src/operator.rs crates/core/src/poa.rs crates/core/src/test_support.rs crates/core/src/zone_owner.rs crates/core/src/privacy.rs crates/core/src/sampling/mod.rs crates/core/src/sampling/adaptive.rs crates/core/src/sampling/fixed.rs crates/core/src/symmetric.rs crates/core/src/wire/mod.rs crates/core/src/wire/codec.rs crates/core/src/wire/server.rs crates/core/src/wire/transport.rs

/root/repo/target/release/deps/alidrone_core-092d851fe21dccf9: crates/core/src/lib.rs crates/core/src/auditor.rs crates/core/src/error.rs crates/core/src/flight.rs crates/core/src/identity.rs crates/core/src/messages.rs crates/core/src/operator.rs crates/core/src/poa.rs crates/core/src/test_support.rs crates/core/src/zone_owner.rs crates/core/src/privacy.rs crates/core/src/sampling/mod.rs crates/core/src/sampling/adaptive.rs crates/core/src/sampling/fixed.rs crates/core/src/symmetric.rs crates/core/src/wire/mod.rs crates/core/src/wire/codec.rs crates/core/src/wire/server.rs crates/core/src/wire/transport.rs

crates/core/src/lib.rs:
crates/core/src/auditor.rs:
crates/core/src/error.rs:
crates/core/src/flight.rs:
crates/core/src/identity.rs:
crates/core/src/messages.rs:
crates/core/src/operator.rs:
crates/core/src/poa.rs:
crates/core/src/test_support.rs:
crates/core/src/zone_owner.rs:
crates/core/src/privacy.rs:
crates/core/src/sampling/mod.rs:
crates/core/src/sampling/adaptive.rs:
crates/core/src/sampling/fixed.rs:
crates/core/src/symmetric.rs:
crates/core/src/wire/mod.rs:
crates/core/src/wire/codec.rs:
crates/core/src/wire/server.rs:
crates/core/src/wire/transport.rs:
