/root/repo/target/release/deps/alidrone-6dc6b723bda32050.d: src/lib.rs

/root/repo/target/release/deps/libalidrone-6dc6b723bda32050.rlib: src/lib.rs

/root/repo/target/release/deps/libalidrone-6dc6b723bda32050.rmeta: src/lib.rs

src/lib.rs:
