/root/repo/target/release/deps/exp_fig8-1b26aa21f4fc2dc2.d: crates/sim/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-1b26aa21f4fc2dc2: crates/sim/src/bin/exp_fig8.rs

crates/sim/src/bin/exp_fig8.rs:
