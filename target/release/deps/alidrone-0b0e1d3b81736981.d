/root/repo/target/release/deps/alidrone-0b0e1d3b81736981.d: src/lib.rs

/root/repo/target/release/deps/alidrone-0b0e1d3b81736981: src/lib.rs

src/lib.rs:
