/root/repo/target/release/deps/alidrone_sim-54459ba59ed4031d.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/release/deps/alidrone_sim-54459ba59ed4031d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
