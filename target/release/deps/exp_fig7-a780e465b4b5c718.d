/root/repo/target/release/deps/exp_fig7-a780e465b4b5c718.d: crates/sim/src/bin/exp_fig7.rs

/root/repo/target/release/deps/exp_fig7-a780e465b4b5c718: crates/sim/src/bin/exp_fig7.rs

crates/sim/src/bin/exp_fig7.rs:
