/root/repo/target/release/deps/exp_trace-679184cc64694ff8.d: crates/sim/src/bin/exp_trace.rs

/root/repo/target/release/deps/exp_trace-679184cc64694ff8: crates/sim/src/bin/exp_trace.rs

crates/sim/src/bin/exp_trace.rs:
