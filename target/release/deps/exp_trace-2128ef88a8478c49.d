/root/repo/target/release/deps/exp_trace-2128ef88a8478c49.d: crates/sim/src/bin/exp_trace.rs

/root/repo/target/release/deps/exp_trace-2128ef88a8478c49: crates/sim/src/bin/exp_trace.rs

crates/sim/src/bin/exp_trace.rs:
