/root/repo/target/release/deps/alidrone_obs-62ee89ce38818ef5.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

/root/repo/target/release/deps/alidrone_obs-62ee89ce38818ef5: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/span.rs:
