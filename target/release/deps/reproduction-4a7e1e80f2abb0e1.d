/root/repo/target/release/deps/reproduction-4a7e1e80f2abb0e1.d: tests/reproduction.rs

/root/repo/target/release/deps/reproduction-4a7e1e80f2abb0e1: tests/reproduction.rs

tests/reproduction.rs:
