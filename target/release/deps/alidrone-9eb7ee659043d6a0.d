/root/repo/target/release/deps/alidrone-9eb7ee659043d6a0.d: src/lib.rs

/root/repo/target/release/deps/alidrone-9eb7ee659043d6a0: src/lib.rs

src/lib.rs:
