/root/repo/target/release/deps/concurrency-3a0960dd1b8278d3.d: crates/tee/tests/concurrency.rs

/root/repo/target/release/deps/concurrency-3a0960dd1b8278d3: crates/tee/tests/concurrency.rs

crates/tee/tests/concurrency.rs:
