/root/repo/target/release/deps/no_alloc-790047c7b331b577.d: crates/obs/tests/no_alloc.rs

/root/repo/target/release/deps/no_alloc-790047c7b331b577: crates/obs/tests/no_alloc.rs

crates/obs/tests/no_alloc.rs:
