/root/repo/target/release/deps/alidrone_nmea-92622696544cdaf1.d: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs

/root/repo/target/release/deps/libalidrone_nmea-92622696544cdaf1.rlib: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs

/root/repo/target/release/deps/libalidrone_nmea-92622696544cdaf1.rmeta: crates/nmea/src/lib.rs crates/nmea/src/coord.rs crates/nmea/src/error.rs crates/nmea/src/gga.rs crates/nmea/src/gsa.rs crates/nmea/src/rmc.rs crates/nmea/src/sentence.rs crates/nmea/src/vtg.rs

crates/nmea/src/lib.rs:
crates/nmea/src/coord.rs:
crates/nmea/src/error.rs:
crates/nmea/src/gga.rs:
crates/nmea/src/gsa.rs:
crates/nmea/src/rmc.rs:
crates/nmea/src/sentence.rs:
crates/nmea/src/vtg.rs:
