/root/repo/target/release/deps/alidrone_tee-99223a6e3cc54ba2.d: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

/root/repo/target/release/deps/libalidrone_tee-99223a6e3cc54ba2.rlib: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

/root/repo/target/release/deps/libalidrone_tee-99223a6e3cc54ba2.rmeta: crates/tee/src/lib.rs crates/tee/src/client.rs crates/tee/src/cost.rs crates/tee/src/error.rs crates/tee/src/keystore.rs crates/tee/src/sampler.rs crates/tee/src/spoof.rs crates/tee/src/storage.rs crates/tee/src/uuid.rs crates/tee/src/world.rs

crates/tee/src/lib.rs:
crates/tee/src/client.rs:
crates/tee/src/cost.rs:
crates/tee/src/error.rs:
crates/tee/src/keystore.rs:
crates/tee/src/sampler.rs:
crates/tee/src/spoof.rs:
crates/tee/src/storage.rs:
crates/tee/src/uuid.rs:
crates/tee/src/world.rs:
