/root/repo/target/release/deps/properties-7909c3c5d4a16de8.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-7909c3c5d4a16de8: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
