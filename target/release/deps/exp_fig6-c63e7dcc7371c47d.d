/root/repo/target/release/deps/exp_fig6-c63e7dcc7371c47d.d: crates/sim/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-c63e7dcc7371c47d: crates/sim/src/bin/exp_fig6.rs

crates/sim/src/bin/exp_fig6.rs:
