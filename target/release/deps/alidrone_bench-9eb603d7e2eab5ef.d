/root/repo/target/release/deps/alidrone_bench-9eb603d7e2eab5ef.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/alidrone_bench-9eb603d7e2eab5ef: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
