/root/repo/target/release/deps/properties-1f2a765b0117c1dd.d: crates/crypto/tests/properties.rs

/root/repo/target/release/deps/properties-1f2a765b0117c1dd: crates/crypto/tests/properties.rs

crates/crypto/tests/properties.rs:
