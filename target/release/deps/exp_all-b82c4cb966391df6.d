/root/repo/target/release/deps/exp_all-b82c4cb966391df6.d: crates/sim/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-b82c4cb966391df6: crates/sim/src/bin/exp_all.rs

crates/sim/src/bin/exp_all.rs:
