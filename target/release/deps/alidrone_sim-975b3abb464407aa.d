/root/repo/target/release/deps/alidrone_sim-975b3abb464407aa.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/release/deps/libalidrone_sim-975b3abb464407aa.rlib: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

/root/repo/target/release/deps/libalidrone_sim-975b3abb464407aa.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/export.rs crates/sim/src/metrics.rs crates/sim/src/power.rs crates/sim/src/report.rs crates/sim/src/runner.rs crates/sim/src/scenarios.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/export.rs:
crates/sim/src/metrics.rs:
crates/sim/src/power.rs:
crates/sim/src/report.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenarios.rs:
