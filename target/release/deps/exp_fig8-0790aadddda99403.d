/root/repo/target/release/deps/exp_fig8-0790aadddda99403.d: crates/sim/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-0790aadddda99403: crates/sim/src/bin/exp_fig8.rs

crates/sim/src/bin/exp_fig8.rs:
