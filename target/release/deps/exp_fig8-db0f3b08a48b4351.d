/root/repo/target/release/deps/exp_fig8-db0f3b08a48b4351.d: crates/sim/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-db0f3b08a48b4351: crates/sim/src/bin/exp_fig8.rs

crates/sim/src/bin/exp_fig8.rs:
