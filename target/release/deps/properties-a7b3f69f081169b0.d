/root/repo/target/release/deps/properties-a7b3f69f081169b0.d: crates/tee/tests/properties.rs

/root/repo/target/release/deps/properties-a7b3f69f081169b0: crates/tee/tests/properties.rs

crates/tee/tests/properties.rs:
