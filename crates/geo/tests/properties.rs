//! Randomized tests for the geometry core.
//!
//! The most safety-critical invariant in AliDrone is *soundness of the
//! paper criterion*: whenever the boundary-distance test declares a sample
//! pair sufficient, the exact reachable-ellipse test must agree that the
//! drone could not have entered the zone. A violation would let the
//! auditor certify alibis for drones that could in fact have violated an
//! NFZ.
//!
//! Each property runs over a deterministic seeded stream of inputs
//! (no `proptest` — the offline build has no crates.io), so failures
//! reproduce exactly.

use alidrone_crypto::rng::{Rng, XorShift64};
use alidrone_geo::polygon::{smallest_enclosing_circle, PolygonZone};
use alidrone_geo::sufficiency::{pair_is_sufficient, pair_is_sufficient_exact};
use alidrone_geo::{
    Distance, Enu, GeoPoint, GpsSample, LocalTangentPlane, NoFlyZone, ReachableSet, Speed,
    Timestamp, FAA_MAX_SPEED,
};

const CASES: usize = 256;

const ORIGIN_LAT: f64 = 40.1;
const ORIGIN_LON: f64 = -88.2;

fn origin() -> GeoPoint {
    GeoPoint::new(ORIGIN_LAT, ORIGIN_LON).unwrap()
}

fn in_range(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.gen_f64() * (hi - lo)
}

/// A point within ~15 km of the origin, by bearing and distance.
fn arb_point(rng: &mut XorShift64) -> GeoPoint {
    let bearing = in_range(rng, 0.0, 360.0);
    let dist = in_range(rng, 0.0, 15_000.0);
    origin().destination(bearing, Distance::from_meters(dist))
}

fn arb_zone(rng: &mut XorShift64) -> NoFlyZone {
    let bearing = in_range(rng, 0.0, 360.0);
    let dist = in_range(rng, 0.0, 12_000.0);
    let r = in_range(rng, 1.0, 2_000.0);
    NoFlyZone::new(
        origin().destination(bearing, Distance::from_meters(dist)),
        Distance::from_meters(r),
    )
}

fn arb_pair(rng: &mut XorShift64) -> (GpsSample, GpsSample) {
    let p1 = arb_point(rng);
    let p2 = arb_point(rng);
    let dt = in_range(rng, 0.01, 120.0);
    let t0 = in_range(rng, 0.0, 10_000.0);
    (
        GpsSample::new(p1, Timestamp::from_secs(t0)),
        GpsSample::new(p2, Timestamp::from_secs(t0 + dt)),
    )
}

/// Paper criterion ⇒ exact criterion (soundness).
#[test]
fn paper_sufficiency_implies_exact_sufficiency() {
    let mut rng = XorShift64::seed_from_u64(101);
    for _ in 0..CASES {
        let (s1, s2) = arb_pair(&mut rng);
        let zone = arb_zone(&mut rng);
        if pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED) {
            assert!(
                pair_is_sufficient_exact(&s1, &s2, &zone, FAA_MAX_SPEED),
                "paper criterion accepted a pair the exact test rejects"
            );
        }
    }
}

/// Equivalently at the reachable-set level: `paper_sufficient` implies
/// the ellipse and the disk are disjoint.
#[test]
fn paper_criterion_sound_for_reachable_set() {
    let mut rng = XorShift64::seed_from_u64(102);
    for _ in 0..CASES {
        let (s1, s2) = arb_pair(&mut rng);
        let zone = arb_zone(&mut rng);
        if let Some(e) = ReachableSet::from_samples(&s1, &s2, FAA_MAX_SPEED) {
            if e.paper_sufficient(&zone) {
                assert!(!e.intersects_zone(&zone));
            }
        }
    }
}

/// A sample inside the zone can never be part of a sufficient pair.
#[test]
fn sample_inside_zone_never_sufficient() {
    let mut rng = XorShift64::seed_from_u64(103);
    for _ in 0..CASES {
        let (s1, s2) = arb_pair(&mut rng);
        let zone = arb_zone(&mut rng);
        // Caveat discovered by this very property: for a *physically
        // impossible* pair (positions farther apart than v_max allows) the
        // boundary-distance sum can exceed the budget even with a sample
        // inside the zone, so the criterion only means anything for
        // feasible pairs. The protocol layer rejects infeasible pairs and
        // in-zone samples before consulting sufficiency.
        if zone.contains(&s1.point()) || zone.contains(&s2.point()) {
            if let Some(e) = ReachableSet::from_samples(&s1, &s2, FAA_MAX_SPEED) {
                if !e.is_empty() {
                    assert!(!pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED));
                    assert!(e.intersects_zone(&zone));
                }
            }
        }
    }
}

/// Monotonicity in time gap: if a pair with gap `dt` is insufficient,
/// widening the gap (same positions) keeps it insufficient.
#[test]
fn widening_gap_preserves_insufficiency() {
    let mut rng = XorShift64::seed_from_u64(104);
    for _ in 0..CASES {
        let p1 = arb_point(&mut rng);
        let p2 = arb_point(&mut rng);
        let dt = in_range(&mut rng, 0.01, 60.0);
        let extra = in_range(&mut rng, 0.0, 60.0);
        let zone = arb_zone(&mut rng);
        let s1 = GpsSample::new(p1, Timestamp::from_secs(0.0));
        let s2 = GpsSample::new(p2, Timestamp::from_secs(dt));
        let s2_wide = GpsSample::new(p2, Timestamp::from_secs(dt + extra));
        if !pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED) {
            assert!(!pair_is_sufficient(&s1, &s2_wide, &zone, FAA_MAX_SPEED));
        }
    }
}

/// Monotonicity in speed: raising v_max can only shrink sufficiency.
#[test]
fn faster_vmax_preserves_insufficiency() {
    let mut rng = XorShift64::seed_from_u64(105);
    for _ in 0..CASES {
        let (s1, s2) = arb_pair(&mut rng);
        let zone = arb_zone(&mut rng);
        let factor = in_range(&mut rng, 1.0, 4.0);
        let v = Speed::from_mph(100.0);
        let v_fast = Speed::from_mph(100.0 * factor);
        if !pair_is_sufficient(&s1, &s2, &zone, v) {
            assert!(!pair_is_sufficient(&s1, &s2, &zone, v_fast));
        }
    }
}

/// Haversine distance satisfies the triangle inequality and symmetry.
#[test]
fn haversine_metric_properties() {
    let mut rng = XorShift64::seed_from_u64(106);
    for _ in 0..CASES {
        let a = arb_point(&mut rng);
        let b = arb_point(&mut rng);
        let c = arb_point(&mut rng);
        let ab = a.distance_to(&b).meters();
        let ba = b.distance_to(&a).meters();
        assert!((ab - ba).abs() < 1e-6);
        let ac = a.distance_to(&c).meters();
        let bc = b.distance_to(&c).meters();
        assert!(ab <= ac + bc + 1e-6);
    }
}

/// ENU projection round-trips and approximately preserves distance.
#[test]
fn projection_round_trip() {
    let mut rng = XorShift64::seed_from_u64(107);
    for _ in 0..CASES {
        let p = arb_point(&mut rng);
        let plane = LocalTangentPlane::new(origin());
        let rt = plane.unproject(&plane.project(&p));
        assert!(p.distance_to(&rt).meters() < 1e-6);
    }
}

#[test]
fn projection_distance_accuracy() {
    let mut rng = XorShift64::seed_from_u64(108);
    for _ in 0..CASES {
        let a = arb_point(&mut rng);
        let b = arb_point(&mut rng);
        let plane = LocalTangentPlane::new(origin());
        let planar = plane.project(&a).distance_to(&plane.project(&b)).meters();
        let sphere = a.distance_to(&b).meters();
        // Within 0.2 % at the 15 km scale.
        assert!(
            (planar - sphere).abs() <= 0.002 * sphere + 0.01,
            "planar {planar} vs sphere {sphere}"
        );
    }
}

/// GpsSample wire encoding round-trips exactly.
#[test]
fn sample_bytes_round_trip() {
    let mut rng = XorShift64::seed_from_u64(109);
    for _ in 0..CASES {
        let p = arb_point(&mut rng);
        let t = in_range(&mut rng, -1.0e6, 1.0e6);
        let s = GpsSample::new(p, Timestamp::from_secs(t));
        let rt = GpsSample::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, rt);
    }
}

/// The smallest enclosing circle encloses every input point and is
/// witnessed by at least one point on (or numerically near) the boundary.
#[test]
fn welzl_circle_encloses_all() {
    let mut rng = XorShift64::seed_from_u64(110);
    for _ in 0..CASES {
        let n = 1 + rng.gen_range_u64(59) as usize;
        let enu: Vec<Enu> = (0..n)
            .map(|_| {
                Enu::new(
                    in_range(&mut rng, -5_000.0, 5_000.0),
                    in_range(&mut rng, -5_000.0, 5_000.0),
                )
            })
            .collect();
        let c = smallest_enclosing_circle(&enu);
        for p in &enu {
            assert!(c.contains(p));
        }
        let max_d = enu
            .iter()
            .map(|p| c.center.distance_to(p).meters())
            .fold(0.0, f64::max);
        assert!((max_d - c.radius_m).abs() < 1e-5);
    }
}

/// Welzl minimality: no circle through the same point set centred at a
/// perturbed centre with the required radius can be smaller.
#[test]
fn welzl_circle_is_locally_minimal() {
    let mut rng = XorShift64::seed_from_u64(111);
    for _ in 0..CASES {
        let n = 3 + rng.gen_range_u64(27) as usize;
        let enu: Vec<Enu> = (0..n)
            .map(|_| {
                Enu::new(
                    in_range(&mut rng, -1_000.0, 1_000.0),
                    in_range(&mut rng, -1_000.0, 1_000.0),
                )
            })
            .collect();
        let de = in_range(&mut rng, -50.0, 50.0);
        let dn = in_range(&mut rng, -50.0, 50.0);
        let c = smallest_enclosing_circle(&enu);
        let alt_center = Enu::new(c.center.east + de, c.center.north + dn);
        let alt_radius = enu
            .iter()
            .map(|p| alt_center.distance_to(p).meters())
            .fold(0.0, f64::max);
        assert!(alt_radius >= c.radius_m - 1e-6);
    }
}

/// Polygon zones enclose their vertices.
#[test]
fn polygon_enclosing_zone_covers_vertices() {
    let mut rng = XorShift64::seed_from_u64(112);
    for _ in 0..CASES {
        let n = 3 + rng.gen_range_u64(9) as usize;
        let verts: Vec<GeoPoint> = (0..n)
            .map(|_| {
                origin().destination(
                    in_range(&mut rng, 0.0, 360.0),
                    Distance::from_meters(in_range(&mut rng, 1.0, 2_000.0)),
                )
            })
            .collect();
        let zone = PolygonZone::new(verts.clone()).unwrap().enclosing_zone();
        for v in &verts {
            assert!(zone.boundary_distance(v).meters() <= 1.0);
        }
    }
}

/// Whenever the route planner succeeds, its output satisfies the
/// clearance postcondition and preserves the endpoints.
#[test]
fn planner_output_always_clear() {
    use alidrone_geo::planner::{plan_route, route_is_clear};
    let mut rng = XorShift64::seed_from_u64(113);
    for _ in 0..CASES / 2 {
        let start = origin();
        let goal = start.destination(
            in_range(&mut rng, 0.0, 360.0),
            Distance::from_meters(in_range(&mut rng, 500.0, 5_000.0)),
        );
        let nzones = rng.gen_range_u64(8) as usize;
        let zones: alidrone_geo::ZoneSet = (0..nzones)
            .map(|_| {
                NoFlyZone::new(
                    start.destination(
                        in_range(&mut rng, 0.0, 360.0),
                        Distance::from_meters(in_range(&mut rng, 100.0, 3_000.0)),
                    ),
                    Distance::from_meters(in_range(&mut rng, 20.0, 250.0)),
                )
            })
            .collect();
        let margin = Distance::from_meters(10.0);
        if let Ok(route) = plan_route(start, goal, &zones, margin) {
            assert!(route.len() >= 2);
            assert_eq!(route[0], start);
            assert_eq!(*route.last().unwrap(), goal);
            assert!(route_is_clear(&route, &zones, margin));
        }
    }
}

/// Destination + distance_to are mutually consistent.
#[test]
fn destination_distance_consistency() {
    let mut rng = XorShift64::seed_from_u64(114);
    for _ in 0..CASES {
        let bearing = in_range(&mut rng, 0.0, 360.0);
        let d = in_range(&mut rng, 0.0, 20_000.0);
        let a = origin();
        let b = a.destination(bearing, Distance::from_meters(d));
        assert!((a.distance_to(&b).meters() - d).abs() < 0.01);
    }
}
