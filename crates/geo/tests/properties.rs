//! Property-based tests for the geometry core.
//!
//! The most safety-critical invariant in AliDrone is *soundness of the
//! paper criterion*: whenever the boundary-distance test declares a sample
//! pair sufficient, the exact reachable-ellipse test must agree that the
//! drone could not have entered the zone. A violation would let the
//! auditor certify alibis for drones that could in fact have violated an
//! NFZ.

use alidrone_geo::polygon::{smallest_enclosing_circle, PolygonZone};
use alidrone_geo::sufficiency::{pair_is_sufficient, pair_is_sufficient_exact};
use alidrone_geo::{
    Distance, Enu, GeoPoint, GpsSample, LocalTangentPlane, NoFlyZone, ReachableSet, Speed,
    Timestamp, FAA_MAX_SPEED,
};
use proptest::prelude::*;

const ORIGIN_LAT: f64 = 40.1;
const ORIGIN_LON: f64 = -88.2;

fn origin() -> GeoPoint {
    GeoPoint::new(ORIGIN_LAT, ORIGIN_LON).unwrap()
}

prop_compose! {
    /// A point within ~15 km of the origin, by bearing and distance.
    fn arb_point()(bearing in 0.0..360.0f64, dist in 0.0..15_000.0f64) -> GeoPoint {
        origin().destination(bearing, Distance::from_meters(dist))
    }
}

prop_compose! {
    fn arb_zone()(bearing in 0.0..360.0f64, dist in 0.0..12_000.0f64, r in 1.0..2_000.0f64) -> NoFlyZone {
        NoFlyZone::new(
            origin().destination(bearing, Distance::from_meters(dist)),
            Distance::from_meters(r),
        )
    }
}

prop_compose! {
    fn arb_pair()(p1 in arb_point(), p2 in arb_point(), dt in 0.01..120.0f64, t0 in 0.0..10_000.0f64)
        -> (GpsSample, GpsSample)
    {
        (
            GpsSample::new(p1, Timestamp::from_secs(t0)),
            GpsSample::new(p2, Timestamp::from_secs(t0 + dt)),
        )
    }
}

proptest! {
    /// Paper criterion ⇒ exact criterion (soundness).
    #[test]
    fn paper_sufficiency_implies_exact_sufficiency(
        (s1, s2) in arb_pair(),
        zone in arb_zone(),
    ) {
        if pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED) {
            prop_assert!(
                pair_is_sufficient_exact(&s1, &s2, &zone, FAA_MAX_SPEED),
                "paper criterion accepted a pair the exact test rejects"
            );
        }
    }

    /// Equivalently at the reachable-set level: `paper_sufficient` implies
    /// the ellipse and the disk are disjoint.
    #[test]
    fn paper_criterion_sound_for_reachable_set(
        (s1, s2) in arb_pair(),
        zone in arb_zone(),
    ) {
        if let Some(e) = ReachableSet::from_samples(&s1, &s2, FAA_MAX_SPEED) {
            if e.paper_sufficient(&zone) {
                prop_assert!(!e.intersects_zone(&zone));
            }
        }
    }

    /// A sample inside the zone can never be part of a sufficient pair.
    #[test]
    fn sample_inside_zone_never_sufficient(
        (s1, s2) in arb_pair(),
        zone in arb_zone(),
    ) {
        // Caveat discovered by this very property: for a *physically
        // impossible* pair (positions farther apart than v_max allows) the
        // boundary-distance sum can exceed the budget even with a sample
        // inside the zone, so the criterion only means anything for
        // feasible pairs. The protocol layer rejects infeasible pairs and
        // in-zone samples before consulting sufficiency.
        if zone.contains(&s1.point()) || zone.contains(&s2.point()) {
            if let Some(e) = ReachableSet::from_samples(&s1, &s2, FAA_MAX_SPEED) {
                if !e.is_empty() {
                    prop_assert!(!pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED));
                    prop_assert!(e.intersects_zone(&zone));
                }
            }
        }
    }

    /// Monotonicity in time gap: if a pair with gap `dt` is insufficient,
    /// widening the gap (same positions) keeps it insufficient.
    #[test]
    fn widening_gap_preserves_insufficiency(
        p1 in arb_point(), p2 in arb_point(),
        dt in 0.01..60.0f64, extra in 0.0..60.0f64,
        zone in arb_zone(),
    ) {
        let s1 = GpsSample::new(p1, Timestamp::from_secs(0.0));
        let s2 = GpsSample::new(p2, Timestamp::from_secs(dt));
        let s2_wide = GpsSample::new(p2, Timestamp::from_secs(dt + extra));
        if !pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED) {
            prop_assert!(!pair_is_sufficient(&s1, &s2_wide, &zone, FAA_MAX_SPEED));
        }
    }

    /// Monotonicity in speed: raising v_max can only shrink sufficiency.
    #[test]
    fn faster_vmax_preserves_insufficiency(
        (s1, s2) in arb_pair(),
        zone in arb_zone(),
        factor in 1.0..4.0f64,
    ) {
        let v = Speed::from_mph(100.0);
        let v_fast = Speed::from_mph(100.0 * factor);
        if !pair_is_sufficient(&s1, &s2, &zone, v) {
            prop_assert!(!pair_is_sufficient(&s1, &s2, &zone, v_fast));
        }
    }

    /// Haversine distance satisfies the triangle inequality and symmetry.
    #[test]
    fn haversine_metric_properties(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.distance_to(&b).meters();
        let ba = b.distance_to(&a).meters();
        prop_assert!((ab - ba).abs() < 1e-6);
        let ac = a.distance_to(&c).meters();
        let bc = b.distance_to(&c).meters();
        prop_assert!(ab <= ac + bc + 1e-6);
    }

    /// ENU projection round-trips and approximately preserves distance.
    #[test]
    fn projection_round_trip(p in arb_point()) {
        let plane = LocalTangentPlane::new(origin());
        let rt = plane.unproject(&plane.project(&p));
        prop_assert!(p.distance_to(&rt).meters() < 1e-6);
    }

    #[test]
    fn projection_distance_accuracy(a in arb_point(), b in arb_point()) {
        let plane = LocalTangentPlane::new(origin());
        let planar = plane.project(&a).distance_to(&plane.project(&b)).meters();
        let sphere = a.distance_to(&b).meters();
        // Within 0.2 % at the 15 km scale.
        prop_assert!((planar - sphere).abs() <= 0.002 * sphere + 0.01,
            "planar {planar} vs sphere {sphere}");
    }

    /// GpsSample wire encoding round-trips exactly.
    #[test]
    fn sample_bytes_round_trip(p in arb_point(), t in -1.0e6..1.0e6f64) {
        let s = GpsSample::new(p, Timestamp::from_secs(t));
        let rt = GpsSample::from_bytes(&s.to_bytes()).unwrap();
        prop_assert_eq!(s, rt);
    }

    /// The smallest enclosing circle encloses every input point and is
    /// witnessed by at least one point on (or numerically near) the boundary.
    #[test]
    fn welzl_circle_encloses_all(
        pts in prop::collection::vec((-5_000.0..5_000.0f64, -5_000.0..5_000.0f64), 1..60)
    ) {
        let enu: Vec<Enu> = pts.iter().map(|&(e, n)| Enu::new(e, n)).collect();
        let c = smallest_enclosing_circle(&enu);
        for p in &enu {
            prop_assert!(c.contains(p));
        }
        let max_d = enu.iter().map(|p| c.center.distance_to(p).meters()).fold(0.0, f64::max);
        prop_assert!((max_d - c.radius_m).abs() < 1e-5);
    }

    /// Welzl minimality: no circle through the same point set centred at a
    /// perturbed centre with the required radius can be smaller.
    #[test]
    fn welzl_circle_is_locally_minimal(
        pts in prop::collection::vec((-1_000.0..1_000.0f64, -1_000.0..1_000.0f64), 3..30),
        de in -50.0..50.0f64, dn in -50.0..50.0f64,
    ) {
        let enu: Vec<Enu> = pts.iter().map(|&(e, n)| Enu::new(e, n)).collect();
        let c = smallest_enclosing_circle(&enu);
        let alt_center = Enu::new(c.center.east + de, c.center.north + dn);
        let alt_radius = enu.iter().map(|p| alt_center.distance_to(p).meters()).fold(0.0, f64::max);
        prop_assert!(alt_radius >= c.radius_m - 1e-6);
    }

    /// Polygon zones enclose their vertices.
    #[test]
    fn polygon_enclosing_zone_covers_vertices(
        offs in prop::collection::vec((0.0..360.0f64, 1.0..2_000.0f64), 3..12)
    ) {
        let verts: Vec<GeoPoint> = offs
            .iter()
            .map(|&(b, d)| origin().destination(b, Distance::from_meters(d)))
            .collect();
        let zone = PolygonZone::new(verts.clone()).unwrap().enclosing_zone();
        for v in &verts {
            prop_assert!(zone.boundary_distance(v).meters() <= 1.0);
        }
    }

    /// Whenever the route planner succeeds, its output satisfies the
    /// clearance postcondition and preserves the endpoints.
    #[test]
    fn planner_output_always_clear(
        zone_specs in prop::collection::vec(
            (0.0..360.0f64, 100.0..3_000.0f64, 20.0..250.0f64), 0..8),
        goal_bearing in 0.0..360.0f64,
        goal_dist in 500.0..5_000.0f64,
    ) {
        use alidrone_geo::planner::{plan_route, route_is_clear};
        let start = origin();
        let goal = start.destination(goal_bearing, Distance::from_meters(goal_dist));
        let zones: alidrone_geo::ZoneSet = zone_specs
            .iter()
            .map(|&(b, d, r)| NoFlyZone::new(
                start.destination(b, Distance::from_meters(d)),
                Distance::from_meters(r),
            ))
            .collect();
        let margin = Distance::from_meters(10.0);
        if let Ok(route) = plan_route(start, goal, &zones, margin) {
            prop_assert!(route.len() >= 2);
            prop_assert_eq!(route[0], start);
            prop_assert_eq!(*route.last().unwrap(), goal);
            prop_assert!(route_is_clear(&route, &zones, margin));
        }
    }

    /// Destination + distance_to are mutually consistent.
    #[test]
    fn destination_distance_consistency(bearing in 0.0..360.0f64, d in 0.0..20_000.0f64) {
        let a = origin();
        let b = a.destination(bearing, Distance::from_meters(d));
        prop_assert!((a.distance_to(&b).meters() - d).abs() < 0.01);
    }
}
