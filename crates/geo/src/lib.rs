//! Geodesy and reachable-set geometry for the AliDrone proof-of-alibi system.
//!
//! This crate implements the physical model of the AliDrone paper
//! (ICDCS 2018, §III-A and §IV-C):
//!
//! * [`GeoPoint`] — a WGS-84 latitude/longitude pair, with haversine
//!   distances and destination-point computation.
//! * [`LocalTangentPlane`] — an east/north ("ENU") projection used for all
//!   planar geometry, valid at the tens-of-miles scale of drone flights.
//! * [`GpsSample`] — the paper's sample tuple `S = (lat, lon, t)`.
//! * [`NoFlyZone`] — a circular no-fly zone `z = (lat, lon, r)`.
//! * [`ReachableSet`] — the "possible traveling range" ellipse
//!   `E(S1, S2) = {p : d1 + d2 <= v_max (t2 - t1)}` with both the paper's
//!   conservative boundary-distance sufficiency criterion and an exact
//!   ellipse/disk intersection test.
//! * [`sufficiency`] — the alibi-sufficiency predicate of eq. (1) and the
//!   insufficiency counter used in the paper's Fig. 8(c).
//! * [`three_d`] — the §VII-B1 extension: ellipsoid reachable sets against
//!   cylindrical no-fly regions.
//! * [`polygon`] — the §VII-B2 extension: arbitrary polygonal zones reduced
//!   to their smallest enclosing circle (Welzl's algorithm).
//! * [`trajectory`] — waypoint routes with speed profiles, used to generate
//!   the synthetic field-study traces.
//!
//! # Example
//!
//! ```
//! use alidrone_geo::{GeoPoint, GpsSample, NoFlyZone, Timestamp, Speed, Distance};
//! use alidrone_geo::sufficiency::pair_is_sufficient;
//!
//! # fn main() -> Result<(), alidrone_geo::GeoError> {
//! // An airport no-fly zone with a 5-mile radius (FAA rule, §VI-A2).
//! let airport = GeoPoint::new(40.0, -88.0)?;
//! let zone = NoFlyZone::new(airport, Distance::from_miles(5.0));
//!
//! // Two GPS samples taken 10 s apart, both ~6 miles from the airport.
//! let p = airport.destination(90.0, Distance::from_miles(6.0));
//! let s1 = GpsSample::new(p, Timestamp::from_secs(0.0));
//! let s2 = GpsSample::new(p, Timestamp::from_secs(10.0));
//!
//! // At v_max = 100 mph the drone cannot have covered the 2-mile round
//! // trip to the zone boundary in 10 s, so the pair proves alibi.
//! assert!(pair_is_sufficient(&s1, &s2, &zone, Speed::from_mph(100.0)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod nfz;
mod point;
mod projection;
mod reachable;
mod sample;
mod units;

pub mod planner;
pub mod polygon;
pub mod sufficiency;
pub mod three_d;
pub mod trajectory;

pub use error::GeoError;
pub use nfz::{NoFlyZone, ZoneSet};
pub use point::GeoPoint;
pub use projection::{Enu, LocalTangentPlane};
pub use reachable::ReachableSet;
pub use sample::{check_monotonic, GpsSample};
pub use units::{Distance, Duration, Speed, Timestamp, EARTH_RADIUS_M, FAA_MAX_SPEED};
