//! No-fly zones — the paper's `z = (lat, lon, r)`.

use std::fmt;

use crate::units::Distance;
use crate::{GeoError, GeoPoint};

/// A circular no-fly zone (paper §III-A): a centre point and a radius.
///
/// A drone whose position is ever inside the circle has violated the zone
/// owner's privacy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoFlyZone {
    center: GeoPoint,
    radius: Distance,
}

impl NoFlyZone {
    /// Creates a zone centred at `center` with the given `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite; use
    /// [`NoFlyZone::try_new`] for fallible construction.
    pub fn new(center: GeoPoint, radius: Distance) -> Self {
        Self::try_new(center, radius).expect("radius must be positive and finite")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::NonPositiveDistance`] when `radius <= 0` or is
    /// not finite.
    pub fn try_new(center: GeoPoint, radius: Distance) -> Result<Self, GeoError> {
        if radius.meters() <= 0.0 || !radius.is_finite() {
            return Err(GeoError::NonPositiveDistance(radius.meters()));
        }
        Ok(NoFlyZone { center, radius })
    }

    /// The zone centre.
    pub fn center(&self) -> GeoPoint {
        self.center
    }

    /// The zone radius.
    pub fn radius(&self) -> Distance {
        self.radius
    }

    /// Signed distance from `p` to the zone *boundary*: positive outside,
    /// zero on the boundary, negative inside.
    ///
    /// This is the paper's `D_i = dist(S_i, center) − r`.
    pub fn boundary_distance(&self, p: &GeoPoint) -> Distance {
        self.center.distance_to(p) - self.radius
    }

    /// `true` if `p` lies strictly inside the zone (a privacy violation).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.boundary_distance(p).meters() < 0.0
    }
}

impl fmt::Display for NoFlyZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NFZ[{} r={}]", self.center, self.radius)
    }
}

/// An ordered collection of no-fly zones, e.g. the auditor's answer to a
/// zone query (paper step 2–3).
///
/// Only the *nearest* zone governs the adaptive sampling rate (paper
/// §IV-C3: "we only need to prove PoA sufficiency for the closest zone"),
/// so the key operation is [`ZoneSet::nearest`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ZoneSet {
    zones: Vec<NoFlyZone>,
}

impl ZoneSet {
    /// Creates an empty zone set.
    pub fn new() -> Self {
        ZoneSet::default()
    }

    /// Adds a zone to the set.
    pub fn push(&mut self, zone: NoFlyZone) {
        self.zones.push(zone);
    }

    /// Number of zones in the set.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates over the zones.
    pub fn iter(&self) -> std::slice::Iter<'_, NoFlyZone> {
        self.zones.iter()
    }

    /// The zones as a slice.
    pub fn as_slice(&self) -> &[NoFlyZone] {
        &self.zones
    }

    /// The zone whose *boundary* is nearest to `p` (paper's
    /// `FindNearestZone`), or `None` for an empty set.
    ///
    /// Nearness is by signed boundary distance, so a zone that `p` is
    /// inside (negative distance) always wins.
    pub fn nearest(&self, p: &GeoPoint) -> Option<&NoFlyZone> {
        self.zones.iter().min_by(|a, b| {
            a.boundary_distance(p)
                .meters()
                .total_cmp(&b.boundary_distance(p).meters())
        })
    }

    /// Signed distance from `p` to the nearest zone boundary, or `None`
    /// for an empty set. This is the quantity plotted in Fig. 8(a).
    pub fn nearest_boundary_distance(&self, p: &GeoPoint) -> Option<Distance> {
        self.nearest(p).map(|z| z.boundary_distance(p))
    }

    /// `true` if `p` is inside any zone.
    pub fn any_contains(&self, p: &GeoPoint) -> bool {
        self.zones.iter().any(|z| z.contains(p))
    }

    /// The zones whose centres fall inside the axis-aligned rectangle with
    /// corners `(c1, c2)` — the auditor's answer to a zone query over a
    /// "rectangular navigation area" (paper step 2–3).
    pub fn within_rect(&self, c1: &GeoPoint, c2: &GeoPoint) -> ZoneSet {
        let (lat_lo, lat_hi) = ord(c1.lat_deg(), c2.lat_deg());
        let (lon_lo, lon_hi) = ord(c1.lon_deg(), c2.lon_deg());
        ZoneSet {
            zones: self
                .zones
                .iter()
                .filter(|z| {
                    let c = z.center();
                    c.lat_deg() >= lat_lo
                        && c.lat_deg() <= lat_hi
                        && c.lon_deg() >= lon_lo
                        && c.lon_deg() <= lon_hi
                })
                .copied()
                .collect(),
        }
    }
}

fn ord(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FromIterator<NoFlyZone> for ZoneSet {
    fn from_iter<I: IntoIterator<Item = NoFlyZone>>(iter: I) -> Self {
        ZoneSet {
            zones: iter.into_iter().collect(),
        }
    }
}

impl Extend<NoFlyZone> for ZoneSet {
    fn extend<I: IntoIterator<Item = NoFlyZone>>(&mut self, iter: I) {
        self.zones.extend(iter);
    }
}

impl<'a> IntoIterator for &'a ZoneSet {
    type Item = &'a NoFlyZone;
    type IntoIter = std::slice::Iter<'a, NoFlyZone>;
    fn into_iter(self) -> Self::IntoIter {
        self.zones.iter()
    }
}

impl IntoIterator for ZoneSet {
    type Item = NoFlyZone;
    type IntoIter = std::vec::IntoIter<NoFlyZone>;
    fn into_iter(self) -> Self::IntoIter {
        self.zones.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn zone(lat: f64, lon: f64, radius_m: f64) -> NoFlyZone {
        NoFlyZone::new(p(lat, lon), Distance::from_meters(radius_m))
    }

    #[test]
    fn rejects_non_positive_radius() {
        assert!(NoFlyZone::try_new(p(0.0, 0.0), Distance::from_meters(0.0)).is_err());
        assert!(NoFlyZone::try_new(p(0.0, 0.0), Distance::from_meters(-5.0)).is_err());
        assert!(NoFlyZone::try_new(p(0.0, 0.0), Distance::from_meters(f64::NAN)).is_err());
    }

    #[test]
    fn boundary_distance_signs() {
        let z = zone(40.0, -88.0, 1_000.0);
        let inside = p(40.0, -88.0);
        assert!(z.boundary_distance(&inside).meters() < 0.0);
        assert!(z.contains(&inside));
        let outside = z.center().destination(90.0, Distance::from_meters(2_000.0));
        let d = z.boundary_distance(&outside);
        assert!((d.meters() - 1_000.0).abs() < 1.0, "got {}", d.meters());
        assert!(!z.contains(&outside));
    }

    #[test]
    fn point_on_boundary_not_contained() {
        let z = zone(40.0, -88.0, 1_000.0);
        let on = z.center().destination(0.0, Distance::from_meters(1_000.0));
        // Within numerical tolerance the boundary itself is not "inside".
        assert!(z.boundary_distance(&on).meters().abs() < 0.01);
    }

    #[test]
    fn nearest_picks_closest_boundary() {
        let mut zs = ZoneSet::new();
        zs.push(zone(40.0, -88.0, 100.0)); // far
        zs.push(zone(40.01, -88.0, 100.0)); // near
        let q = p(40.012, -88.0);
        let n = zs.nearest(&q).unwrap();
        assert!((n.center().lat_deg() - 40.01).abs() < 1e-12);
    }

    #[test]
    fn nearest_prefers_containing_zone() {
        let mut zs = ZoneSet::new();
        // A big zone containing q, and a small zone whose boundary is closer
        // in absolute terms but q is outside it.
        zs.push(zone(40.0, -88.0, 5_000.0));
        zs.push(zone(40.05, -88.0, 10.0));
        let q = p(40.0, -88.0);
        let n = zs.nearest(&q).unwrap();
        assert!(n.contains(&q));
    }

    #[test]
    fn nearest_of_empty_is_none() {
        let zs = ZoneSet::new();
        assert!(zs.nearest(&p(0.0, 0.0)).is_none());
        assert!(zs.nearest_boundary_distance(&p(0.0, 0.0)).is_none());
    }

    #[test]
    fn within_rect_filters() {
        let zs: ZoneSet = [
            zone(40.0, -88.0, 10.0),
            zone(41.0, -88.0, 10.0),
            zone(40.5, -87.0, 10.0),
        ]
        .into_iter()
        .collect();
        // Rectangle corners in either order.
        let r = zs.within_rect(&p(40.9, -88.5), &p(39.9, -87.5));
        assert_eq!(r.len(), 1);
        assert!((r.as_slice()[0].center().lat_deg() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn any_contains() {
        let zs: ZoneSet = [zone(40.0, -88.0, 1_000.0)].into_iter().collect();
        assert!(zs.any_contains(&p(40.0, -88.0)));
        assert!(!zs.any_contains(&p(41.0, -88.0)));
    }

    #[test]
    fn collect_and_extend() {
        let mut zs: ZoneSet = std::iter::once(zone(40.0, -88.0, 1.0)).collect();
        zs.extend([zone(41.0, -88.0, 1.0)]);
        assert_eq!(zs.len(), 2);
        assert_eq!(zs.iter().count(), 2);
        assert_eq!((&zs).into_iter().count(), 2);
        assert_eq!(zs.clone().into_iter().count(), 2);
    }
}
