//! Waypoint trajectories with speed profiles.
//!
//! The field studies (paper §VI-A) replay recorded vehicle traces into the
//! GPS sampler. This module generates equivalent traces synthetically: a
//! trajectory is a sequence of legs, each travelled at a constant speed
//! (plus optional dwell pauses), and can be queried for the position at any
//! elapsed time or discretised into a stream of [`GpsSample`]s.

use std::fmt;

use crate::units::{Distance, Duration, Speed, Timestamp};
use crate::{GeoError, GeoPoint, GpsSample};

#[derive(Debug, Clone, Copy, PartialEq)]
struct Leg {
    from: GeoPoint,
    to: GeoPoint,
    start: Duration,
    duration: Duration,
}

/// A piecewise-constant-speed path through a sequence of waypoints.
///
/// Build one with [`TrajectoryBuilder`]:
///
/// ```
/// use alidrone_geo::{GeoPoint, Speed, Duration};
/// use alidrone_geo::trajectory::TrajectoryBuilder;
///
/// # fn main() -> Result<(), alidrone_geo::GeoError> {
/// let a = GeoPoint::new(40.0, -88.0)?;
/// let b = a.destination(90.0, alidrone_geo::Distance::from_km(1.0));
/// let traj = TrajectoryBuilder::start_at(a)
///     .travel_to(b, Speed::from_mph(30.0))
///     .pause(Duration::from_secs(10.0))
///     .build()?;
/// assert!(traj.total_duration().secs() > 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    legs: Vec<Leg>,
    total: Duration,
}

impl Trajectory {
    /// Total elapsed time from start to finish.
    pub fn total_duration(&self) -> Duration {
        self.total
    }

    /// Total path length (pauses contribute zero distance).
    pub fn total_distance(&self) -> Distance {
        self.legs
            .iter()
            .fold(Distance::ZERO, |acc, l| acc + l.from.distance_to(&l.to))
    }

    /// The starting position.
    pub fn start_point(&self) -> GeoPoint {
        self.legs[0].from
    }

    /// The final position.
    pub fn end_point(&self) -> GeoPoint {
        self.legs[self.legs.len() - 1].to
    }

    /// The position at elapsed time `t`, clamped to the endpoints outside
    /// `[0, total_duration]`.
    pub fn position_at(&self, t: Duration) -> GeoPoint {
        if t.secs() <= 0.0 {
            return self.start_point();
        }
        for leg in &self.legs {
            let local = t.secs() - leg.start.secs();
            if local < 0.0 {
                // Shouldn't happen (legs sorted), but be robust.
                return leg.from;
            }
            if local <= leg.duration.secs() {
                if leg.duration.secs() == 0.0 {
                    return leg.to;
                }
                return leg.from.lerp(&leg.to, local / leg.duration.secs());
            }
        }
        self.end_point()
    }

    /// Discretises the trajectory into samples every `dt`, starting at
    /// `t0`. The final position is always included as the last sample.
    pub fn sample_every(&self, dt: Duration, t0: Timestamp) -> Vec<GpsSample> {
        let mut out = Vec::new();
        let total = self.total.secs();
        let step = dt.secs().max(1e-9);
        // Integer step indexing avoids float-accumulation drift producing
        // an extra near-duplicate sample just before the endpoint.
        let n = (total / step).ceil() as u64;
        for k in 0..n {
            let t = k as f64 * step;
            // Stop when within a hair of the endpoint (which is always
            // appended below) — floating-point leg durations can put
            // `total` a few ulps past the final regular step.
            if t >= total - step * 1e-6 {
                break;
            }
            out.push(GpsSample::new(
                self.position_at(Duration::from_secs(t)),
                t0 + Duration::from_secs(t),
            ));
        }
        out.push(GpsSample::new(self.end_point(), t0 + self.total));
        out
    }
}

impl fmt::Display for Trajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trajectory[{} legs, {} over {}]",
            self.legs.len(),
            self.total_distance(),
            self.total
        )
    }
}

/// Builder for [`Trajectory`] (non-consuming terminal would not help here;
/// the builder is cheap and `build` validates).
#[derive(Debug, Clone)]
pub struct TrajectoryBuilder {
    current: GeoPoint,
    legs: Vec<Leg>,
    elapsed: Duration,
}

impl TrajectoryBuilder {
    /// Begins a trajectory at `start`.
    pub fn start_at(start: GeoPoint) -> Self {
        TrajectoryBuilder {
            current: start,
            legs: Vec::new(),
            elapsed: Duration::ZERO,
        }
    }

    /// Travels in a straight line to `to` at constant `speed`.
    ///
    /// A non-positive speed is caught at [`build`](Self::build) time.
    pub fn travel_to(mut self, to: GeoPoint, speed: Speed) -> Self {
        let d = self.current.distance_to(&to);
        let duration = if speed.mps() > 0.0 {
            Duration::from_secs(d.meters() / speed.mps())
        } else {
            Duration::from_secs(f64::NAN) // flagged in build()
        };
        self.legs.push(Leg {
            from: self.current,
            to,
            start: self.elapsed,
            duration,
        });
        self.elapsed = self.elapsed + duration;
        self.current = to;
        self
    }

    /// Dwells in place for `duration`.
    pub fn pause(mut self, duration: Duration) -> Self {
        self.legs.push(Leg {
            from: self.current,
            to: self.current,
            start: self.elapsed,
            duration,
        });
        self.elapsed = self.elapsed + duration;
        self
    }

    /// Finalises the trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::TooFewWaypoints`] when no leg was added, and
    /// [`GeoError::NonPositiveSpeed`] when any travel leg used a
    /// non-positive speed.
    pub fn build(self) -> Result<Trajectory, GeoError> {
        if self.legs.is_empty() {
            return Err(GeoError::TooFewWaypoints(1));
        }
        if self.legs.iter().any(|l| !l.duration.secs().is_finite()) {
            return Err(GeoError::NonPositiveSpeed(0.0));
        }
        Ok(Trajectory {
            legs: self.legs,
            total: self.elapsed,
        })
    }
}

/// A 3-D trajectory: a plan-view [`Trajectory`] plus a piecewise-linear
/// altitude profile over the same timeline (§VII-B1 flights).
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory3d {
    plan: Trajectory,
    /// `(elapsed_secs, altitude_m)` knots, strictly increasing in time,
    /// covering `[0, total_duration]`.
    alt_knots: Vec<(f64, f64)>,
}

impl Trajectory3d {
    /// Wraps a plan-view trajectory with an altitude profile given as
    /// `(elapsed_secs, altitude)` knots. Knots are sorted; the profile
    /// is clamped to its first/last knot outside their range.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::TooFewWaypoints`] when fewer than one knot is
    /// supplied, and [`GeoError::NonPositiveDistance`] for a negative
    /// altitude.
    pub fn new(plan: Trajectory, mut alt_knots: Vec<(f64, f64)>) -> Result<Self, GeoError> {
        if alt_knots.is_empty() {
            return Err(GeoError::TooFewWaypoints(0));
        }
        if let Some(&(_, a)) = alt_knots.iter().find(|&&(_, a)| a < 0.0 || !a.is_finite()) {
            return Err(GeoError::NonPositiveDistance(a));
        }
        alt_knots.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(Trajectory3d { plan, alt_knots })
    }

    /// A constant-altitude 3-D trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::NonPositiveDistance`] for a negative altitude.
    pub fn level(plan: Trajectory, altitude: Distance) -> Result<Self, GeoError> {
        Self::new(plan, vec![(0.0, altitude.meters())])
    }

    /// The plan-view trajectory.
    pub fn plan(&self) -> &Trajectory {
        &self.plan
    }

    /// Total elapsed time (that of the plan view).
    pub fn total_duration(&self) -> Duration {
        self.plan.total_duration()
    }

    /// Position and altitude at elapsed time `t`.
    pub fn position_at(&self, t: Duration) -> (GeoPoint, Distance) {
        (self.plan.position_at(t), self.altitude_at(t))
    }

    /// Altitude at elapsed time `t` (linear between knots, clamped
    /// outside).
    pub fn altitude_at(&self, t: Duration) -> Distance {
        let ts = t.secs();
        let knots = &self.alt_knots;
        if ts <= knots[0].0 {
            return Distance::from_meters(knots[0].1);
        }
        for w in knots.windows(2) {
            if ts <= w[1].0 {
                let f = (ts - w[0].0) / (w[1].0 - w[0].0).max(1e-12);
                return Distance::from_meters(w[0].1 + (w[1].1 - w[0].1) * f);
            }
        }
        Distance::from_meters(knots[knots.len() - 1].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn empty_builder_errors() {
        assert!(matches!(
            TrajectoryBuilder::start_at(p(40.0, -88.0)).build(),
            Err(GeoError::TooFewWaypoints(1))
        ));
    }

    #[test]
    fn zero_speed_errors() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_km(1.0));
        assert!(matches!(
            TrajectoryBuilder::start_at(a)
                .travel_to(b, Speed::from_mps(0.0))
                .build(),
            Err(GeoError::NonPositiveSpeed(_))
        ));
    }

    #[test]
    fn duration_and_distance() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(1_000.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        assert!((traj.total_duration().secs() - 100.0).abs() < 1e-6);
        assert!((traj.total_distance().meters() - 1_000.0).abs() < 0.01);
    }

    #[test]
    fn position_interpolates() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(1_000.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        let mid = traj.position_at(Duration::from_secs(50.0));
        let d = a.distance_to(&mid);
        assert!((d.meters() - 500.0).abs() < 1.0, "got {}", d.meters());
    }

    #[test]
    fn position_clamps_to_endpoints() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(100.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        assert_eq!(traj.position_at(Duration::from_secs(-5.0)), a);
        assert_eq!(traj.position_at(Duration::from_secs(1e9)), b);
    }

    #[test]
    fn pause_holds_position() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(100.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .pause(Duration::from_secs(20.0))
            .build()
            .unwrap();
        assert!((traj.total_duration().secs() - 30.0).abs() < 1e-6);
        let during_pause = traj.position_at(Duration::from_secs(15.0));
        assert!(b.distance_to(&during_pause).meters() < 0.01);
        // Pause adds no distance.
        assert!((traj.total_distance().meters() - 100.0).abs() < 0.01);
    }

    #[test]
    fn multi_leg_path() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(500.0));
        let c = b.destination(0.0, Distance::from_meters(500.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .travel_to(c, Speed::from_mps(25.0))
            .build()
            .unwrap();
        assert!((traj.total_duration().secs() - 70.0).abs() < 0.01);
        assert!((traj.total_distance().meters() - 1_000.0).abs() < 0.1);
        assert_eq!(traj.end_point(), c);
    }

    #[test]
    fn trajectory3d_level_altitude() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(100.0));
        let plan = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        let t3 = Trajectory3d::level(plan, Distance::from_meters(120.0)).unwrap();
        for t in [0.0, 3.0, 10.0, 100.0] {
            let (_, alt) = t3.position_at(Duration::from_secs(t));
            assert!((alt.meters() - 120.0).abs() < 1e-9);
        }
    }

    #[test]
    fn trajectory3d_climb_profile_interpolates() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(1_000.0));
        let plan = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap(); // 100 s
                       // Climb 0→100 m in 20 s, cruise, descend to 0 in the last 20 s.
        let t3 = Trajectory3d::new(
            plan,
            vec![(0.0, 0.0), (20.0, 100.0), (80.0, 100.0), (100.0, 0.0)],
        )
        .unwrap();
        assert!((t3.altitude_at(Duration::from_secs(10.0)).meters() - 50.0).abs() < 1e-9);
        assert!((t3.altitude_at(Duration::from_secs(50.0)).meters() - 100.0).abs() < 1e-9);
        assert!((t3.altitude_at(Duration::from_secs(90.0)).meters() - 50.0).abs() < 1e-9);
        // Clamped outside the profile.
        assert!((t3.altitude_at(Duration::from_secs(500.0)).meters()).abs() < 1e-9);
    }

    #[test]
    fn trajectory3d_rejects_bad_profiles() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(100.0));
        let plan = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        assert!(Trajectory3d::new(plan.clone(), vec![]).is_err());
        assert!(Trajectory3d::new(plan, vec![(0.0, -5.0)]).is_err());
    }

    #[test]
    fn sample_every_covers_whole_trace() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_meters(100.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        let samples = traj.sample_every(Duration::from_secs(1.0), Timestamp::from_secs(100.0));
        // 10 s of travel at 1 Hz: samples at t = 0..9 plus the endpoint.
        assert_eq!(samples.len(), 11);
        assert!((samples[0].time().secs() - 100.0).abs() < 1e-9);
        assert!((samples.last().unwrap().time().secs() - 110.0).abs() < 1e-6);
        assert_eq!(samples.last().unwrap().point(), b);
        // Monotonic timestamps.
        assert!(crate::sample::check_monotonic(&samples).is_ok());
    }
}
