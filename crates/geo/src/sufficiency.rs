//! Alibi sufficiency — the paper's eq. (1) and the Fig. 8(c) counter.
//!
//! An alibi `{S0, …, Sn}` is *sufficient* against a zone set `Z` when every
//! consecutive sample pair's possible-traveling-range excludes every zone:
//!
//! ```text
//! E(S_i, S_{i+1}) ∩ (∪_{z ∈ Z} z) = ∅   for all i < n          (eq. 1)
//! ```
//!
//! The per-pair test used throughout the paper (and by the field-study
//! counter of Fig. 8(c)) is the boundary-distance criterion: pair
//! `(S_i, S_{i+1})` is *insufficient* when
//!
//! ```text
//! min_j ( D_{i,j} + D_{i+1,j} ) < v_max (t_{i+1} − t_i)
//! ```
//!
//! where `D_{i,j}` is the distance from sample `i` to the boundary of zone
//! `j`. This module implements both the paper criterion and an exact
//! variant built on [`ReachableSet::intersects_zone`].

use crate::units::{Speed, Timestamp};
use crate::{GpsSample, NoFlyZone, ReachableSet, ZoneSet};

/// A declared GPS outage: a window during which the sampler attests it
/// had no usable fix (degraded-mode operation). Declared gaps *weaken*
/// the alibi instead of leaving an unmarked hole in the sample stream:
/// sample pairs overlapping a gap get a larger travel budget, modelling
/// the extra timestamp uncertainty of the outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapWindow {
    /// When the outage began.
    pub start: Timestamp,
    /// When a fix was next available.
    pub end: Timestamp,
}

impl GapWindow {
    /// Seconds of overlap between this gap and the interval `[t1, t2]`.
    pub fn overlap_secs(&self, t1: Timestamp, t2: Timestamp) -> f64 {
        let lo = self.start.secs().max(t1.secs());
        let hi = self.end.secs().min(t2.secs());
        (hi - lo).max(0.0)
    }

    /// `true` when `t` lies strictly inside the gap.
    pub fn contains_strict(&self, t: Timestamp) -> bool {
        self.start.secs() < t.secs() && t.secs() < self.end.secs()
    }
}

/// Paper criterion for a single pair against a single zone:
/// `D1 + D2 > v_max (t2 − t1)`.
///
/// Returns `false` (insufficient) when `s2` does not strictly follow `s1`.
pub fn pair_is_sufficient(s1: &GpsSample, s2: &GpsSample, zone: &NoFlyZone, v_max: Speed) -> bool {
    let dt = s2.time().since(s1.time());
    if dt.secs() <= 0.0 {
        return false;
    }
    let d1 = zone.boundary_distance(&s1.point()).meters();
    let d2 = zone.boundary_distance(&s2.point()).meters();
    d1 + d2 > v_max.mps() * dt.secs()
}

/// Exact per-pair test: the reachable ellipse does not intersect the zone.
///
/// Strictly weaker rejections than [`pair_is_sufficient`]: every pair the
/// paper criterion accepts, this accepts too (soundness), and it
/// additionally accepts pairs whose ellipse misses the disk even though the
/// boundary-distance sum is within budget.
pub fn pair_is_sufficient_exact(
    s1: &GpsSample,
    s2: &GpsSample,
    zone: &NoFlyZone,
    v_max: Speed,
) -> bool {
    match ReachableSet::from_samples(s1, s2, v_max) {
        // An empty reachable set means the pair itself is impossible; the
        // verifier flags that separately, but as alibi evidence it cannot
        // prove presence in the zone.
        Some(e) => !e.intersects_zone(&zone.clone()),
        None => false,
    }
}

/// Which per-pair test to apply.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// The paper's boundary-distance criterion (conservative, O(1) per
    /// zone). This is what the prototype and the Fig. 8(c) counter use.
    #[default]
    Paper,
    /// Exact ellipse/disk intersection.
    Exact,
}

/// The outcome for one consecutive sample pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairVerdict {
    /// Index `i` of the first sample of the pair.
    pub index: usize,
    /// Whether the pair proves alibi against every zone.
    pub sufficient: bool,
    /// Index (into the zone set) of the tightest zone — the zone with the
    /// smallest `D1 + D2 − v_max·dt` margin — if any zones exist.
    pub tightest_zone: Option<usize>,
    /// The margin `min_j (D1 + D2) − v_max·dt` in meters; negative when
    /// insufficient.
    pub margin_m: f64,
    /// Seconds of this pair's interval covered by declared GPS gaps
    /// (0.0 when no gaps were declared). A positive overlap inflates the
    /// travel budget by `v_max · overlap`, shrinking the margin.
    pub gap_overlap_secs: f64,
}

/// The outcome of checking a whole alibi against a zone set.
#[derive(Debug, Clone, PartialEq)]
pub struct SufficiencyReport {
    /// Per-pair verdicts, one per consecutive pair.
    pub pairs: Vec<PairVerdict>,
    /// Number of insufficient pairs (the Fig. 8(c) count).
    pub insufficient_count: usize,
}

impl SufficiencyReport {
    /// `true` when every pair was sufficient (eq. 1 holds).
    pub fn is_sufficient(&self) -> bool {
        self.insufficient_count == 0
    }

    /// Indices of the first samples of insufficient pairs.
    pub fn insufficient_indices(&self) -> Vec<usize> {
        self.pairs
            .iter()
            .filter(|p| !p.sufficient)
            .map(|p| p.index)
            .collect()
    }
}

/// Checks a full alibi trace against a zone set (paper eq. 1).
///
/// With an empty zone set every pair is trivially sufficient. A trace with
/// fewer than two samples has no pairs and is trivially sufficient — the
/// protocol layer separately requires coverage of the whole flight window.
pub fn check_alibi(
    samples: &[GpsSample],
    zones: &ZoneSet,
    v_max: Speed,
    criterion: Criterion,
) -> SufficiencyReport {
    check_alibi_with_gaps(samples, zones, v_max, criterion, &[])
}

/// Gap-aware variant of [`check_alibi`] for degraded-mode GPS: each
/// declared [`GapWindow`] overlapping a pair's interval inflates that
/// pair's travel budget to `v_max · (dt + overlap)`.
///
/// The inflation models the worst case the auditor must assume during an
/// attested outage: the drone's position was unobserved for `overlap`
/// extra seconds, so the reachable range between the bracketing samples
/// is wider. Missing samples therefore *weaken* the alibi — a gap can
/// flip a pair from sufficient to insufficient but never the reverse.
/// With an empty `gaps` slice this is exactly [`check_alibi`].
pub fn check_alibi_with_gaps(
    samples: &[GpsSample],
    zones: &ZoneSet,
    v_max: Speed,
    criterion: Criterion,
    gaps: &[GapWindow],
) -> SufficiencyReport {
    let mut pairs = Vec::with_capacity(samples.len().saturating_sub(1));
    let mut insufficient = 0;
    for (i, w) in samples.windows(2).enumerate() {
        let (s1, s2) = (&w[0], &w[1]);
        let dt = s2.time().since(s1.time());
        let overlap: f64 = gaps
            .iter()
            .map(|g| g.overlap_secs(s1.time(), s2.time()))
            .sum();
        let budget = v_max.mps() * (dt.secs() + overlap);

        let mut tightest: Option<usize> = None;
        let mut min_margin = f64::INFINITY;
        let mut sufficient = true;
        for (j, z) in zones.iter().enumerate() {
            let d1 = z.boundary_distance(&s1.point()).meters();
            let d2 = z.boundary_distance(&s2.point()).meters();
            let margin = d1 + d2 - budget;
            if margin < min_margin {
                min_margin = margin;
                tightest = Some(j);
            }
            let pair_ok = if overlap > 0.0 {
                // During an attested outage the exact reachable-ellipse
                // geometry no longer applies (the timestamps themselves
                // are uncertain), so both criteria fall back to the
                // inflated boundary-distance test.
                dt.secs() > 0.0 && margin > 0.0
            } else {
                match criterion {
                    Criterion::Paper => pair_is_sufficient(s1, s2, z, v_max),
                    Criterion::Exact => pair_is_sufficient_exact(s1, s2, z, v_max),
                }
            };
            if !pair_ok {
                sufficient = false;
            }
        }
        if !sufficient {
            insufficient += 1;
        }
        pairs.push(PairVerdict {
            index: i,
            sufficient,
            tightest_zone: tightest,
            margin_m: if min_margin.is_finite() {
                min_margin
            } else {
                f64::INFINITY
            },
            gap_overlap_secs: overlap,
        });
    }
    SufficiencyReport {
        pairs,
        insufficient_count: insufficient,
    }
}

/// The Fig. 8(c) counter: number of consecutive pairs with
/// `min_j (d_{i,j} + d_{i+1,j}) < v_max (t_{i+1} − t_i)`.
pub fn count_insufficient_pairs(samples: &[GpsSample], zones: &ZoneSet, v_max: Speed) -> usize {
    check_alibi(samples, zones, v_max, Criterion::Paper).insufficient_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Distance, Timestamp, FAA_MAX_SPEED};
    use crate::GeoPoint;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    /// Trace moving east at `speed_mps`, one sample per `dt` seconds.
    fn east_trace(origin: GeoPoint, n: usize, dt: f64, speed_mps: f64) -> Vec<GpsSample> {
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                GpsSample::new(
                    origin.destination(90.0, Distance::from_meters(speed_mps * t)),
                    Timestamp::from_secs(t),
                )
            })
            .collect()
    }

    #[test]
    fn distant_zone_sufficient_at_low_rate() {
        let o = p(40.0, -88.0);
        let trace = east_trace(o, 10, 1.0, 20.0);
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_km(5.0)),
            Distance::from_meters(100.0),
        );
        let zones: ZoneSet = std::iter::once(zone).collect();
        let rep = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper);
        assert!(rep.is_sufficient());
        assert_eq!(rep.pairs.len(), 9);
        assert!(rep.pairs.iter().all(|pv| pv.margin_m > 0.0));
    }

    #[test]
    fn nearby_zone_with_sparse_samples_is_insufficient() {
        let o = p(40.0, -88.0);
        // Samples 60 s apart: budget = 2682 m, zone only 200 m away.
        let trace = east_trace(o, 3, 60.0, 5.0);
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_meters(250.0)),
            Distance::from_meters(50.0),
        );
        let zones: ZoneSet = std::iter::once(zone).collect();
        let rep = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper);
        assert!(!rep.is_sufficient());
        assert_eq!(rep.insufficient_count, 2);
        assert_eq!(rep.insufficient_indices(), vec![0, 1]);
    }

    #[test]
    fn empty_zone_set_always_sufficient() {
        let o = p(40.0, -88.0);
        let trace = east_trace(o, 5, 10.0, 40.0);
        let rep = check_alibi(&trace, &ZoneSet::new(), FAA_MAX_SPEED, Criterion::Paper);
        assert!(rep.is_sufficient());
        assert!(rep.pairs.iter().all(|pv| pv.tightest_zone.is_none()));
    }

    #[test]
    fn short_traces_trivially_sufficient() {
        let o = p(40.0, -88.0);
        let zones: ZoneSet =
            std::iter::once(NoFlyZone::new(o, Distance::from_meters(10.0))).collect();
        assert!(check_alibi(&[], &zones, FAA_MAX_SPEED, Criterion::Paper).is_sufficient());
        let one = east_trace(o, 1, 1.0, 0.0);
        assert!(check_alibi(&one, &zones, FAA_MAX_SPEED, Criterion::Paper).is_sufficient());
    }

    #[test]
    fn exact_criterion_accepts_superset_of_paper() {
        let o = p(40.0, -88.0);
        let trace = east_trace(o, 20, 1.0, 25.0);
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_meters(60.0)),
            Distance::from_meters(20.0),
        );
        let zones: ZoneSet = std::iter::once(zone).collect();
        let paper = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper);
        let exact = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Exact);
        for (pp, pe) in paper.pairs.iter().zip(exact.pairs.iter()) {
            if pp.sufficient {
                assert!(pe.sufficient, "exact must accept what paper accepts");
            }
        }
        assert!(exact.insufficient_count <= paper.insufficient_count);
    }

    #[test]
    fn counter_matches_report() {
        let o = p(40.0, -88.0);
        let trace = east_trace(o, 8, 30.0, 10.0);
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_meters(300.0)),
            Distance::from_meters(30.0),
        );
        let zones: ZoneSet = std::iter::once(zone).collect();
        assert_eq!(
            count_insufficient_pairs(&trace, &zones, FAA_MAX_SPEED),
            check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper).insufficient_count
        );
    }

    #[test]
    fn tightest_zone_is_reported() {
        let o = p(40.0, -88.0);
        let trace = east_trace(o, 2, 1.0, 10.0);
        let far = NoFlyZone::new(
            o.destination(0.0, Distance::from_km(10.0)),
            Distance::from_meters(10.0),
        );
        let near = NoFlyZone::new(
            o.destination(180.0, Distance::from_meters(500.0)),
            Distance::from_meters(10.0),
        );
        let zones: ZoneSet = [far, near].into_iter().collect();
        let rep = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper);
        assert_eq!(rep.pairs[0].tightest_zone, Some(1));
    }

    #[test]
    fn pair_with_non_increasing_time_is_insufficient() {
        let o = p(40.0, -88.0);
        let s1 = GpsSample::new(o, Timestamp::from_secs(1.0));
        let s2 = GpsSample::new(o, Timestamp::from_secs(1.0));
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_km(50.0)),
            Distance::from_meters(10.0),
        );
        assert!(!pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED));
        assert!(!pair_is_sufficient_exact(&s1, &s2, &zone, FAA_MAX_SPEED));
    }

    #[test]
    fn no_gaps_matches_plain_check_alibi() {
        let o = p(40.0, -88.0);
        let trace = east_trace(o, 10, 1.0, 20.0);
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_km(5.0)),
            Distance::from_meters(100.0),
        );
        let zones: ZoneSet = std::iter::once(zone).collect();
        let plain = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper);
        let gapped = check_alibi_with_gaps(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper, &[]);
        assert_eq!(plain, gapped);
        assert!(plain.pairs.iter().all(|pv| pv.gap_overlap_secs == 0.0));
    }

    #[test]
    fn gap_overlap_reduces_margin_by_vmax_times_overlap() {
        let o = p(40.0, -88.0);
        let trace = east_trace(o, 4, 10.0, 5.0);
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_km(3.0)),
            Distance::from_meters(100.0),
        );
        let zones: ZoneSet = std::iter::once(zone).collect();
        // Gap covering 4 s of the second pair's [10, 20] interval.
        let gap = GapWindow {
            start: Timestamp::from_secs(12.0),
            end: Timestamp::from_secs(16.0),
        };
        let clean = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper);
        let gapped = check_alibi_with_gaps(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper, &[gap]);
        assert_eq!(gapped.pairs[1].gap_overlap_secs, 4.0);
        let expected_penalty = FAA_MAX_SPEED.mps() * 4.0;
        let actual = clean.pairs[1].margin_m - gapped.pairs[1].margin_m;
        assert!(
            (actual - expected_penalty).abs() < 1e-6,
            "penalty {actual} vs expected {expected_penalty}"
        );
        // Pairs the gap does not touch are unchanged.
        assert_eq!(clean.pairs[0].margin_m, gapped.pairs[0].margin_m);
        assert_eq!(clean.pairs[2].margin_m, gapped.pairs[2].margin_m);
    }

    #[test]
    fn gap_can_flip_pair_to_insufficient_never_reverse() {
        let o = p(40.0, -88.0);
        // Overlap is clamped to the pair interval, so the budget can at
        // most double (v_max·2·dt ≈ 89.4 m at 1 s pairs). Put the zone
        // boundary ~30 m away: d1+d2 ≈ 60 m clears the clean budget
        // (44.7 m) but not the fully-gapped one.
        let trace = east_trace(o, 3, 1.0, 10.0);
        let zone = NoFlyZone::new(
            o.destination(0.0, Distance::from_meters(130.0)),
            Distance::from_meters(100.0),
        );
        let zones: ZoneSet = std::iter::once(zone).collect();
        let clean = check_alibi(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper);
        assert!(clean.is_sufficient());
        let gap = GapWindow {
            start: Timestamp::from_secs(0.0),
            end: Timestamp::from_secs(2.0),
        };
        let gapped = check_alibi_with_gaps(&trace, &zones, FAA_MAX_SPEED, Criterion::Paper, &[gap]);
        assert!(!gapped.is_sufficient(), "gap must weaken the alibi");
    }

    #[test]
    fn gap_window_overlap_and_containment() {
        let g = GapWindow {
            start: Timestamp::from_secs(5.0),
            end: Timestamp::from_secs(10.0),
        };
        assert_eq!(
            g.overlap_secs(Timestamp::from_secs(0.0), Timestamp::from_secs(7.0)),
            2.0
        );
        assert_eq!(
            g.overlap_secs(Timestamp::from_secs(11.0), Timestamp::from_secs(20.0)),
            0.0
        );
        assert!(g.contains_strict(Timestamp::from_secs(7.0)));
        assert!(!g.contains_strict(Timestamp::from_secs(5.0)));
        assert!(!g.contains_strict(Timestamp::from_secs(10.0)));
    }

    #[test]
    fn sample_inside_zone_never_sufficient() {
        let o = p(40.0, -88.0);
        let zone = NoFlyZone::new(o, Distance::from_meters(1_000.0));
        let s1 = GpsSample::new(o, Timestamp::from_secs(0.0));
        let s2 = GpsSample::new(
            o.destination(90.0, Distance::from_meters(10.0)),
            Timestamp::from_secs(1.0),
        );
        assert!(!pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED));
    }
}
