//! Compliant route planning.
//!
//! After the zone query, "the drone can use the NFZ information to
//! compute a viable route to its destination" (paper §IV-B step 3).
//! This module provides that planner: given start, goal, and the zone
//! set, it produces a waypoint route whose every segment stays clear of
//! every (margin-inflated) zone.
//!
//! The algorithm is recursive tangent detouring: when the direct segment
//! clips a zone, insert a via-point abeam the zone centre at the
//! inflated radius and recurse on both halves, trying the nearer side
//! first. For circular obstacles this produces near-optimal routes and
//! is simple enough to run on drone-class hardware.

use crate::projection::{Enu, LocalTangentPlane};
use crate::units::Distance;
use crate::{GeoError, GeoPoint, ZoneSet};

/// Route-planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The start position lies inside an (inflated) zone.
    StartInsideZone,
    /// The goal position lies inside an (inflated) zone.
    GoalInsideZone,
    /// No route found within the recursion budget (densely packed
    /// obstacles).
    NoRoute,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::StartInsideZone => write!(f, "start position is inside a no-fly zone"),
            PlanError::GoalInsideZone => write!(f, "goal position is inside a no-fly zone"),
            PlanError::NoRoute => write!(f, "no compliant route found"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for GeoError {
    fn from(e: PlanError) -> Self {
        // Planning failures surface as degenerate-input errors at the
        // geo level; callers wanting detail use PlanError directly.
        match e {
            PlanError::StartInsideZone | PlanError::GoalInsideZone => {
                GeoError::NonPositiveDistance(0.0)
            }
            PlanError::NoRoute => GeoError::TooFewWaypoints(0),
        }
    }
}

/// Plans a compliant waypoint route from `start` to `goal`.
///
/// Every returned segment keeps at least `margin` clearance from every
/// zone boundary. The returned route always begins with `start` and
/// ends with `goal`.
///
/// # Errors
///
/// [`PlanError::StartInsideZone`] / [`PlanError::GoalInsideZone`] when an
/// endpoint is inside an inflated zone, [`PlanError::NoRoute`] when the
/// recursion budget is exhausted.
pub fn plan_route(
    start: GeoPoint,
    goal: GeoPoint,
    zones: &ZoneSet,
    margin: Distance,
) -> Result<Vec<GeoPoint>, PlanError> {
    let plane = LocalTangentPlane::new(start.lerp(&goal, 0.5));
    let obstacles: Vec<(Enu, f64)> = zones
        .iter()
        .map(|z| {
            (
                plane.project(&z.center()),
                z.radius().meters() + margin.meters().max(0.0),
            )
        })
        .collect();

    let s = plane.project(&start);
    let g = plane.project(&goal);
    if inside_any(&s, &obstacles) {
        return Err(PlanError::StartInsideZone);
    }
    if inside_any(&g, &obstacles) {
        return Err(PlanError::GoalInsideZone);
    }

    let mut budget = 256usize;
    let path = route_segment(s, g, &obstacles, 0, &mut budget).ok_or(PlanError::NoRoute)?;
    let mut out: Vec<GeoPoint> = Vec::with_capacity(path.len() + 1);
    out.push(start);
    for p in &path[1..path.len() - 1] {
        out.push(plane.unproject(p));
    }
    out.push(goal);
    Ok(out)
}

/// `true` when the route (as consecutive segments) keeps `margin`
/// clearance from every zone — the planner's postcondition, exposed so
/// callers (and property tests) can validate independently.
pub fn route_is_clear(route: &[GeoPoint], zones: &ZoneSet, margin: Distance) -> bool {
    if route.len() < 2 {
        return false;
    }
    if zones.is_empty() {
        return true;
    }
    let plane = LocalTangentPlane::new(route[0]);
    let pts: Vec<Enu> = route.iter().map(|p| plane.project(p)).collect();
    let obstacles: Vec<(Enu, f64)> = zones
        .iter()
        .map(|z| {
            (
                plane.project(&z.center()),
                z.radius().meters() + margin.meters().max(0.0),
            )
        })
        .collect();
    pts.windows(2).all(|w| {
        obstacles
            .iter()
            // A hair of tolerance: via-points sit exactly on the inflated
            // boundary and projection re-anchoring costs a few mm.
            .all(|(c, r)| dist_point_segment(c, &w[0], &w[1]) >= r - 1e-3)
    })
}

fn inside_any(p: &Enu, obstacles: &[(Enu, f64)]) -> bool {
    obstacles
        .iter()
        .any(|(c, r)| p.distance_to(c).meters() < *r)
}

/// Recursively routes from `a` to `b` around obstacles, returning a
/// polyline including both endpoints, or `None` when stuck.
fn route_segment(
    a: Enu,
    b: Enu,
    obstacles: &[(Enu, f64)],
    depth: usize,
    budget: &mut usize,
) -> Option<Vec<Enu>> {
    if *budget == 0 || depth > 24 {
        return None;
    }
    *budget -= 1;

    // Find the blocking obstacle nearest to `a` along the segment.
    let mut blocker: Option<(usize, f64)> = None;
    for (i, (c, r)) in obstacles.iter().enumerate() {
        if dist_point_segment(c, &a, &b) < *r {
            // Order blockers by projection parameter along ab.
            let t = project_t(c, &a, &b);
            if blocker.is_none_or(|(_, bt)| t < bt) {
                blocker = Some((i, t));
            }
        }
    }
    let Some((bi, _)) = blocker else {
        return Some(vec![a, b]);
    };
    let (c, r) = obstacles[bi];

    // Via-point: abeam the centre, perpendicular to ab, pushed slightly
    // outside the inflated radius. Try the side nearer the segment first.
    let ab = Enu::new(b.east - a.east, b.north - a.north);
    let len = (ab.east * ab.east + ab.north * ab.north).sqrt();
    if len < 1e-9 {
        return None;
    }
    let n = Enu::new(-ab.north / len, ab.east / len); // unit normal
    let push = r * 1.15 + 1.0;
    let candidates = [
        Enu::new(c.east + n.east * push, c.north + n.north * push),
        Enu::new(c.east - n.east * push, c.north - n.north * push),
    ];
    // Prefer the via-point closer to the straight line.
    let mid = a.midpoint(&b);
    let mut order = [0usize, 1];
    if candidates[1].distance_to(&mid) < candidates[0].distance_to(&mid) {
        order = [1, 0];
    }
    for &idx in &order {
        let via = candidates[idx];
        if inside_any(&via, obstacles) {
            continue;
        }
        let first = route_segment(a, via, obstacles, depth + 1, budget)?;
        if let Some(second) = route_segment(via, b, obstacles, depth + 1, budget) {
            let mut out = first;
            out.pop(); // drop duplicated via
            out.extend(second);
            return Some(out);
        }
    }
    None
}

fn project_t(p: &Enu, a: &Enu, b: &Enu) -> f64 {
    let ab = Enu::new(b.east - a.east, b.north - a.north);
    let ap = Enu::new(p.east - a.east, p.north - a.north);
    let len_sq = ab.east * ab.east + ab.north * ab.north;
    if len_sq == 0.0 {
        return 0.0;
    }
    ((ap.east * ab.east + ap.north * ab.north) / len_sq).clamp(0.0, 1.0)
}

fn dist_point_segment(p: &Enu, a: &Enu, b: &Enu) -> f64 {
    let t = project_t(p, a, b);
    let ab = Enu::new(b.east - a.east, b.north - a.north);
    let proj = Enu::new(a.east + t * ab.east, a.north + t * ab.north);
    p.distance_to(&proj).meters()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Distance;
    use crate::NoFlyZone;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn origin() -> GeoPoint {
        p(40.1, -88.2)
    }

    fn zone_at(bearing: f64, dist_m: f64, radius_m: f64) -> NoFlyZone {
        NoFlyZone::new(
            origin().destination(bearing, Distance::from_meters(dist_m)),
            Distance::from_meters(radius_m),
        )
    }

    const MARGIN: Distance = Distance::ZERO;

    #[test]
    fn clear_path_is_direct() {
        let goal = origin().destination(90.0, Distance::from_km(1.0));
        let zones: ZoneSet = std::iter::once(zone_at(0.0, 5_000.0, 100.0)).collect();
        let route = plan_route(origin(), goal, &zones, MARGIN).unwrap();
        assert_eq!(route.len(), 2);
        assert_eq!(route[0], origin());
        assert_eq!(route[1], goal);
        assert!(route_is_clear(&route, &zones, MARGIN));
    }

    #[test]
    fn single_zone_on_path_gets_detoured() {
        let goal = origin().destination(90.0, Distance::from_km(1.0));
        // Zone dead centre on the straight line.
        let zones: ZoneSet = std::iter::once(zone_at(90.0, 500.0, 80.0)).collect();
        let route = plan_route(origin(), goal, &zones, MARGIN).unwrap();
        assert!(route.len() >= 3, "expected a via-point, got {route:?}");
        assert!(route_is_clear(&route, &zones, MARGIN));
        // Route still starts/ends correctly.
        assert_eq!(route[0], origin());
        assert_eq!(*route.last().unwrap(), goal);
    }

    #[test]
    fn margin_is_respected() {
        let goal = origin().destination(90.0, Distance::from_km(1.0));
        let zones: ZoneSet = std::iter::once(zone_at(90.0, 500.0, 50.0)).collect();
        let margin = Distance::from_meters(30.0);
        let route = plan_route(origin(), goal, &zones, margin).unwrap();
        assert!(route_is_clear(&route, &zones, margin));
        // With zero margin the same route is also clear (stronger check
        // was already done); with a *larger* margin it need not be.
        assert!(route_is_clear(&route, &zones, MARGIN));
    }

    #[test]
    fn corridor_of_zones() {
        // A picket line of zones with a gap the planner can thread or go
        // around.
        let goal = origin().destination(90.0, Distance::from_km(2.0));
        let zones: ZoneSet = (0..5)
            .map(|i| {
                NoFlyZone::new(
                    origin()
                        .destination(90.0, Distance::from_meters(1_000.0))
                        .destination(0.0, Distance::from_meters(-300.0 + i as f64 * 150.0)),
                    Distance::from_meters(60.0),
                )
            })
            .collect();
        let route = plan_route(origin(), goal, &zones, Distance::from_meters(5.0)).unwrap();
        assert!(route_is_clear(&route, &zones, Distance::from_meters(5.0)));
    }

    #[test]
    fn start_or_goal_inside_zone_rejected() {
        let goal = origin().destination(90.0, Distance::from_km(1.0));
        let zones: ZoneSet =
            std::iter::once(NoFlyZone::new(origin(), Distance::from_meters(50.0))).collect();
        assert_eq!(
            plan_route(origin(), goal, &zones, MARGIN),
            Err(PlanError::StartInsideZone)
        );
        let zones2: ZoneSet =
            std::iter::once(NoFlyZone::new(goal, Distance::from_meters(50.0))).collect();
        assert_eq!(
            plan_route(origin(), goal, &zones2, MARGIN),
            Err(PlanError::GoalInsideZone)
        );
    }

    #[test]
    fn margin_inflation_applies_to_endpoints() {
        // Start is 60 m from a 50 m zone: fine with zero margin, inside
        // with a 20 m margin.
        let goal = origin().destination(90.0, Distance::from_km(1.0));
        let zones: ZoneSet = std::iter::once(zone_at(0.0, 60.0, 50.0)).collect();
        assert!(plan_route(origin(), goal, &zones, MARGIN).is_ok());
        assert_eq!(
            plan_route(origin(), goal, &zones, Distance::from_meters(20.0)),
            Err(PlanError::StartInsideZone)
        );
    }

    #[test]
    fn empty_zone_set_plans_direct() {
        let goal = origin().destination(45.0, Distance::from_km(3.0));
        let route = plan_route(origin(), goal, &ZoneSet::new(), MARGIN).unwrap();
        assert_eq!(route.len(), 2);
        assert!(route_is_clear(&route, &ZoneSet::new(), MARGIN));
    }

    #[test]
    fn route_is_clear_rejects_bad_routes() {
        let zones: ZoneSet = std::iter::once(zone_at(90.0, 500.0, 80.0)).collect();
        let goal = origin().destination(90.0, Distance::from_km(1.0));
        // The straight line passes through the zone: not clear.
        assert!(!route_is_clear(&[origin(), goal], &zones, MARGIN));
        // Degenerate routes are never "clear".
        assert!(!route_is_clear(&[origin()], &zones, MARGIN));
        assert!(!route_is_clear(&[], &zones, MARGIN));
    }

    #[test]
    fn detour_length_is_reasonable() {
        // The detour around a single mid-path zone should cost far less
        // than 2x the direct distance.
        let goal = origin().destination(90.0, Distance::from_km(1.0));
        let zones: ZoneSet = std::iter::once(zone_at(90.0, 500.0, 80.0)).collect();
        let route = plan_route(origin(), goal, &zones, MARGIN).unwrap();
        let length: f64 = route
            .windows(2)
            .map(|w| w[0].distance_to(&w[1]).meters())
            .sum();
        assert!(length < 1_400.0, "detour length {length} m");
        assert!(length >= 1_000.0);
    }
}
