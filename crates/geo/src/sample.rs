//! GPS samples — the paper's tuple `S = (lat, lon, t)`.

use std::fmt;

use crate::units::{Speed, Timestamp};
use crate::{GeoError, GeoPoint};

/// A single GPS sample: position plus timestamp (paper §III-A).
///
/// Samples are the atoms of an *alibi*; a signed sample is the atom of a
/// *Proof-of-Alibi*. Construction is infallible given a valid [`GeoPoint`],
/// so a `GpsSample` is always internally consistent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsSample {
    point: GeoPoint,
    time: Timestamp,
}

impl GpsSample {
    /// Creates a sample at `point` taken at `time`.
    pub fn new(point: GeoPoint, time: Timestamp) -> Self {
        GpsSample { point, time }
    }

    /// The sampled position.
    pub fn point(&self) -> GeoPoint {
        self.point
    }

    /// The sample timestamp.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// The latitude in decimal degrees (convenience accessor).
    pub fn lat_deg(&self) -> f64 {
        self.point.lat_deg()
    }

    /// The longitude in decimal degrees (convenience accessor).
    pub fn lon_deg(&self) -> f64 {
        self.point.lon_deg()
    }

    /// Average ground speed between two samples, or `None` when the
    /// timestamps are not strictly increasing.
    pub fn speed_between(a: &GpsSample, b: &GpsSample) -> Option<Speed> {
        let dt = b.time.since(a.time);
        if dt.secs() <= 0.0 {
            return None;
        }
        let d = a.point.distance_to(&b.point);
        Some(Speed::from_mps(d.meters() / dt.secs()))
    }

    /// A canonical 24-byte wire encoding: big-endian IEEE-754 latitude,
    /// longitude, and timestamp-seconds.
    ///
    /// This is the exact byte string that the TEE signs; auditor-side
    /// verification recomputes it with [`GpsSample::from_bytes`].
    pub fn to_bytes(&self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[0..8].copy_from_slice(&self.point.lat_deg().to_be_bytes());
        out[8..16].copy_from_slice(&self.point.lon_deg().to_be_bytes());
        out[16..24].copy_from_slice(&self.time.secs().to_be_bytes());
        out
    }

    /// Decodes a sample from its canonical wire encoding.
    ///
    /// # Errors
    ///
    /// Returns an error if the encoded latitude or longitude is out of
    /// range (e.g. a corrupted or forged message).
    pub fn from_bytes(bytes: &[u8; 24]) -> Result<Self, GeoError> {
        let lat = f64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let lon = f64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let t = f64::from_be_bytes(bytes[16..24].try_into().expect("8 bytes"));
        Ok(GpsSample {
            point: GeoPoint::new(lat, lon)?,
            time: Timestamp::from_secs(t),
        })
    }
}

impl fmt::Display for GpsSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.point, self.time)
    }
}

/// Validates that a slice of samples has strictly increasing timestamps.
///
/// The verification pipeline rejects traces violating this (a replayed or
/// spliced trace typically breaks monotonicity).
///
/// # Errors
///
/// Returns [`GeoError::NonMonotonicTime`] naming the first offending index.
pub fn check_monotonic(samples: &[GpsSample]) -> Result<(), GeoError> {
    for (i, w) in samples.windows(2).enumerate() {
        if w[1].time().secs() <= w[0].time().secs() {
            return Err(GeoError::NonMonotonicTime { index: i + 1 });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distance;

    fn sample(lat: f64, lon: f64, t: f64) -> GpsSample {
        GpsSample::new(GeoPoint::new(lat, lon).unwrap(), Timestamp::from_secs(t))
    }

    #[test]
    fn byte_round_trip() {
        let s = sample(40.123456, -88.654321, 1234.5);
        let rt = GpsSample::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, rt);
    }

    #[test]
    fn from_bytes_rejects_invalid_latitude() {
        let s = sample(40.0, -88.0, 1.0);
        let mut b = s.to_bytes();
        b[0..8].copy_from_slice(&200.0f64.to_be_bytes());
        assert!(GpsSample::from_bytes(&b).is_err());
    }

    #[test]
    fn speed_between_simple() {
        let a = sample(40.0, -88.0, 0.0);
        let b_pt = a.point().destination(0.0, Distance::from_meters(100.0));
        let b = GpsSample::new(b_pt, Timestamp::from_secs(10.0));
        let v = GpsSample::speed_between(&a, &b).unwrap();
        assert!((v.mps() - 10.0).abs() < 0.01, "got {}", v.mps());
    }

    #[test]
    fn speed_between_zero_dt_is_none() {
        let a = sample(40.0, -88.0, 5.0);
        let b = sample(40.1, -88.0, 5.0);
        assert!(GpsSample::speed_between(&a, &b).is_none());
        let c = sample(40.1, -88.0, 4.0);
        assert!(GpsSample::speed_between(&a, &c).is_none());
    }

    #[test]
    fn monotonic_check_accepts_increasing() {
        let trace = vec![
            sample(40.0, -88.0, 0.0),
            sample(40.0, -88.0, 0.2),
            sample(40.0, -88.0, 1.0),
        ];
        assert!(check_monotonic(&trace).is_ok());
    }

    #[test]
    fn monotonic_check_rejects_equal_and_decreasing() {
        let trace = vec![sample(40.0, -88.0, 0.0), sample(40.0, -88.0, 0.0)];
        assert_eq!(
            check_monotonic(&trace),
            Err(GeoError::NonMonotonicTime { index: 1 })
        );
        let trace = vec![
            sample(40.0, -88.0, 0.0),
            sample(40.0, -88.0, 1.0),
            sample(40.0, -88.0, 0.5),
        ];
        assert_eq!(
            check_monotonic(&trace),
            Err(GeoError::NonMonotonicTime { index: 2 })
        );
    }

    #[test]
    fn monotonic_check_trivial_cases() {
        assert!(check_monotonic(&[]).is_ok());
        assert!(check_monotonic(&[sample(40.0, -88.0, 0.0)]).is_ok());
    }
}
