//! WGS-84 geographic points.

use std::fmt;

use crate::units::{Distance, EARTH_RADIUS_M};
use crate::GeoError;

/// A point on the Earth's surface: a validated WGS-84 latitude/longitude
/// pair in decimal degrees.
///
/// All planar geometry in this crate is performed after projecting points
/// onto a [`LocalTangentPlane`](crate::LocalTangentPlane); `GeoPoint` itself
/// only offers great-circle operations (haversine distance, destination
/// point), which are what a GPS receiver's coordinates support natively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point from a latitude and longitude in decimal degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] if `lat_deg` is outside
    /// `[-90, 90]` or not finite, and [`GeoError::InvalidLongitude`] if
    /// `lon_deg` is outside `[-180, 180]` or not finite.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, GeoError> {
        if !lat_deg.is_finite() || !(-90.0..=90.0).contains(&lat_deg) {
            return Err(GeoError::InvalidLatitude(lat_deg));
        }
        if !lon_deg.is_finite() || !(-180.0..=180.0).contains(&lon_deg) {
            return Err(GeoError::InvalidLongitude(lon_deg));
        }
        Ok(GeoPoint { lat_deg, lon_deg })
    }

    /// The latitude in decimal degrees.
    pub fn lat_deg(&self) -> f64 {
        self.lat_deg
    }

    /// The longitude in decimal degrees.
    pub fn lon_deg(&self) -> f64 {
        self.lon_deg
    }

    /// The latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat_deg.to_radians()
    }

    /// The longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon_deg.to_radians()
    }

    /// Great-circle (haversine) distance to `other`.
    ///
    /// Accurate to ~0.5 % (spherical Earth model), which is far below the
    /// GPS error floor and irrelevant at the <10 mi scales of the paper.
    pub fn distance_to(&self, other: &GeoPoint) -> Distance {
        let phi1 = self.lat_rad();
        let phi2 = other.lat_rad();
        let dphi = (other.lat_deg - self.lat_deg).to_radians();
        let dlambda = (other.lon_deg - self.lon_deg).to_radians();
        let a =
            (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().atan2((1.0 - a).sqrt());
        Distance::from_meters(EARTH_RADIUS_M * c)
    }

    /// The initial bearing from `self` to `other`, in degrees clockwise
    /// from true north, in `[0, 360)`.
    pub fn bearing_to(&self, other: &GeoPoint) -> f64 {
        let phi1 = self.lat_rad();
        let phi2 = other.lat_rad();
        let dlambda = (other.lon_deg - self.lon_deg).to_radians();
        let y = dlambda.sin() * phi2.cos();
        let x = phi1.cos() * phi2.sin() - phi1.sin() * phi2.cos() * dlambda.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point reached by travelling `distance` along the great circle
    /// with initial bearing `bearing_deg` (degrees clockwise from north).
    ///
    /// # Panics
    ///
    /// Never panics: the result of the spherical formulas is always a valid
    /// latitude/longitude.
    pub fn destination(&self, bearing_deg: f64, distance: Distance) -> GeoPoint {
        let delta = distance.meters() / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let phi1 = self.lat_rad();
        let lambda1 = self.lon_rad();
        let phi2 = (phi1.sin() * delta.cos() + phi1.cos() * delta.sin() * theta.cos()).asin();
        let lambda2 = lambda1
            + (theta.sin() * delta.sin() * phi1.cos()).atan2(delta.cos() - phi1.sin() * phi2.sin());
        // Normalise longitude to [-180, 180].
        let lon = (lambda2.to_degrees() + 540.0) % 360.0 - 180.0;
        GeoPoint {
            lat_deg: phi2.to_degrees().clamp(-90.0, 90.0),
            lon_deg: lon,
        }
    }

    /// Linear interpolation between `self` and `other` by fraction
    /// `f ∈ [0, 1]` (flat-earth interpolation, fine at short range).
    pub fn lerp(&self, other: &GeoPoint, f: f64) -> GeoPoint {
        let f = f.clamp(0.0, 1.0);
        GeoPoint {
            lat_deg: self.lat_deg + (other.lat_deg - self.lat_deg) * f,
            lon_deg: self.lon_deg + (other.lon_deg - self.lon_deg) * f,
        }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn rejects_bad_latitude() {
        assert!(matches!(
            GeoPoint::new(91.0, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(f64::NAN, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
    }

    #[test]
    fn rejects_bad_longitude() {
        assert!(matches!(
            GeoPoint::new(0.0, 181.0),
            Err(GeoError::InvalidLongitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(0.0, f64::INFINITY),
            Err(GeoError::InvalidLongitude(_))
        ));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = p(40.0, -88.0);
        assert!(a.distance_to(&a).meters() < 1e-9);
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let a = p(40.0, -88.0);
        let b = p(41.0, -88.0);
        let d = a.distance_to(&b).km();
        assert!((d - 111.19).abs() < 0.5, "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = p(40.0, -88.0);
        let b = p(40.5, -88.7);
        let ab = a.distance_to(&b).meters();
        let ba = b.distance_to(&a).meters();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let a = p(40.0, -88.0);
        for bearing in [0.0, 45.0, 90.0, 180.0, 270.0, 359.0] {
            let b = a.destination(bearing, Distance::from_miles(3.0));
            let d = a.distance_to(&b);
            assert!(
                (d.miles() - 3.0).abs() < 1e-6,
                "bearing {bearing}: got {} mi",
                d.miles()
            );
        }
    }

    #[test]
    fn destination_bearing_consistency() {
        let a = p(40.0, -88.0);
        let b = a.destination(90.0, Distance::from_km(1.0));
        let bearing = a.bearing_to(&b);
        assert!((bearing - 90.0).abs() < 0.1, "got {bearing}");
    }

    #[test]
    fn bearing_north_is_zero() {
        let a = p(40.0, -88.0);
        let b = p(41.0, -88.0);
        assert!(a.bearing_to(&b).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints() {
        let a = p(40.0, -88.0);
        let b = p(41.0, -87.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat_deg() - 40.5).abs() < 1e-12);
        assert!((mid.lon_deg() + 87.5).abs() < 1e-12);
    }

    #[test]
    fn lerp_clamps_fraction() {
        let a = p(40.0, -88.0);
        let b = p(41.0, -87.0);
        assert_eq!(a.lerp(&b, -1.0), a);
        assert_eq!(a.lerp(&b, 2.0), b);
    }

    #[test]
    fn destination_crossing_antimeridian_normalises() {
        let a = p(0.0, 179.9);
        let b = a.destination(90.0, Distance::from_km(50.0));
        assert!(b.lon_deg() >= -180.0 && b.lon_deg() <= 180.0);
        assert!(
            b.lon_deg() < 0.0,
            "should wrap to negative, got {}",
            b.lon_deg()
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", p(40.0, -88.0)), "(40.000000, -88.000000)");
    }
}
