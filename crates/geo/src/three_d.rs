//! Three-dimensional physical model (paper §VII-B1).
//!
//! The extension adds altitude: samples become 4-tuples
//! `S = (lat, lon, alt, t)`, no-fly zones become *cylinders*
//! `z = (lat, lon, alt, r)` (a circle of radius `r` in plan view, extending
//! from the ground up to altitude `alt`), and the possible traveling range
//! becomes an ellipsoid with the two sample positions as foci:
//!
//! ```text
//! E'(S1, S2) = { (x, y, z) : d1 + d2 <= v_max (t2 - t1) }
//! ```
//!
//! The pair proves alibi iff the ellipsoid does not intersect the cylinder.

use crate::projection::LocalTangentPlane;
use crate::units::{Distance, Speed, Timestamp};
use crate::{GeoError, GeoPoint};

/// A GPS sample with altitude: the 4-tuple `(lat, lon, alt, t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsSample3d {
    point: GeoPoint,
    /// Altitude above ground level, in meters.
    alt: Distance,
    time: Timestamp,
}

impl GpsSample3d {
    /// Creates a 3-D sample.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::NonPositiveDistance`] for a negative or
    /// non-finite altitude (altitude zero — on the ground — is allowed).
    pub fn new(point: GeoPoint, alt: Distance, time: Timestamp) -> Result<Self, GeoError> {
        if alt.meters() < 0.0 || !alt.is_finite() {
            return Err(GeoError::NonPositiveDistance(alt.meters()));
        }
        Ok(GpsSample3d { point, alt, time })
    }

    /// The horizontal position.
    pub fn point(&self) -> GeoPoint {
        self.point
    }

    /// The altitude above ground.
    pub fn alt(&self) -> Distance {
        self.alt
    }

    /// The sample timestamp.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// A canonical 32-byte wire encoding: big-endian IEEE-754 latitude,
    /// longitude, altitude-meters, and timestamp-seconds — the 3-D
    /// analogue of [`GpsSample::to_bytes`](crate::GpsSample::to_bytes),
    /// and the exact byte string a 3-D-aware TEE signs.
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&self.point.lat_deg().to_be_bytes());
        out[8..16].copy_from_slice(&self.point.lon_deg().to_be_bytes());
        out[16..24].copy_from_slice(&self.alt.meters().to_be_bytes());
        out[24..32].copy_from_slice(&self.time.secs().to_be_bytes());
        out
    }

    /// Decodes a 3-D sample from its canonical wire encoding.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range coordinates or a negative
    /// altitude.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, GeoError> {
        let lat = f64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let lon = f64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let alt = f64::from_be_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let t = f64::from_be_bytes(bytes[24..32].try_into().expect("8 bytes"));
        GpsSample3d::new(
            GeoPoint::new(lat, lon)?,
            Distance::from_meters(alt),
            Timestamp::from_secs(t),
        )
    }
}

/// A cylindrical no-fly region: plan-view circle of radius `r`, from the
/// ground up to `top` altitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CylinderZone {
    center: GeoPoint,
    radius: Distance,
    top: Distance,
}

impl CylinderZone {
    /// Creates a cylindrical zone.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::NonPositiveDistance`] when the radius or top
    /// altitude is not strictly positive and finite.
    pub fn new(center: GeoPoint, radius: Distance, top: Distance) -> Result<Self, GeoError> {
        if radius.meters() <= 0.0 || !radius.is_finite() {
            return Err(GeoError::NonPositiveDistance(radius.meters()));
        }
        if top.meters() <= 0.0 || !top.is_finite() {
            return Err(GeoError::NonPositiveDistance(top.meters()));
        }
        Ok(CylinderZone {
            center,
            radius,
            top,
        })
    }

    /// The plan-view centre.
    pub fn center(&self) -> GeoPoint {
        self.center
    }

    /// The plan-view radius.
    pub fn radius(&self) -> Distance {
        self.radius
    }

    /// The top altitude of the region.
    pub fn top(&self) -> Distance {
        self.top
    }

    /// Signed distance from a 3-D position to the region boundary:
    /// positive outside, negative inside.
    pub fn boundary_distance(&self, s: &GpsSample3d) -> Distance {
        let radial = self.center.distance_to(&s.point()).meters() - self.radius.meters();
        let vertical = s.alt().meters() - self.top.meters();
        if radial <= 0.0 && vertical <= 0.0 {
            // Inside: depth is distance to the nearest face.
            Distance::from_meters(radial.max(vertical))
        } else {
            let dr = radial.max(0.0);
            let dv = vertical.max(0.0);
            Distance::from_meters(dr.hypot(dv))
        }
    }

    /// `true` when the position is strictly inside the region.
    pub fn contains(&self, s: &GpsSample3d) -> bool {
        self.boundary_distance(s).meters() < 0.0
    }
}

/// The 3-D possible-traveling-range ellipsoid between two samples.
#[derive(Debug, Clone, Copy)]
pub struct ReachableSet3d {
    plane: LocalTangentPlane,
    f1: [f64; 3],
    f2: [f64; 3],
    budget_m: f64,
}

impl ReachableSet3d {
    /// Builds the 3-D reachable set, or `None` when `s2` does not strictly
    /// follow `s1` in time.
    pub fn from_samples(s1: &GpsSample3d, s2: &GpsSample3d, v_max: Speed) -> Option<Self> {
        let dt = s2.time().since(s1.time());
        if dt.secs() <= 0.0 || v_max.mps() <= 0.0 {
            return None;
        }
        let mid = s1.point().lerp(&s2.point(), 0.5);
        let plane = LocalTangentPlane::new(mid);
        let p1 = plane.project(&s1.point());
        let p2 = plane.project(&s2.point());
        Some(ReachableSet3d {
            plane,
            f1: [p1.east, p1.north, s1.alt().meters()],
            f2: [p2.east, p2.north, s2.alt().meters()],
            budget_m: v_max.mps() * dt.secs(),
        })
    }

    /// The distance-sum budget `v_max (t2 − t1)`.
    pub fn budget(&self) -> Distance {
        Distance::from_meters(self.budget_m)
    }

    /// Distance between the foci.
    pub fn focal_distance(&self) -> Distance {
        Distance::from_meters(dist3(&self.f1, &self.f2))
    }

    /// `true` when the pair is physically impossible at `v_max`.
    pub fn is_empty(&self) -> bool {
        self.focal_distance().meters() > self.budget_m
    }

    fn sum_at(&self, p: &[f64; 3]) -> f64 {
        dist3(p, &self.f1) + dist3(p, &self.f2)
    }

    /// Paper-style conservative criterion extended to 3-D: the sum of the
    /// two cylinder boundary distances exceeds the budget.
    pub fn paper_sufficient(
        &self,
        zone: &CylinderZone,
        s1: &GpsSample3d,
        s2: &GpsSample3d,
    ) -> bool {
        let d1 = zone.boundary_distance(s1).meters();
        let d2 = zone.boundary_distance(s2).meters();
        d1 + d2 > self.budget_m
    }

    /// Exact test: does the ellipsoid intersect the cylinder?
    ///
    /// Minimises the convex distance-sum function over the convex solid
    /// cylinder by projected gradient descent (projection onto a cylinder
    /// is a radial + vertical clamp); the set intersects iff the minimum
    /// is within budget. Accuracy is ~1 cm, far below GPS noise.
    pub fn intersects_zone(&self, zone: &CylinderZone) -> bool {
        if self.is_empty() {
            return false;
        }
        let min = self.min_distance_sum_over_zone(zone);
        min <= self.budget_m + 1e-3
    }

    fn min_distance_sum_over_zone(&self, zone: &CylinderZone) -> f64 {
        let c2d = self.plane.project(&zone.center());
        let cx = c2d.east;
        let cy = c2d.north;
        let r = zone.radius().meters();
        let top = zone.top().meters();

        let project = |p: &[f64; 3]| -> [f64; 3] {
            let dx = p[0] - cx;
            let dy = p[1] - cy;
            let rho = dx.hypot(dy);
            let (px, py) = if rho <= r || rho == 0.0 {
                (p[0], p[1])
            } else {
                (cx + dx / rho * r, cy + dy / rho * r)
            };
            [px, py, p[2].clamp(0.0, top)]
        };

        // Start from the projection of the midpoint of the foci.
        let mid = [
            (self.f1[0] + self.f2[0]) / 2.0,
            (self.f1[1] + self.f2[1]) / 2.0,
            (self.f1[2] + self.f2[2]) / 2.0,
        ];
        let mut p = project(&mid);
        let mut best = self.sum_at(&p);
        // Projected (sub)gradient descent with a geometric step schedule.
        let scale = (self.budget_m + dist3(&mid, &p)).max(1.0);
        let mut step = scale;
        for _ in 0..200 {
            let g = self.subgradient(&p);
            let gnorm = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
            if gnorm < 1e-12 {
                break;
            }
            let cand = project(&[
                p[0] - step * g[0] / gnorm,
                p[1] - step * g[1] / gnorm,
                p[2] - step * g[2] / gnorm,
            ]);
            let v = self.sum_at(&cand);
            if v < best {
                best = v;
                p = cand;
            } else {
                step *= 0.7;
                if step < 1e-6 {
                    break;
                }
            }
        }
        best
    }

    fn subgradient(&self, p: &[f64; 3]) -> [f64; 3] {
        let mut g = [0.0f64; 3];
        for f in [&self.f1, &self.f2] {
            let d = dist3(p, f);
            if d > 1e-12 {
                g[0] += (p[0] - f[0]) / d;
                g[1] += (p[1] - f[1]) / d;
                g[2] += (p[2] - f[2]) / d;
            }
        }
        g
    }
}

/// The outcome of a 3-D alibi check (the eq. 1 analogue for cylinders).
#[derive(Debug, Clone, PartialEq)]
pub struct Sufficiency3dReport {
    /// Indices (of the first sample) of insufficient pairs.
    pub insufficient_pairs: Vec<usize>,
    /// Indices of samples found *inside* a zone (direct violations).
    pub violations: Vec<usize>,
}

impl Sufficiency3dReport {
    /// `true` when the 3-D alibi proves compliance.
    pub fn is_sufficient(&self) -> bool {
        self.insufficient_pairs.is_empty() && self.violations.is_empty()
    }
}

/// Checks a 3-D trace against a set of cylindrical zones using the
/// paper-style conservative criterion per pair (with the exact ellipsoid
/// test as a fallback before declaring a pair insufficient, so the
/// conservative shortcut never *creates* insufficiency).
pub fn check_alibi_3d(
    samples: &[GpsSample3d],
    zones: &[CylinderZone],
    v_max: Speed,
) -> Sufficiency3dReport {
    let mut report = Sufficiency3dReport {
        insufficient_pairs: Vec::new(),
        violations: Vec::new(),
    };
    for (i, s) in samples.iter().enumerate() {
        if zones.iter().any(|z| z.contains(s)) {
            report.violations.push(i);
        }
    }
    for (i, w) in samples.windows(2).enumerate() {
        let (s1, s2) = (&w[0], &w[1]);
        let Some(e) = ReachableSet3d::from_samples(s1, s2, v_max) else {
            report.insufficient_pairs.push(i);
            continue;
        };
        let ok = zones
            .iter()
            .all(|z| e.paper_sufficient(z, s1, s2) || !e.intersects_zone(z));
        if !ok {
            report.insufficient_pairs.push(i);
        }
    }
    report
}

fn dist3(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::FAA_MAX_SPEED;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn s3(origin: &GeoPoint, bearing: f64, dist_m: f64, alt_m: f64, t: f64) -> GpsSample3d {
        GpsSample3d::new(
            origin.destination(bearing, Distance::from_meters(dist_m)),
            Distance::from_meters(alt_m),
            Timestamp::from_secs(t),
        )
        .unwrap()
    }

    #[test]
    fn sample_rejects_negative_altitude() {
        let o = p(40.0, -88.0);
        assert!(GpsSample3d::new(o, Distance::from_meters(-1.0), Timestamp::EPOCH).is_err());
        assert!(GpsSample3d::new(o, Distance::ZERO, Timestamp::EPOCH).is_ok());
    }

    #[test]
    fn cylinder_rejects_bad_dimensions() {
        let o = p(40.0, -88.0);
        assert!(CylinderZone::new(o, Distance::ZERO, Distance::from_meters(10.0)).is_err());
        assert!(CylinderZone::new(o, Distance::from_meters(10.0), Distance::ZERO).is_err());
    }

    #[test]
    fn boundary_distance_above_cylinder() {
        let o = p(40.0, -88.0);
        let z = CylinderZone::new(o, Distance::from_meters(50.0), Distance::from_meters(100.0))
            .unwrap();
        // Directly above the centre at 150 m: 50 m above the top.
        let s = s3(&o, 0.0, 0.0, 150.0, 0.0);
        assert!((z.boundary_distance(&s).meters() - 50.0).abs() < 0.01);
        assert!(!z.contains(&s));
    }

    #[test]
    fn boundary_distance_beside_cylinder() {
        let o = p(40.0, -88.0);
        let z = CylinderZone::new(o, Distance::from_meters(50.0), Distance::from_meters(100.0))
            .unwrap();
        // 80 m east at 50 m altitude (below top): 30 m radially outside.
        let s = s3(&o, 90.0, 80.0, 50.0, 0.0);
        assert!((z.boundary_distance(&s).meters() - 30.0).abs() < 0.1);
    }

    #[test]
    fn corner_distance_is_euclidean() {
        let o = p(40.0, -88.0);
        let z = CylinderZone::new(o, Distance::from_meters(50.0), Distance::from_meters(100.0))
            .unwrap();
        // 80 m east (30 m outside radially), 140 m up (40 m above top):
        // distance = hypot(30, 40) = 50.
        let s = s3(&o, 90.0, 80.0, 140.0, 0.0);
        assert!((z.boundary_distance(&s).meters() - 50.0).abs() < 0.1);
    }

    #[test]
    fn inside_cylinder_is_negative() {
        let o = p(40.0, -88.0);
        let z = CylinderZone::new(o, Distance::from_meters(50.0), Distance::from_meters(100.0))
            .unwrap();
        let s = s3(&o, 90.0, 10.0, 20.0, 0.0);
        assert!(z.contains(&s));
        assert!(z.boundary_distance(&s).meters() < 0.0);
    }

    #[test]
    fn overflight_above_zone_is_distinguishable() {
        // The key payoff of the 3-D model: flying *over* a low cylinder is
        // legal, which the 2-D model cannot express.
        let o = p(40.0, -88.0);
        let z =
            CylinderZone::new(o, Distance::from_meters(30.0), Distance::from_meters(60.0)).unwrap();
        // Pass directly over the zone at 200 m altitude, samples 2 s apart.
        let s1 = s3(&o, 270.0, 50.0, 200.0, 0.0);
        let s2 = s3(&o, 90.0, 50.0, 200.0, 2.0);
        let e = ReachableSet3d::from_samples(&s1, &s2, FAA_MAX_SPEED).unwrap();
        // 2-D equivalent would intersect; 3-D exact test must not, since
        // the ellipsoid (vertical half-extent < 45 m around alt 200 m)
        // stays above the 60 m top... budget = 89.4, focal dist = 100:
        // actually impossible pair; use dt=3 s for a feasible pair.
        let s2 = s3(&o, 90.0, 50.0, 200.0, 3.0);
        let e = {
            let _ = e;
            ReachableSet3d::from_samples(&s1, &s2, FAA_MAX_SPEED).unwrap()
        };
        assert!(!e.is_empty());
        assert!(!e.intersects_zone(&z));
        assert!(e.paper_sufficient(&z, &s1, &s2));
    }

    #[test]
    fn slow_pass_beside_zone_at_low_altitude_intersects() {
        let o = p(40.0, -88.0);
        let z =
            CylinderZone::new(o, Distance::from_meters(30.0), Distance::from_meters(60.0)).unwrap();
        // Samples 60 s apart right next to the zone at 20 m altitude: the
        // ellipsoid easily covers the cylinder.
        let s1 = s3(&o, 90.0, 50.0, 20.0, 0.0);
        let s2 = s3(&o, 90.0, 60.0, 20.0, 60.0);
        let e = ReachableSet3d::from_samples(&s1, &s2, FAA_MAX_SPEED).unwrap();
        assert!(e.intersects_zone(&z));
        assert!(!e.paper_sufficient(&z, &s1, &s2));
    }

    #[test]
    fn empty_ellipsoid_intersects_nothing() {
        let o = p(40.0, -88.0);
        let z =
            CylinderZone::new(o, Distance::from_meters(30.0), Distance::from_meters(60.0)).unwrap();
        let s1 = s3(&o, 90.0, 0.0, 10.0, 0.0);
        let s2 = s3(&o, 90.0, 5_000.0, 10.0, 1.0);
        let e = ReachableSet3d::from_samples(&s1, &s2, FAA_MAX_SPEED).unwrap();
        assert!(e.is_empty());
        assert!(!e.intersects_zone(&z));
    }

    #[test]
    fn check_alibi_3d_high_pass_sufficient() {
        let o = p(40.0, -88.0);
        let zone =
            CylinderZone::new(o, Distance::from_meters(30.0), Distance::from_meters(60.0)).unwrap();
        // Cross over the zone at 200 m altitude, samples every 2 s.
        let trace: Vec<GpsSample3d> = (0..10)
            .map(|k| {
                s3(
                    &o,
                    if k < 5 { 270.0 } else { 90.0 },
                    (k as f64 - 4.5).abs() * 20.0,
                    200.0,
                    k as f64 * 2.0,
                )
            })
            .collect();
        let report = check_alibi_3d(&trace, &[zone], FAA_MAX_SPEED);
        assert!(report.is_sufficient(), "{report:?}");
    }

    #[test]
    fn check_alibi_3d_flags_violation_and_gaps() {
        let o = p(40.0, -88.0);
        let zone =
            CylinderZone::new(o, Distance::from_meters(30.0), Distance::from_meters(60.0)).unwrap();
        // One sample inside the cylinder, plus a huge time gap nearby.
        let trace = vec![
            s3(&o, 90.0, 100.0, 20.0, 0.0),
            s3(&o, 90.0, 10.0, 20.0, 10.0), // inside (radial 10 < 30, alt 20 < 60)
            s3(&o, 90.0, 100.0, 20.0, 120.0), // long gap beside the zone
            s3(&o, 90.0, 110.0, 20.0, 240.0),
        ];
        let report = check_alibi_3d(&trace, &[zone], FAA_MAX_SPEED);
        assert_eq!(report.violations, vec![1]);
        assert!(!report.insufficient_pairs.is_empty());
        assert!(!report.is_sufficient());
    }

    #[test]
    fn check_alibi_3d_empty_inputs() {
        let report = check_alibi_3d(&[], &[], FAA_MAX_SPEED);
        assert!(report.is_sufficient());
    }

    #[test]
    fn paper_criterion_sound_wrt_exact_3d() {
        let o = p(40.0, -88.0);
        let z =
            CylinderZone::new(o, Distance::from_meters(40.0), Distance::from_meters(80.0)).unwrap();
        for (d1, d2, alt, dt) in [
            (100.0, 120.0, 30.0, 1.0),
            (100.0, 120.0, 30.0, 3.0),
            (60.0, 70.0, 120.0, 2.0),
            (500.0, 510.0, 10.0, 10.0),
        ] {
            let s1 = s3(&o, 90.0, d1, alt, 0.0);
            let s2 = s3(&o, 90.0, d2, alt, dt);
            let e = ReachableSet3d::from_samples(&s1, &s2, FAA_MAX_SPEED).unwrap();
            if e.paper_sufficient(&z, &s1, &s2) {
                assert!(
                    !e.intersects_zone(&z),
                    "paper criterion accepted an intersecting pair d1={d1} d2={d2} alt={alt} dt={dt}"
                );
            }
        }
    }
}
