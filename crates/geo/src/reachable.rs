//! The possible-traveling-range ellipse (paper §IV-C1).
//!
//! Given two GPS samples `S1 = (x1, y1, t1)` and `S2 = (x2, y2, t2)` and a
//! maximum speed `v_max`, every position the drone can have occupied during
//! `[t1, t2]` lies inside the ellipse with foci at the two sample positions
//! and a distance-sum budget of `v_max · (t2 − t1)`:
//!
//! ```text
//! E(S1, S2) = { p : d(p, S1) + d(p, S2) <= v_max (t2 - t1) }
//! ```
//!
//! A sample pair proves alibi against a no-fly zone `z` exactly when this
//! ellipse does not intersect the zone's disk. The paper evaluates this via
//! the conservative boundary-distance criterion `D1 + D2 > v_max (t2 − t1)`
//! (eq. 2); this module provides both that criterion and an exact
//! ellipse/disk intersection test, so the conservatism can be quantified.

use std::fmt;

use crate::projection::{Enu, LocalTangentPlane};
use crate::units::{Distance, Speed};
use crate::{GpsSample, NoFlyZone};

/// The possible-traveling-range ellipse between two GPS samples.
#[derive(Debug, Clone, Copy)]
pub struct ReachableSet {
    plane: LocalTangentPlane,
    f1: Enu,
    f2: Enu,
    /// The distance-sum budget `v_max (t2 - t1)` in meters (the ellipse's
    /// major-axis length `2a`).
    budget_m: f64,
}

impl ReachableSet {
    /// Builds the reachable set between two samples, or `None` when
    /// `s2` does not strictly follow `s1` in time.
    ///
    /// The local tangent plane is centred on the midpoint of the two
    /// sample positions, which keeps projection error negligible even for
    /// widely spaced samples.
    pub fn from_samples(s1: &GpsSample, s2: &GpsSample, v_max: Speed) -> Option<Self> {
        let dt = s2.time().since(s1.time());
        if dt.secs() <= 0.0 || !v_max.mps().is_finite() || v_max.mps() <= 0.0 {
            return None;
        }
        let mid = s1.point().lerp(&s2.point(), 0.5);
        let plane = LocalTangentPlane::new(mid);
        Some(ReachableSet {
            plane,
            f1: plane.project(&s1.point()),
            f2: plane.project(&s2.point()),
            budget_m: v_max.mps() * dt.secs(),
        })
    }

    /// The distance-sum budget `v_max (t2 − t1)` (the major-axis length).
    pub fn budget(&self) -> Distance {
        Distance::from_meters(self.budget_m)
    }

    /// The distance between the two foci (straight-line distance between
    /// the sample positions).
    pub fn focal_distance(&self) -> Distance {
        self.f1.distance_to(&self.f2)
    }

    /// `true` when the reachable set is empty: the samples are farther
    /// apart than `v_max` allows, i.e. the trace itself is physically
    /// impossible. Verification treats this as evidence of forgery.
    pub fn is_empty(&self) -> bool {
        self.focal_distance().meters() > self.budget_m
    }

    /// `true` if the geographic point `p` lies in the reachable set.
    pub fn contains(&self, p: &crate::GeoPoint) -> bool {
        let e = self.plane.project(p);
        self.sum_at(&e) <= self.budget_m
    }

    fn sum_at(&self, p: &Enu) -> f64 {
        p.distance_to(&self.f1).meters() + p.distance_to(&self.f2).meters()
    }

    /// The minimum of `d1 + d2` over the zone's disk, in meters.
    ///
    /// The reachable set intersects the disk iff this minimum is at most
    /// the budget. The distance-sum function is convex, so:
    ///
    /// * if the disk meets the focal segment, the minimum is the focal
    ///   distance itself (attained on the segment);
    /// * otherwise the minimum lies on the disk boundary, where the convex
    ///   function restricted to the circle is unimodal and a coarse scan
    ///   plus ternary refinement finds it to sub-millimeter accuracy.
    pub fn min_distance_sum_over_zone(&self, zone: &NoFlyZone) -> Distance {
        let c = self.plane.project(&zone.center());
        let r = zone.radius().meters();

        if dist_point_segment(&c, &self.f1, &self.f2) <= r {
            return self.focal_distance();
        }

        // Minimise sum_at over the circle of radius r around c.
        let eval = |theta: f64| {
            let p = Enu::new(c.east + r * theta.cos(), c.north + r * theta.sin());
            self.sum_at(&p)
        };
        // Coarse scan to bracket the unique minimum.
        const COARSE: usize = 64;
        let mut best_i = 0;
        let mut best_v = f64::INFINITY;
        for i in 0..COARSE {
            let theta = i as f64 / COARSE as f64 * std::f64::consts::TAU;
            let v = eval(theta);
            if v < best_v {
                best_v = v;
                best_i = i;
            }
        }
        let step = std::f64::consts::TAU / COARSE as f64;
        let mut lo = (best_i as f64 - 1.0) * step;
        let mut hi = (best_i as f64 + 1.0) * step;
        for _ in 0..80 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if eval(m1) <= eval(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        Distance::from_meters(eval((lo + hi) / 2.0))
    }

    /// Exact test: does the reachable set intersect the zone's disk?
    ///
    /// An empty reachable set (physically impossible sample pair)
    /// intersects nothing.
    pub fn intersects_zone(&self, zone: &NoFlyZone) -> bool {
        if self.is_empty() {
            return false;
        }
        self.min_distance_sum_over_zone(zone).meters() <= self.budget_m
    }

    /// The paper's conservative sufficiency criterion (eq. 2): the sum of
    /// the two boundary distances exceeds the budget.
    ///
    /// Returns `true` when the pair *proves* the drone stayed out of the
    /// zone. This implies [`intersects_zone`](Self::intersects_zone) is
    /// `false` (soundness, checked by property tests), but the converse
    /// may fail by a margin of at most `2r` — the criterion treats the
    /// whole disk as reachable whenever the nearest boundary points to
    /// each focus are jointly reachable.
    pub fn paper_sufficient(&self, zone: &NoFlyZone) -> bool {
        let s1 = self.plane.unproject(&self.f1);
        let s2 = self.plane.unproject(&self.f2);
        let d1 = zone.boundary_distance(&s1).meters();
        let d2 = zone.boundary_distance(&s2).meters();
        d1 + d2 > self.budget_m
    }
}

impl fmt::Display for ReachableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ReachableSet[2a={:.1}m, 2c={:.1}m]",
            self.budget_m,
            self.focal_distance().meters()
        )
    }
}

/// Distance from point `p` to the closed segment `ab`, in meters.
fn dist_point_segment(p: &Enu, a: &Enu, b: &Enu) -> f64 {
    let ab = Enu::new(b.east - a.east, b.north - a.north);
    let ap = Enu::new(p.east - a.east, p.north - a.north);
    let len_sq = ab.east * ab.east + ab.north * ab.north;
    if len_sq == 0.0 {
        return p.distance_to(a).meters();
    }
    let t = ((ap.east * ab.east + ap.north * ab.north) / len_sq).clamp(0.0, 1.0);
    let proj = Enu::new(a.east + t * ab.east, a.north + t * ab.north);
    p.distance_to(&proj).meters()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Timestamp;
    use crate::GeoPoint;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn sample_at(origin: &GeoPoint, bearing: f64, dist_m: f64, t: f64) -> GpsSample {
        GpsSample::new(
            origin.destination(bearing, Distance::from_meters(dist_m)),
            Timestamp::from_secs(t),
        )
    }

    const V: Speed = crate::units::FAA_MAX_SPEED; // 44.704 m/s

    #[test]
    fn non_increasing_time_yields_none() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 0.0, 0.0, 5.0);
        let s2 = sample_at(&o, 0.0, 10.0, 5.0);
        assert!(ReachableSet::from_samples(&s1, &s2, V).is_none());
        let s3 = sample_at(&o, 0.0, 10.0, 4.0);
        assert!(ReachableSet::from_samples(&s1, &s3, V).is_none());
    }

    #[test]
    fn budget_is_vmax_times_dt() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 0.0, 0.0, 0.0);
        let s2 = sample_at(&o, 0.0, 10.0, 2.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        assert!((e.budget().meters() - 2.0 * V.mps()).abs() < 1e-9);
    }

    #[test]
    fn impossible_pair_is_empty() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 0.0, 0.0, 0.0);
        // 1 km apart in 1 s at 44.7 m/s max: impossible.
        let s2 = sample_at(&o, 0.0, 1_000.0, 1.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        assert!(e.is_empty());
        let z = NoFlyZone::new(o, Distance::from_meters(100.0));
        assert!(!e.intersects_zone(&z));
    }

    #[test]
    fn contains_focus_and_midpoint() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 90.0, 0.0, 0.0);
        let s2 = sample_at(&o, 90.0, 50.0, 10.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        assert!(e.contains(&s1.point()));
        assert!(e.contains(&s2.point()));
        assert!(e.contains(&s1.point().lerp(&s2.point(), 0.5)));
    }

    #[test]
    fn far_point_not_contained() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 90.0, 0.0, 0.0);
        let s2 = sample_at(&o, 90.0, 50.0, 2.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        // Budget is ~89 m; a point 1 km north is unreachable.
        let far = o.destination(0.0, Distance::from_meters(1_000.0));
        assert!(!e.contains(&far));
    }

    #[test]
    fn zone_far_away_is_disjoint_by_both_tests() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 90.0, 0.0, 0.0);
        let s2 = sample_at(&o, 90.0, 40.0, 1.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        let z = NoFlyZone::new(
            o.destination(0.0, Distance::from_km(2.0)),
            Distance::from_meters(50.0),
        );
        assert!(!e.intersects_zone(&z));
        assert!(e.paper_sufficient(&z));
    }

    #[test]
    fn zone_containing_focus_intersects() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 90.0, 0.0, 0.0);
        let s2 = sample_at(&o, 90.0, 40.0, 1.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        let z = NoFlyZone::new(o, Distance::from_meters(10.0));
        assert!(e.intersects_zone(&z));
        assert!(!e.paper_sufficient(&z));
    }

    #[test]
    fn zone_crossing_focal_segment_intersects() {
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 90.0, 0.0, 0.0);
        let s2 = sample_at(&o, 90.0, 200.0, 10.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        // Zone centred between the two samples.
        let z = NoFlyZone::new(
            o.destination(90.0, Distance::from_meters(100.0)),
            Distance::from_meters(5.0),
        );
        assert!(e.intersects_zone(&z));
    }

    #[test]
    fn tangent_case_matches_analytic_minimum() {
        // Degenerate ellipse (both samples at the same point): the minimum
        // distance sum over a disk at distance D with radius r is 2(D - r).
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 0.0, 0.0, 0.0);
        let s2 = sample_at(&o, 0.0, 0.0, 1.0);
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        let z = NoFlyZone::new(
            o.destination(37.0, Distance::from_meters(500.0)),
            Distance::from_meters(100.0),
        );
        let min = e.min_distance_sum_over_zone(&z).meters();
        assert!((min - 800.0).abs() < 0.6, "got {min}");
    }

    #[test]
    fn paper_criterion_is_conservative() {
        // A configuration where the exact test says "disjoint" but the
        // paper criterion (which treats the whole disk as a point cloud at
        // boundary distance) says "maybe reachable": zone to the *side*.
        let o = p(40.0, -88.0);
        let s1 = sample_at(&o, 90.0, 0.0, 0.0);
        let s2 = sample_at(&o, 90.0, 80.0, 2.0); // budget ~89.4 m
        let e = ReachableSet::from_samples(&s1, &s2, V).unwrap();
        // Zone north of the midpoint: boundary distance from each focus
        // ~= sqrt(40^2+60^2)-15 ≈ 57.1; D1+D2 ≈ 114 > 89.4 so the paper
        // criterion declares sufficiency here. Shrink until it flips.
        let z = NoFlyZone::new(
            o.destination(90.0, Distance::from_meters(40.0))
                .destination(0.0, Distance::from_meters(52.0)),
            Distance::from_meters(15.0),
        );
        // Whatever the paper criterion says, it must never contradict the
        // exact test in the unsafe direction.
        if e.paper_sufficient(&z) {
            assert!(!e.intersects_zone(&z));
        }
    }
}
