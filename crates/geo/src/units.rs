//! Strongly-typed physical quantities.
//!
//! The paper mixes imperial units (miles for NFZ radii, feet for distances,
//! mph for the FAA speed cap) with SI units. Newtypes keep the conversions
//! explicit and rule out unit-confusion bugs in the sufficiency predicates.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Mean Earth radius in meters, used by the haversine formula.
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// Meters per statute mile.
pub const METERS_PER_MILE: f64 = 1_609.344;

/// Meters per foot.
pub const METERS_PER_FOOT: f64 = 0.3048;

/// The FAA speed cap for small UAVs: 100 mph (paper §IV-C1, 14 CFR 107.51).
///
/// This is the `v_max` used throughout the possible-traveling-range
/// computations.
pub const FAA_MAX_SPEED: Speed = Speed(44.704);

/// A distance, stored internally in meters.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Distance(f64);

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance(0.0);

    /// Creates a distance from meters.
    pub fn from_meters(m: f64) -> Self {
        Distance(m)
    }

    /// Creates a distance from statute miles.
    pub fn from_miles(mi: f64) -> Self {
        Distance(mi * METERS_PER_MILE)
    }

    /// Creates a distance from feet.
    pub fn from_feet(ft: f64) -> Self {
        Distance(ft * METERS_PER_FOOT)
    }

    /// Creates a distance from kilometers.
    pub fn from_km(km: f64) -> Self {
        Distance(km * 1_000.0)
    }

    /// This distance in meters.
    pub fn meters(self) -> f64 {
        self.0
    }

    /// This distance in statute miles.
    pub fn miles(self) -> f64 {
        self.0 / METERS_PER_MILE
    }

    /// This distance in feet.
    pub fn feet(self) -> f64 {
        self.0 / METERS_PER_FOOT
    }

    /// This distance in kilometers.
    pub fn km(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Absolute value (distances arising from subtraction may be negative;
    /// e.g. a signed distance to a zone boundary).
    pub fn abs(self) -> Self {
        Distance(self.0.abs())
    }

    /// Returns the smaller of two distances.
    pub fn min(self, other: Self) -> Self {
        Distance(self.0.min(other.0))
    }

    /// Returns the larger of two distances.
    pub fn max(self, other: Self) -> Self {
        Distance(self.0.max(other.0))
    }

    /// `true` if the value is finite (not NaN or infinite).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Distance {
    type Output = Distance;
    fn add(self, rhs: Distance) -> Distance {
        Distance(self.0 + rhs.0)
    }
}

impl AddAssign for Distance {
    fn add_assign(&mut self, rhs: Distance) {
        self.0 += rhs.0;
    }
}

impl Sub for Distance {
    type Output = Distance;
    fn sub(self, rhs: Distance) -> Distance {
        Distance(self.0 - rhs.0)
    }
}

impl SubAssign for Distance {
    fn sub_assign(&mut self, rhs: Distance) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Distance {
    type Output = Distance;
    fn mul(self, rhs: f64) -> Distance {
        Distance(self.0 * rhs)
    }
}

impl Div<f64> for Distance {
    type Output = Distance;
    fn div(self, rhs: f64) -> Distance {
        Distance(self.0 / rhs)
    }
}

impl Div<Speed> for Distance {
    type Output = Duration;
    fn div(self, rhs: Speed) -> Duration {
        Duration::from_secs(self.0 / rhs.0)
    }
}

impl Neg for Distance {
    type Output = Distance;
    fn neg(self) -> Distance {
        Distance(-self.0)
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= METERS_PER_MILE {
            write!(f, "{:.2} mi", self.miles())
        } else {
            write!(f, "{:.1} m", self.0)
        }
    }
}

/// A speed, stored internally in meters per second.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Speed(f64);

impl Speed {
    /// Creates a speed from meters per second.
    pub fn from_mps(mps: f64) -> Self {
        Speed(mps)
    }

    /// Creates a speed from miles per hour.
    pub fn from_mph(mph: f64) -> Self {
        Speed(mph * METERS_PER_MILE / 3_600.0)
    }

    /// Creates a speed from kilometers per hour.
    pub fn from_kmh(kmh: f64) -> Self {
        Speed(kmh / 3.6)
    }

    /// This speed in meters per second.
    pub fn mps(self) -> f64 {
        self.0
    }

    /// This speed in miles per hour.
    pub fn mph(self) -> f64 {
        self.0 * 3_600.0 / METERS_PER_MILE
    }
}

impl Mul<Duration> for Speed {
    type Output = Distance;
    fn mul(self, rhs: Duration) -> Distance {
        Distance(self.0 * rhs.0)
    }
}

impl Mul<f64> for Speed {
    type Output = Speed;
    fn mul(self, rhs: f64) -> Speed {
        Speed(self.0 * rhs)
    }
}

impl fmt::Display for Speed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} m/s", self.0)
    }
}

/// A span of time in seconds.
///
/// Unlike [`std::time::Duration`] this may be fractional and is cheap to do
/// arithmetic on; all simulation time in the workspace uses this type.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Duration(f64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from (possibly fractional) seconds.
    pub fn from_secs(s: f64) -> Self {
        Duration(s)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Duration(ms / 1_000.0)
    }

    /// Creates a duration from minutes.
    pub fn from_mins(m: f64) -> Self {
        Duration(m * 60.0)
    }

    /// This duration in seconds.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// This duration in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Self) -> Self {
        Duration(self.0.max(other.0))
    }

    /// `true` if the duration is non-negative.
    pub fn is_non_negative(self) -> bool {
        self.0 >= 0.0
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    fn div(self, rhs: f64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} s", self.0)
    }
}

/// An absolute point in time, in seconds since an arbitrary epoch.
///
/// The paper's samples carry a GPS timestamp; in this reproduction all
/// timestamps come from the simulation clock and only differences matter.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Timestamp(f64);

impl Timestamp {
    /// The epoch (t = 0).
    pub const EPOCH: Timestamp = Timestamp(0.0);

    /// Creates a timestamp from seconds since the epoch.
    pub fn from_secs(s: f64) -> Self {
        Timestamp(s)
    }

    /// Seconds since the epoch.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// The (signed) duration from `earlier` to `self`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mile_round_trip() {
        let d = Distance::from_miles(5.0);
        assert!((d.miles() - 5.0).abs() < 1e-12);
        assert!((d.meters() - 8046.72).abs() < 1e-9);
    }

    #[test]
    fn feet_round_trip() {
        let d = Distance::from_feet(30.0);
        assert!((d.feet() - 30.0).abs() < 1e-12);
        assert!((d.meters() - 9.144).abs() < 1e-12);
    }

    #[test]
    fn faa_max_speed_is_100_mph() {
        assert!((FAA_MAX_SPEED.mph() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn speed_times_duration_is_distance() {
        let d = Speed::from_mps(10.0) * Duration::from_secs(3.0);
        assert!((d.meters() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn distance_over_speed_is_duration() {
        let t = Distance::from_meters(100.0) / Speed::from_mps(25.0);
        assert!((t.secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t0 = Timestamp::from_secs(10.0);
        let t1 = t0 + Duration::from_secs(2.5);
        assert!((t1.secs() - 12.5).abs() < 1e-12);
        assert!((t1.since(t0).secs() - 2.5).abs() < 1e-12);
        assert!(((t1 - t0).secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn distance_ordering_and_minmax() {
        let a = Distance::from_meters(1.0);
        let b = Distance::from_meters(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn negative_distance_abs() {
        let d = Distance::from_meters(3.0) - Distance::from_meters(10.0);
        assert!(d.meters() < 0.0);
        assert!((d.abs().meters() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(format!("{}", Distance::from_meters(12.34)), "12.3 m");
        assert_eq!(format!("{}", Distance::from_miles(2.0)), "2.00 mi");
    }
}
