//! Local tangent-plane (east/north) projection.
//!
//! The paper's geometry (ellipses, circles, distances) is planar. At the
//! scale of a drone flight (a few miles) the Earth is locally flat to within
//! centimeters, so we project WGS-84 coordinates onto an equirectangular
//! east/north plane centred at a chosen origin and do all geometry there.

use std::fmt;

use crate::units::{Distance, EARTH_RADIUS_M};
use crate::GeoPoint;

/// A position in a local east/north plane, in meters.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Enu {
    /// Meters east of the plane origin.
    pub east: f64,
    /// Meters north of the plane origin.
    pub north: f64,
}

impl Enu {
    /// Creates an ENU position from east/north offsets in meters.
    pub fn new(east: f64, north: f64) -> Self {
        Enu { east, north }
    }

    /// Euclidean distance to `other` in the plane.
    pub fn distance_to(&self, other: &Enu) -> Distance {
        Distance::from_meters((self.east - other.east).hypot(self.north - other.north))
    }

    /// Squared Euclidean distance in m², for comparisons without a sqrt.
    pub fn distance_sq(&self, other: &Enu) -> f64 {
        let de = self.east - other.east;
        let dn = self.north - other.north;
        de * de + dn * dn
    }

    /// The midpoint of `self` and `other`.
    pub fn midpoint(&self, other: &Enu) -> Enu {
        Enu::new(
            (self.east + other.east) / 2.0,
            (self.north + other.north) / 2.0,
        )
    }
}

impl fmt::Display for Enu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.1} E, {:.1} N]", self.east, self.north)
    }
}

/// An equirectangular projection centred on an origin point.
///
/// Within ~50 km of the origin the projection error is well below GPS noise,
/// and crucially it preserves the *ordering* of distances, so sufficiency
/// decisions match those made on true great-circle distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTangentPlane {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl LocalTangentPlane {
    /// Creates a plane tangent at `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        LocalTangentPlane {
            origin,
            cos_lat0: origin.lat_rad().cos(),
        }
    }

    /// The origin this plane is tangent at.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic point into the plane.
    pub fn project(&self, p: &GeoPoint) -> Enu {
        let dlat = (p.lat_deg() - self.origin.lat_deg()).to_radians();
        let dlon = (p.lon_deg() - self.origin.lon_deg()).to_radians();
        Enu {
            east: dlon * self.cos_lat0 * EARTH_RADIUS_M,
            north: dlat * EARTH_RADIUS_M,
        }
    }

    /// Inverse projection: recovers the geographic point for an ENU offset.
    ///
    /// # Panics
    ///
    /// Panics if the unprojected point leaves the valid latitude range,
    /// which cannot happen for offsets within the plane's ~50 km validity.
    pub fn unproject(&self, e: &Enu) -> GeoPoint {
        let lat = self.origin.lat_deg() + (e.north / EARTH_RADIUS_M).to_degrees();
        let lon = self.origin.lon_deg() + (e.east / (EARTH_RADIUS_M * self.cos_lat0)).to_degrees();
        GeoPoint::new(lat, lon).expect("unprojection within plane validity range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn origin_projects_to_zero() {
        let o = p(40.1, -88.2);
        let plane = LocalTangentPlane::new(o);
        let e = plane.project(&o);
        assert!(e.east.abs() < 1e-9 && e.north.abs() < 1e-9);
    }

    #[test]
    fn project_unproject_round_trip() {
        let plane = LocalTangentPlane::new(p(40.1, -88.2));
        for (lat, lon) in [(40.15, -88.25), (40.0, -88.0), (40.1, -88.2)] {
            let q = p(lat, lon);
            let rt = plane.unproject(&plane.project(&q));
            assert!((rt.lat_deg() - lat).abs() < 1e-12);
            assert!((rt.lon_deg() - lon).abs() < 1e-12);
        }
    }

    #[test]
    fn planar_distance_matches_haversine_at_short_range() {
        let o = p(40.1, -88.2);
        let plane = LocalTangentPlane::new(o);
        let q = o.destination(63.0, Distance::from_km(5.0));
        let planar = plane.project(&o).distance_to(&plane.project(&q));
        let sphere = o.distance_to(&q);
        let rel = (planar.meters() - sphere.meters()).abs() / sphere.meters();
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn east_displacement_maps_to_positive_east() {
        let o = p(40.0, -88.0);
        let plane = LocalTangentPlane::new(o);
        let q = o.destination(90.0, Distance::from_km(1.0));
        let e = plane.project(&q);
        assert!(e.east > 990.0 && e.east < 1010.0, "east {}", e.east);
        assert!(e.north.abs() < 10.0, "north {}", e.north);
    }

    #[test]
    fn midpoint_and_distance_sq() {
        let a = Enu::new(0.0, 0.0);
        let b = Enu::new(6.0, 8.0);
        assert_eq!(a.midpoint(&b), Enu::new(3.0, 4.0));
        assert!((a.distance_sq(&b) - 100.0).abs() < 1e-12);
        assert!((a.distance_to(&b).meters() - 10.0).abs() < 1e-12);
    }
}
