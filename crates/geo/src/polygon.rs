//! Arbitrary-shaped no-fly zones (paper §VII-B2).
//!
//! A zone owner may register a polygonal zone; at registration time the
//! auditor covers it with its *smallest enclosing circle* and uses that
//! circle everywhere else in the protocol. The reduction happens once per
//! zone, so its cost is negligible (the paper cites Megiddo's linear-time
//! algorithm; we use Welzl's randomized linear-expected-time algorithm,
//! which is the standard practical choice).

use std::fmt;

use crate::projection::{Enu, LocalTangentPlane};
use crate::units::Distance;
use crate::{GeoError, GeoPoint, NoFlyZone};

/// A polygonal no-fly zone described by its vertices (at least three).
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonZone {
    vertices: Vec<GeoPoint>,
}

impl PolygonZone {
    /// Creates a polygonal zone from its vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegeneratePolygon`] when fewer than three
    /// vertices are supplied.
    pub fn new(vertices: Vec<GeoPoint>) -> Result<Self, GeoError> {
        if vertices.len() < 3 {
            return Err(GeoError::DegeneratePolygon(vertices.len()));
        }
        Ok(PolygonZone { vertices })
    }

    /// The polygon's vertices.
    pub fn vertices(&self) -> &[GeoPoint] {
        &self.vertices
    }

    /// Reduces the polygon to the circular zone the auditor registers:
    /// the smallest circle enclosing every vertex.
    ///
    /// The circle is computed on a local tangent plane centred at the
    /// vertex centroid, then mapped back to a geographic centre + radius.
    pub fn enclosing_zone(&self) -> NoFlyZone {
        let centroid_lat =
            self.vertices.iter().map(GeoPoint::lat_deg).sum::<f64>() / self.vertices.len() as f64;
        let centroid_lon =
            self.vertices.iter().map(GeoPoint::lon_deg).sum::<f64>() / self.vertices.len() as f64;
        let centroid =
            GeoPoint::new(centroid_lat, centroid_lon).expect("centroid of valid points is valid");
        let plane = LocalTangentPlane::new(centroid);
        let pts: Vec<Enu> = self.vertices.iter().map(|v| plane.project(v)).collect();
        let circle = smallest_enclosing_circle(&pts);
        // Radius 0 cannot happen for a valid (3+-vertex, non-coincident)
        // polygon, but guard against a degenerate all-equal-vertex input.
        let radius = Distance::from_meters(circle.radius_m.max(1e-6));
        NoFlyZone::new(plane.unproject(&circle.center), radius)
    }
}

impl fmt::Display for PolygonZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PolygonZone[{} vertices]", self.vertices.len())
    }
}

/// A circle in the local plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Centre in the plane.
    pub center: Enu,
    /// Radius in meters.
    pub radius_m: f64,
}

impl Circle {
    /// `true` if `p` is inside the circle, with a small tolerance.
    pub fn contains(&self, p: &Enu) -> bool {
        self.center.distance_to(p).meters() <= self.radius_m + 1e-7 * (1.0 + self.radius_m)
    }
}

/// Computes the smallest circle enclosing all `points` (Welzl's algorithm,
/// iterative formulation with move-to-front heuristic).
///
/// Runs in expected linear time for shuffled inputs; we apply a
/// deterministic LCG shuffle so results are reproducible.
///
/// Returns a zero-radius circle at the origin for an empty input.
pub fn smallest_enclosing_circle(points: &[Enu]) -> Circle {
    if points.is_empty() {
        return Circle {
            center: Enu::new(0.0, 0.0),
            radius_m: 0.0,
        };
    }
    let mut pts: Vec<Enu> = points.to_vec();
    // Deterministic Fisher–Yates with a fixed LCG: reproducible runs, and
    // shuffling is what gives Welzl its expected-linear behaviour.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in (1..pts.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        pts.swap(i, j);
    }

    let mut c = Circle {
        center: pts[0],
        radius_m: 0.0,
    };
    for i in 1..pts.len() {
        if c.contains(&pts[i]) {
            continue;
        }
        // pts[i] is on the boundary of the new circle.
        c = Circle {
            center: pts[i],
            radius_m: 0.0,
        };
        for j in 0..i {
            if c.contains(&pts[j]) {
                continue;
            }
            // pts[i] and pts[j] are both on the boundary.
            c = circle_from_two(&pts[i], &pts[j]);
            for k in 0..j {
                if c.contains(&pts[k]) {
                    continue;
                }
                c = circle_from_three(&pts[i], &pts[j], &pts[k]);
            }
        }
    }
    c
}

fn circle_from_two(a: &Enu, b: &Enu) -> Circle {
    let center = a.midpoint(b);
    Circle {
        radius_m: center.distance_to(a).meters(),
        center,
    }
}

fn circle_from_three(a: &Enu, b: &Enu, c: &Enu) -> Circle {
    // Circumcenter via the perpendicular-bisector intersection.
    let ax = a.east;
    let ay = a.north;
    let bx = b.east;
    let by = b.north;
    let cx = c.east;
    let cy = c.north;
    let d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by));
    if d.abs() < 1e-12 {
        // Collinear: fall back to the diametral circle of the two farthest
        // points among the three.
        let ab = circle_from_two(a, b);
        let ac = circle_from_two(a, c);
        let bc = circle_from_two(b, c);
        let mut best = ab;
        for cand in [ac, bc] {
            if cand.radius_m > best.radius_m {
                best = cand;
            }
        }
        return best;
    }
    let ux = ((ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by))
        / d;
    let uy = ((ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax))
        / d;
    let center = Enu::new(ux, uy);
    Circle {
        radius_m: center.distance_to(a).meters(),
        center,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_zero_circle() {
        let c = smallest_enclosing_circle(&[]);
        assert_eq!(c.radius_m, 0.0);
    }

    #[test]
    fn single_point() {
        let c = smallest_enclosing_circle(&[Enu::new(3.0, 4.0)]);
        assert_eq!(c.center, Enu::new(3.0, 4.0));
        assert_eq!(c.radius_m, 0.0);
    }

    #[test]
    fn two_points_diametral() {
        let c = smallest_enclosing_circle(&[Enu::new(0.0, 0.0), Enu::new(10.0, 0.0)]);
        assert!((c.radius_m - 5.0).abs() < 1e-9);
        assert!((c.center.east - 5.0).abs() < 1e-9);
        assert!(c.center.north.abs() < 1e-9);
    }

    #[test]
    fn equilateral_triangle_circumcircle() {
        let h = 3f64.sqrt() / 2.0 * 10.0;
        let pts = [Enu::new(0.0, 0.0), Enu::new(10.0, 0.0), Enu::new(5.0, h)];
        let c = smallest_enclosing_circle(&pts);
        let expected_r = 10.0 / 3f64.sqrt();
        assert!((c.radius_m - expected_r).abs() < 1e-9, "got {}", c.radius_m);
        for p in &pts {
            assert!(c.contains(p));
        }
    }

    #[test]
    fn obtuse_triangle_uses_diametral_circle() {
        // For an obtuse triangle the smallest enclosing circle is the
        // diametral circle of the longest side, not the circumcircle.
        let pts = [Enu::new(0.0, 0.0), Enu::new(10.0, 0.0), Enu::new(5.0, 0.5)];
        let c = smallest_enclosing_circle(&pts);
        assert!((c.radius_m - 5.0).abs() < 1e-6, "got {}", c.radius_m);
    }

    #[test]
    fn collinear_points() {
        let pts = [Enu::new(0.0, 0.0), Enu::new(5.0, 0.0), Enu::new(10.0, 0.0)];
        let c = smallest_enclosing_circle(&pts);
        assert!((c.radius_m - 5.0).abs() < 1e-9);
    }

    #[test]
    fn all_points_enclosed_random_cloud() {
        // Deterministic pseudo-random cloud.
        let mut state: u64 = 42;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 200.0 - 100.0
        };
        let pts: Vec<Enu> = (0..200).map(|_| Enu::new(next(), next())).collect();
        let c = smallest_enclosing_circle(&pts);
        for p in &pts {
            assert!(c.contains(p), "point {p} outside circle r={}", c.radius_m);
        }
        // Minimality spot-check: some point must lie (nearly) on the boundary.
        let max_d = pts
            .iter()
            .map(|p| c.center.distance_to(p).meters())
            .fold(0.0, f64::max);
        assert!((max_d - c.radius_m).abs() < 1e-6);
    }

    #[test]
    fn polygon_zone_rejects_fewer_than_three_vertices() {
        let p = GeoPoint::new(40.0, -88.0).unwrap();
        assert!(matches!(
            PolygonZone::new(vec![p, p]),
            Err(GeoError::DegeneratePolygon(2))
        ));
    }

    #[test]
    fn polygon_zone_encloses_all_vertices() {
        let o = GeoPoint::new(40.0, -88.0).unwrap();
        let verts: Vec<GeoPoint> = [0.0, 72.0, 144.0, 216.0, 288.0]
            .iter()
            .map(|&b| o.destination(b, Distance::from_meters(100.0 + b)))
            .collect();
        let poly = PolygonZone::new(verts.clone()).unwrap();
        let zone = poly.enclosing_zone();
        for v in &verts {
            // Every vertex inside (or on) the registered circle.
            assert!(
                zone.boundary_distance(v).meters() <= 0.5,
                "vertex {} m outside",
                zone.boundary_distance(v).meters()
            );
        }
    }

    #[test]
    fn square_polygon_radius_is_half_diagonal() {
        let o = GeoPoint::new(40.0, -88.0).unwrap();
        let d = Distance::from_meters(100.0);
        let verts = vec![
            o.destination(45.0, d),
            o.destination(135.0, d),
            o.destination(225.0, d),
            o.destination(315.0, d),
        ];
        let zone = PolygonZone::new(verts).unwrap().enclosing_zone();
        assert!(
            (zone.radius().meters() - 100.0).abs() < 0.5,
            "got {}",
            zone.radius().meters()
        );
    }
}
