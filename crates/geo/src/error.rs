//! Error type for geometric and geodetic operations.

use std::error::Error;
use std::fmt;

/// Errors returned by geometry and geodesy operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A latitude was outside `[-90, +90]` degrees or not finite.
    InvalidLatitude(f64),
    /// A longitude was outside `[-180, +180]` degrees or not finite.
    InvalidLongitude(f64),
    /// A radius or other distance that must be positive was not.
    NonPositiveDistance(f64),
    /// A speed that must be positive was not.
    NonPositiveSpeed(f64),
    /// A polygon had fewer than three vertices.
    DegeneratePolygon(usize),
    /// A trajectory needs at least two waypoints.
    TooFewWaypoints(usize),
    /// Timestamps in a trace were not strictly increasing.
    NonMonotonicTime {
        /// Index of the offending sample.
        index: usize,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} is outside [-90, 90] degrees")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} is outside [-180, 180] degrees")
            }
            GeoError::NonPositiveDistance(v) => {
                write!(f, "distance {v} m must be positive and finite")
            }
            GeoError::NonPositiveSpeed(v) => {
                write!(f, "speed {v} m/s must be positive and finite")
            }
            GeoError::DegeneratePolygon(n) => {
                write!(f, "polygon with {n} vertices needs at least 3")
            }
            GeoError::TooFewWaypoints(n) => {
                write!(f, "trajectory with {n} waypoints needs at least 2")
            }
            GeoError::NonMonotonicTime { index } => {
                write!(
                    f,
                    "sample timestamps not strictly increasing at index {index}"
                )
            }
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let cases: Vec<GeoError> = vec![
            GeoError::InvalidLatitude(95.0),
            GeoError::InvalidLongitude(200.0),
            GeoError::NonPositiveDistance(-1.0),
            GeoError::NonPositiveSpeed(0.0),
            GeoError::DegeneratePolygon(2),
            GeoError::TooFewWaypoints(1),
            GeoError::NonMonotonicTime { index: 3 },
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
