//! SHA-1 (FIPS 180-4).
//!
//! The paper's prototype signs GPS tuples with
//! `TEE_ALG_RSASSA_PKCS1_V1_5_SHA1`; we therefore need SHA-1 for wire
//! compatibility with that choice. SHA-1 is cryptographically broken for
//! collision resistance — the crate also provides SHA-256 and the RSA
//! layer defaults to it for new code.

/// Digest size in bytes.
pub const SHA1_LEN: usize = 20;

/// Incremental SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalises and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; SHA1_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Length fits the remaining 8 bytes exactly; append directly.
        self.total_len = self.total_len.wrapping_add(8); // keep counter sane
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; SHA1_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; SHA1_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha1(data));
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise padding around the 55/56/64-byte boundaries.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xABu8; len];
            let mut h = Sha1::new();
            h.update(&data);
            let inc = h.finalize();
            assert_eq!(inc, sha1(&data), "length {len}");
        }
    }
}
