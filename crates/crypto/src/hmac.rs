//! HMAC-SHA256 (RFC 2104) — used by the §VII-A1a symmetric-key extension,
//! where the drone TEE and the auditor establish an ephemeral MAC key per
//! flight instead of computing per-sample RSA signatures.

use crate::sha256::{sha256, Sha256, SHA256_LEN};

/// Output size of [`hmac_sha256`] in bytes.
pub const HMAC_SHA256_LEN: usize = SHA256_LEN;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; HMAC_SHA256_LEN] {
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..SHA256_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5Cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verifies an HMAC tag with a timing-balanced comparison.
///
/// (Full constant-time discipline is out of scope for this research
/// implementation; this avoids the obvious early-exit at least.)
pub fn hmac_sha256_verify(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
    if tag.len() != HMAC_SHA256_LEN {
        return false;
    }
    let expected = hmac_sha256(key, msg);
    let mut acc = 0u8;
    for (a, b) in expected.iter().zip(tag.iter()) {
        acc |= a ^ b;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = b"shared-flight-key";
        let msg = b"sample";
        let tag = hmac_sha256(key, msg);
        assert!(hmac_sha256_verify(key, msg, &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!hmac_sha256_verify(key, msg, &bad));
        assert!(!hmac_sha256_verify(key, b"other", &tag));
        assert!(!hmac_sha256_verify(key, msg, &tag[..31]));
        assert!(!hmac_sha256_verify(b"wrong key", msg, &tag));
    }
}
