//! RSA with PKCS#1 v1.5 padding — the algorithms named by the paper.
//!
//! The AliDrone prototype signs GPS tuples inside the TEE with
//! `TEE_ALG_RSASSA_PKCS1_V1_5_SHA1` and encrypts the Proof-of-Alibi for
//! the auditor with `RSAES_PKCS1_v1_5` (paper §V-B/§V-C). This module
//! implements both, plus SHA-256 signing for modern callers, over the
//! from-scratch [`BigUint`] arithmetic.
//!
//! Private-key operations use the Chinese Remainder Theorem, which is
//! also what real TEE crypto stacks do; this matters for the benchmarks
//! because CRT makes the 2048-bit/1024-bit signing cost ratio realistic.

use std::cell::RefCell;
use std::sync::Arc;

use crate::rng::Rng;

use crate::bigint::{BigUint, MontgomeryContext};
use crate::error::CryptoError;
use crate::prime::gen_prime;
use crate::sha1::sha1;
use crate::sha256::sha256;

/// ASN.1 DER `DigestInfo` prefix for SHA-1 (RFC 8017 §9.2 note 1).
const SHA1_PREFIX: [u8; 15] = [
    0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
];

/// ASN.1 DER `DigestInfo` prefix for SHA-256.
const SHA256_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// Hash algorithm used inside an RSASSA-PKCS1-v1.5 signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// SHA-1 — what the paper's prototype uses
    /// (`TEE_ALG_RSASSA_PKCS1_V1_5_SHA1`). Broken for collisions; kept
    /// for fidelity and benchmarks.
    Sha1,
    /// SHA-256 — the default for new code.
    Sha256,
}

impl HashAlg {
    fn digest_info(&self, msg: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Sha1 => {
                let mut v = SHA1_PREFIX.to_vec();
                v.extend_from_slice(&sha1(msg));
                v
            }
            HashAlg::Sha256 => {
                let mut v = SHA256_PREFIX.to_vec();
                v.extend_from_slice(&sha256(msg));
                v
            }
        }
    }
}

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

impl RsaPublicKey {
    /// Constructs a public key from modulus and exponent.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] for a zero or even modulus
    /// (an RSA modulus is a product of odd primes; rejecting even `n`
    /// here also guarantees the Montgomery fast path applies to every
    /// wire-supplied key) or an exponent less than 3.
    pub fn new(n: BigUint, e: BigUint) -> Result<Self, CryptoError> {
        if n.is_zero() {
            return Err(CryptoError::InvalidKey("zero modulus"));
        }
        if n.is_even() {
            return Err(CryptoError::InvalidKey("even modulus"));
        }
        if e < BigUint::from_u64(3) {
            return Err(CryptoError::InvalidKey("public exponent below 3"));
        }
        Ok(RsaPublicKey { n, e })
    }

    /// Builds the precomputed-context verifier for this key. Prefer
    /// holding an [`RsaVerifier`] wherever the same key verifies more
    /// than once — [`verify`](Self::verify) rebuilds the Montgomery
    /// parameters on every call.
    pub fn verifier(&self) -> RsaVerifier {
        RsaVerifier::new(self.clone())
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// The modulus size in whole bytes (`k` in RFC 8017).
    pub fn modulus_len(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// The key size in bits.
    pub fn bits(&self) -> usize {
        self.n.bits()
    }

    /// Verifies an RSASSA-PKCS1-v1.5 signature over `msg`.
    ///
    /// One-shot convenience: delegates to a throwaway [`RsaVerifier`],
    /// paying the per-key Montgomery precomputation on every call. Hot
    /// paths should build the verifier once via
    /// [`verifier`](Self::verifier) and reuse it.
    pub fn verify(&self, msg: &[u8], signature: &[u8], alg: HashAlg) -> Result<(), CryptoError> {
        self.verifier().verify(msg, signature, alg)
    }

    /// Encrypts up to `k − 11` bytes with RSAES-PKCS1-v1.5.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] when `msg` exceeds the
    /// key's capacity.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        msg: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if msg.len() + 11 > k {
            return Err(CryptoError::MessageTooLong {
                max: k.saturating_sub(11),
                got: msg.len(),
            });
        }
        // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M.
        let mut em = vec![0u8; k];
        em[1] = 0x02;
        let ps_len = k - msg.len() - 3;
        for b in &mut em[2..2 + ps_len] {
            loop {
                let v = rng.gen_u8();
                if v != 0 {
                    *b = v;
                    break;
                }
            }
        }
        em[2 + ps_len] = 0x00;
        em[3 + ps_len..].copy_from_slice(msg);
        let m = BigUint::from_bytes_be(&em);
        let c = m.mod_pow(&self.e, &self.n);
        c.to_bytes_be_padded(k).ok_or(CryptoError::DecryptionFailed)
    }
}

/// How many prepared contexts each thread's modulus cache retains.
const CTX_CACHE_CAP: usize = 8;

/// Per-thread MRU cache of prepared Montgomery contexts, keyed by
/// modulus. One-shot verifies that repeat a key without holding an
/// [`RsaVerifier`] hit this instead of re-deriving `R² mod n` per call;
/// thread-local storage keeps the hit path lock-free. Returns `None`
/// for an even modulus (no Montgomery context exists), without caching
/// the miss.
fn cached_context(n: &BigUint) -> Option<Arc<MontgomeryContext>> {
    thread_local! {
        static CTX_CACHE: RefCell<Vec<Arc<MontgomeryContext>>> =
            const { RefCell::new(Vec::new()) };
    }
    CTX_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(i) = cache.iter().position(|c| c.modulus() == n) {
            let ctx = cache.remove(i);
            cache.push(Arc::clone(&ctx));
            return Some(ctx);
        }
        let ctx = Arc::new(MontgomeryContext::new(n)?);
        if cache.len() == CTX_CACHE_CAP {
            cache.remove(0);
        }
        cache.push(Arc::clone(&ctx));
        Some(ctx)
    })
}

/// A verification context with per-key precomputation done once.
///
/// Holds the Montgomery parameters (`n' = -n⁻¹ mod 2⁶⁴`, `R² mod n`,
/// `R mod n`) for the key's modulus plus a stable key fingerprint, so
/// repeated verifies under the same key skip both the parameter setup
/// and every Knuth division the classic path pays per multiplication.
/// This is the type registration records and long-lived services should
/// hold; [`RsaPublicKey::verify`] builds a throwaway one per call
/// (softened by a small per-thread context cache for repeated keys).
#[derive(Debug, Clone)]
pub struct RsaVerifier {
    key: RsaPublicKey,
    /// `None` only for a (never-valid-RSA) even modulus, which falls
    /// back to the classic exponentiation path.
    ctx: Option<Arc<MontgomeryContext>>,
    /// Computed on first use so one-shot verifies never pay for it.
    fingerprint: std::sync::OnceLock<[u8; 32]>,
}

impl RsaVerifier {
    /// Prepares a verifier for `key`, computing the Montgomery
    /// parameters once (or adopting this thread's cached copy).
    pub fn new(key: RsaPublicKey) -> Self {
        RsaVerifier {
            ctx: cached_context(&key.n),
            fingerprint: std::sync::OnceLock::new(),
            key,
        }
    }

    /// The underlying public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.key
    }

    /// A stable SHA-256 identity over length-prefixed `(n, e)`, suitable
    /// as a cache key for "which key verified this".
    pub fn fingerprint(&self) -> &[u8; 32] {
        self.fingerprint.get_or_init(|| {
            let n_bytes = self.key.n.to_bytes_be();
            let e_bytes = self.key.e.to_bytes_be();
            let mut pre = Vec::with_capacity(8 + n_bytes.len() + e_bytes.len());
            pre.extend_from_slice(&(n_bytes.len() as u32).to_be_bytes());
            pre.extend_from_slice(&n_bytes);
            pre.extend_from_slice(&(e_bytes.len() as u32).to_be_bytes());
            pre.extend_from_slice(&e_bytes);
            sha256(&pre)
        })
    }

    /// Verifies an RSASSA-PKCS1-v1.5 signature over `msg` using the
    /// precomputed context.
    pub fn verify(&self, msg: &[u8], signature: &[u8], alg: HashAlg) -> Result<(), CryptoError> {
        let k = self.key.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::InvalidLength {
                expected: k,
                got: signature.len(),
            });
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_val(&self.key.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::InvalidSignature);
        }
        let em = match &self.ctx {
            Some(ctx) => ctx.mod_pow(&s, &self.key.e),
            None => s.mod_pow_classic(&self.key.e, &self.key.n),
        }
        .to_bytes_be_padded(k)
        .ok_or(CryptoError::InvalidSignature)?;
        let expected = emsa_pkcs1_v15_encode(msg, k, alg)?;
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

/// An RSA private key with CRT parameters.
#[derive(Debug, Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
    /// Montgomery contexts for the CRT primes, prepared at key
    /// construction so every sign/decrypt reuses them (`None` never
    /// happens for real primes; kept as a fallback for robustness).
    mont_p: Option<MontgomeryContext>,
    mont_q: Option<MontgomeryContext>,
}

impl RsaPrivateKey {
    /// Generates a fresh keypair with a modulus of `bits` bits and
    /// `e = 65537`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 32` (each prime needs ≥ 16 bits) or `bits` is odd.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(
            bits >= 32 && bits.is_multiple_of(2),
            "invalid RSA key size {bits}"
        );
        let e = BigUint::from_u64(65_537);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let p1 = p.sub(&BigUint::one());
            let q1 = q.sub(&BigUint::one());
            let phi = p1.mul(&q1);
            let d = match e.mod_inverse(&phi) {
                Some(d) => d,
                None => continue, // gcd(e, phi) != 1; pick new primes
            };
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let qinv = match q.mod_inverse(&p) {
                Some(v) => v,
                None => continue,
            };
            // Keep p > q so the CRT recombination below never underflows
            // ambiguously.
            let (p, q, dp, dq, qinv) = if p > q {
                (p, q, dp, dq, qinv)
            } else {
                let qinv2 = match p.mod_inverse(&q) {
                    Some(v) => v,
                    None => continue,
                };
                (q.clone(), p.clone(), dq, dp, qinv2)
            };
            let mont_p = MontgomeryContext::new(&p);
            let mont_q = MontgomeryContext::new(&q);
            return RsaPrivateKey {
                public: RsaPublicKey { n, e },
                d,
                p,
                q,
                dp,
                dq,
                qinv,
                mont_p,
                mont_q,
            };
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Checks internal key consistency: `(m^e)^d ≡ m (mod n)` for a fixed
    /// probe, and that the CRT parameters agree with the plain private
    /// exponent.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the key is inconsistent.
    pub fn validate(&self) -> Result<(), CryptoError> {
        let m = BigUint::from_u64(0x5AFE);
        let c = m.mod_pow(&self.public.e, &self.public.n);
        if c.mod_pow(&self.d, &self.public.n) != m {
            return Err(CryptoError::InvalidKey("d does not invert e"));
        }
        if self.crt_exp(&c) != m {
            return Err(CryptoError::InvalidKey("CRT parameters inconsistent"));
        }
        Ok(())
    }

    /// The key size in bits.
    pub fn bits(&self) -> usize {
        self.public.bits()
    }

    /// Private-key operation `c^d mod n` via CRT, over the prepared
    /// per-prime Montgomery contexts.
    fn crt_exp(&self, c: &BigUint) -> BigUint {
        let m1 = match &self.mont_p {
            Some(ctx) => ctx.mod_pow(c, &self.dp),
            None => c.rem(&self.p).mod_pow_classic(&self.dp, &self.p),
        };
        let m2 = match &self.mont_q {
            Some(ctx) => ctx.mod_pow(c, &self.dq),
            None => c.rem(&self.q).mod_pow_classic(&self.dq, &self.q),
        };
        // h = qinv · (m1 − m2) mod p.
        let diff = if m1 >= m2 {
            m1.sub(&m2)
        } else {
            // (m1 - m2) mod p with m2 possibly larger.
            self.p.sub(&m2.sub(&m1).rem(&self.p))
        };
        let h = self.qinv.mul_mod(&diff.rem(&self.p), &self.p);
        m2.add(&h.mul(&self.q))
    }

    /// Signs `msg` with RSASSA-PKCS1-v1.5 under the chosen hash.
    ///
    /// The returned signature is exactly `modulus_len()` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] when the modulus is too small
    /// to hold the `DigestInfo` encoding (keys below ~360 bits for SHA-1).
    pub fn sign(&self, msg: &[u8], alg: HashAlg) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15_encode(msg, k, alg)?;
        let m = BigUint::from_bytes_be(&em);
        let s = self.crt_exp(&m);
        s.to_bytes_be_padded(k)
            .ok_or(CryptoError::InvalidKey("signature exceeded modulus"))
    }

    /// Decrypts an RSAES-PKCS1-v1.5 ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DecryptionFailed`] for malformed padding or
    /// ciphertext length. (Callers should treat all decryption failures
    /// identically — Bleichenbacher — though this research implementation
    /// makes no constant-time claims anywhere.)
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k || k < 11 {
            return Err(CryptoError::DecryptionFailed);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c.cmp_val(&self.public.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::DecryptionFailed);
        }
        let em = self
            .crt_exp(&c)
            .to_bytes_be_padded(k)
            .ok_or(CryptoError::DecryptionFailed)?;
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::DecryptionFailed);
        }
        // Find the 0x00 separator after at least 8 bytes of padding.
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::DecryptionFailed)?;
        if sep < 8 {
            return Err(CryptoError::DecryptionFailed);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }
}

/// EMSA-PKCS1-v1.5 encoding: `0x00 || 0x01 || 0xFF… || 0x00 || DigestInfo`.
fn emsa_pkcs1_v15_encode(msg: &[u8], k: usize, alg: HashAlg) -> Result<Vec<u8>, CryptoError> {
    let t = alg.digest_info(msg);
    if k < t.len() + 11 {
        return Err(CryptoError::InvalidKey("modulus too small for digest"));
    }
    let mut em = vec![0xFFu8; k];
    em[0] = 0x00;
    em[1] = 0x01;
    em[k - t.len() - 1] = 0x00;
    em[k - t.len()..].copy_from_slice(&t);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;
    use std::sync::OnceLock;

    /// A cached 512-bit test key: keygen in debug builds is slow enough
    /// that regenerating per test would dominate the suite.
    fn test_key() -> &'static RsaPrivateKey {
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShift64::seed_from_u64(7);
            RsaPrivateKey::generate(512, &mut rng)
        })
    }

    #[test]
    fn keypair_has_requested_size() {
        let key = test_key();
        assert_eq!(key.bits(), 512);
        assert_eq!(key.public_key().modulus_len(), 64);
    }

    #[test]
    fn sign_verify_sha1_round_trip() {
        let key = test_key();
        let msg = b"GPS sample (40.1, -88.2) @ t=12.0";
        let sig = key.sign(msg, HashAlg::Sha1).unwrap();
        assert_eq!(sig.len(), 64);
        key.public_key().verify(msg, &sig, HashAlg::Sha1).unwrap();
    }

    #[test]
    fn sign_verify_sha256_round_trip() {
        let key = test_key();
        let msg = b"hello alidrone";
        let sig = key.sign(msg, HashAlg::Sha256).unwrap();
        key.public_key().verify(msg, &sig, HashAlg::Sha256).unwrap();
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let key = test_key();
        let sig = key.sign(b"original", HashAlg::Sha1).unwrap();
        assert_eq!(
            key.public_key().verify(b"tampered", &sig, HashAlg::Sha1),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let mut sig = key.sign(b"msg", HashAlg::Sha1).unwrap();
        sig[10] ^= 0x01;
        assert!(key
            .public_key()
            .verify(b"msg", &sig, HashAlg::Sha1)
            .is_err());
    }

    #[test]
    fn verify_rejects_wrong_hash_alg() {
        let key = test_key();
        let sig = key.sign(b"msg", HashAlg::Sha1).unwrap();
        assert!(key
            .public_key()
            .verify(b"msg", &sig, HashAlg::Sha256)
            .is_err());
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let key = test_key();
        let sig = key.sign(b"msg", HashAlg::Sha1).unwrap();
        assert_eq!(
            key.public_key().verify(b"msg", &sig[1..], HashAlg::Sha1),
            Err(CryptoError::InvalidLength {
                expected: 64,
                got: 63
            })
        );
    }

    #[test]
    fn verify_with_different_key_fails() {
        let key = test_key();
        let mut rng = XorShift64::seed_from_u64(99);
        let other = RsaPrivateKey::generate(512, &mut rng);
        let sig = key.sign(b"msg", HashAlg::Sha1).unwrap();
        assert!(other
            .public_key()
            .verify(b"msg", &sig, HashAlg::Sha1)
            .is_err());
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = test_key();
        let mut rng = XorShift64::seed_from_u64(3);
        let msg = b"alibi payload bytes";
        let ct = key.public_key().encrypt(msg, &mut rng).unwrap();
        assert_eq!(ct.len(), 64);
        assert_eq!(key.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn encrypt_empty_message() {
        let key = test_key();
        let mut rng = XorShift64::seed_from_u64(4);
        let ct = key.public_key().encrypt(b"", &mut rng).unwrap();
        assert_eq!(key.decrypt(&ct).unwrap(), b"");
    }

    #[test]
    fn encrypt_max_length_message() {
        let key = test_key();
        let mut rng = XorShift64::seed_from_u64(5);
        let msg = vec![0x42u8; 64 - 11];
        let ct = key.public_key().encrypt(&msg, &mut rng).unwrap();
        assert_eq!(key.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn encrypt_too_long_fails() {
        let key = test_key();
        let mut rng = XorShift64::seed_from_u64(6);
        let msg = vec![0u8; 64 - 10];
        assert_eq!(
            key.public_key().encrypt(&msg, &mut rng),
            Err(CryptoError::MessageTooLong { max: 53, got: 54 })
        );
    }

    #[test]
    fn decrypt_rejects_garbage() {
        let key = test_key();
        assert_eq!(key.decrypt(&[0u8; 64]), Err(CryptoError::DecryptionFailed));
        assert_eq!(key.decrypt(&[1u8; 10]), Err(CryptoError::DecryptionFailed));
    }

    #[test]
    fn decrypt_rejects_bitflipped_ciphertext() {
        let key = test_key();
        let mut rng = XorShift64::seed_from_u64(8);
        let mut ct = key.public_key().encrypt(b"payload", &mut rng).unwrap();
        ct[20] ^= 0xFF;
        // Overwhelmingly likely to break padding; a silent wrong-plaintext
        // would still differ from the original.
        match key.decrypt(&ct) {
            Err(CryptoError::DecryptionFailed) => {}
            Ok(pt) => assert_ne!(pt, b"payload"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn ciphertexts_are_randomised() {
        let key = test_key();
        let mut rng = XorShift64::seed_from_u64(9);
        let c1 = key.public_key().encrypt(b"same", &mut rng).unwrap();
        let c2 = key.public_key().encrypt(b"same", &mut rng).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn public_key_validation() {
        assert!(RsaPublicKey::new(BigUint::zero(), BigUint::from_u64(65537)).is_err());
        assert!(RsaPublicKey::new(BigUint::from_u64(15), BigUint::from_u64(2)).is_err());
        // An RSA modulus is a product of odd primes; even n is rejected
        // at construction so every accepted key takes the Montgomery path.
        assert!(RsaPublicKey::new(BigUint::from_u64(16), BigUint::from_u64(3)).is_err());
        assert!(RsaPublicKey::new(BigUint::from_u64(15), BigUint::from_u64(3)).is_ok());
    }

    #[test]
    fn generated_key_validates() {
        test_key().validate().unwrap();
    }

    #[test]
    fn prepared_verifier_matches_one_shot() {
        let key = test_key();
        let verifier = key.public_key().verifier();
        let msg = b"GPS sample (40.1, -88.2) @ t=12.0";
        for alg in [HashAlg::Sha1, HashAlg::Sha256] {
            let sig = key.sign(msg, alg).unwrap();
            verifier.verify(msg, &sig, alg).unwrap();
            key.public_key().verify(msg, &sig, alg).unwrap();
            let mut bad = sig.clone();
            bad[5] ^= 0x80;
            assert_eq!(
                verifier.verify(msg, &bad, alg),
                key.public_key().verify(msg, &bad, alg)
            );
            assert_eq!(
                verifier.verify(b"other", &sig, alg),
                Err(CryptoError::InvalidSignature)
            );
        }
    }

    #[test]
    fn verifier_fingerprint_identifies_key() {
        let key = test_key();
        let v1 = key.public_key().verifier();
        let v2 = key.public_key().verifier();
        assert_eq!(v1.fingerprint(), v2.fingerprint());
        assert_eq!(v1.public_key(), key.public_key());
        let mut rng = XorShift64::seed_from_u64(99);
        let other = RsaPrivateKey::generate(512, &mut rng);
        assert_ne!(
            other.public_key().verifier().fingerprint(),
            v1.fingerprint()
        );
    }

    #[test]
    fn prepared_verifier_rejects_wrong_length() {
        let key = test_key();
        let verifier = key.public_key().verifier();
        let sig = key.sign(b"msg", HashAlg::Sha1).unwrap();
        assert_eq!(
            verifier.verify(b"msg", &sig[..63], HashAlg::Sha1),
            Err(CryptoError::InvalidLength {
                expected: 64,
                got: 63
            })
        );
    }

    #[test]
    fn signature_deterministic() {
        // PKCS#1 v1.5 signing is deterministic (unlike PSS).
        let key = test_key();
        let s1 = key.sign(b"det", HashAlg::Sha256).unwrap();
        let s2 = key.sign(b"det", HashAlg::Sha256).unwrap();
        assert_eq!(s1, s2);
    }
}
