//! Probabilistic primality testing and prime generation for RSA keygen.

use crate::rng::Rng;

use crate::bigint::BigUint;

/// Number of Miller–Rabin rounds used by key generation. 40 rounds gives
/// an error probability below 2⁻⁸⁰ even before accounting for the
/// average-case behaviour of random candidates.
pub const MILLER_RABIN_ROUNDS: usize = 40;

/// Sieve of Eratosthenes up to `limit` (inclusive).
fn sieve(limit: u32) -> Vec<u32> {
    let n = limit as usize;
    let mut composite = vec![false; n + 1];
    let mut primes = Vec::new();
    for i in 2..=n {
        if !composite[i] {
            primes.push(i as u32);
            let mut j = i * i;
            while j <= n {
                composite[j] = true;
                j += i;
            }
        }
    }
    primes
}

/// The small primes used for trial division before Miller–Rabin.
pub fn small_primes() -> &'static [u32] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u32>> = OnceLock::new();
    PRIMES.get_or_init(|| sieve(10_000))
}

/// Miller–Rabin probable-prime test with `rounds` random bases.
///
/// Deterministically correct for all inputs below the small-prime sieve
/// bound; probabilistic above it.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    if n == &two {
        return true;
    }
    if n.is_even() {
        return false;
    }
    // Trial division.
    for &p in small_primes() {
        let p_big = BigUint::from_u64(p as u64);
        match n.cmp_val(&p_big) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {
                if n.rem(&p_big).is_zero() {
                    return false;
                }
            }
        }
    }
    // Write n−1 = d · 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    'witness: for _ in 0..rounds {
        let a = random_below(rng, &n_minus_1, &two);
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Uniform random value in `[lo, hi)`.
fn random_below<R: Rng + ?Sized>(rng: &mut R, hi: &BigUint, lo: &BigUint) -> BigUint {
    let span = hi.sub(lo);
    let bits = span.bits().max(1);
    let bytes = bits.div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        // Mask off excess high bits so rejection sampling terminates fast.
        let excess = bytes * 8 - bits;
        if excess > 0 {
            buf[0] &= 0xFF >> excess;
        }
        let candidate = BigUint::from_bytes_be(&buf);
        if candidate.cmp_val(&span) == std::cmp::Ordering::Less {
            return lo.add(&candidate);
        }
    }
}

/// Generates a random probable prime with exactly `bits` bits (the two
/// most significant bits are forced to 1 so that the product of two such
/// primes has exactly `2·bits` bits, as RSA keygen requires).
///
/// # Panics
///
/// Panics if `bits < 16` — RSA moduli below 32 bits are meaningless even
/// for testing.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 16, "prime size too small: {bits} bits");
    let bytes = bits.div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        // Trim to exactly `bits` bits and set the top two + bottom bit.
        let excess = bytes * 8 - bits;
        buf[0] &= 0xFF >> excess;
        buf[0] |= 0xC0 >> excess;
        if excess >= 7 {
            // Top two forced bits straddle a byte boundary.
            buf[1] |= if excess == 7 { 0x80 } else { 0xC0 };
        }
        let last = buf.len() - 1;
        buf[last] |= 1;
        let candidate = BigUint::from_bytes_be(&buf);
        debug_assert_eq!(candidate.bits(), bits);
        if is_probable_prime(&candidate, MILLER_RABIN_ROUNDS, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;

    fn rng() -> XorShift64 {
        XorShift64::seed_from_u64(0xA11D_2024)
    }

    #[test]
    fn sieve_matches_known_primes() {
        let p = sieve(30);
        assert_eq!(p, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn small_primes_start_correctly() {
        let p = small_primes();
        assert_eq!(&p[..5], &[2, 3, 5, 7, 11]);
        assert!(p.last().copied().unwrap() < 10_000);
    }

    #[test]
    fn known_primes_pass() {
        let mut r = rng();
        for p in [
            2u64,
            3,
            5,
            7,
            97,
            7919,
            104_729,
            1_000_000_007,
            2_147_483_647,
        ] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 20, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn known_composites_fail() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 7917, 104_730, 1_000_000_008] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_fail() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut r),
                "Carmichael {c} should be composite"
            );
        }
    }

    #[test]
    fn large_known_prime_passes() {
        // 2^89 - 1 is a Mersenne prime.
        let p = BigUint::from_u64(1).shl(89).sub(&BigUint::one());
        assert!(is_probable_prime(&p, 20, &mut rng()));
        // 2^90 - 1 is composite.
        let c = BigUint::from_u64(1).shl(90).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, 20, &mut rng()));
    }

    #[test]
    fn generated_prime_has_exact_bit_length() {
        let mut r = rng();
        for bits in [64usize, 96, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bits(), bits);
            assert!(!p.is_even());
            // Top two bits set ⇒ p ≥ 3·2^(bits−2).
            let floor = BigUint::from_u64(3).shl(bits - 2);
            assert!(p >= floor);
        }
    }

    #[test]
    fn generated_primes_are_distinct() {
        let mut r = rng();
        let a = gen_prime(96, &mut r);
        let b = gen_prime(96, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "prime size too small")]
    fn tiny_prime_request_panics() {
        gen_prime(8, &mut rng());
    }
}
