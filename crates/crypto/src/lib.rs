//! From-scratch cryptographic primitives for the AliDrone reproduction.
//!
//! The AliDrone prototype (ICDCS 2018, §V) relies on the OP-TEE crypto
//! API for exactly two algorithms: `TEE_ALG_RSASSA_PKCS1_V1_5_SHA1` to
//! sign GPS tuples inside the secure world, and `RSAES_PKCS1_v1_5` to
//! encrypt the Proof-of-Alibi for the auditor. The workspace's allowed
//! dependency set contains no cryptography crates, so this crate
//! implements those algorithms — and the primitives the paper's §VII
//! extensions need — from scratch:
//!
//! * [`bigint::BigUint`] — arbitrary-precision arithmetic (Knuth D
//!   division, modular inverse) with a Montgomery fast path for modular
//!   exponentiation: [`bigint::MontgomeryContext`] precomputes the
//!   domain parameters per modulus and runs a fixed-window ladder over
//!   64-bit CIOS multiplication and dedicated squaring.
//! * [`prime`] — Miller–Rabin testing and RSA prime generation.
//! * [`rsa`] — RSASSA-PKCS1-v1.5 (SHA-1/SHA-256) and RSAES-PKCS1-v1.5,
//!   with [`rsa::RsaVerifier`] holding the per-key precomputation for
//!   hot verify paths.
//! * [`sha1`], [`sha256`], [`hmac`] — hashes and MACs.
//! * [`chacha20`] — the one-time-key cipher for the privacy-preserving
//!   PoA extension (§VII-B3).
//! * [`dh`] — ephemeral Diffie–Hellman for per-flight symmetric keys
//!   (§VII-A1a).
//! * [`rng`] — a vendored deterministic xorshift64* generator behind a
//!   minimal [`Rng`](rng::Rng) trait (the build environment has no
//!   crates.io access, so `rand` is hand-rolled like everything else).
//!
//! # Security note
//!
//! **Research quality only.** Nothing here is constant-time, blinded, or
//! hardened against fault attacks; the paper explicitly scopes side
//! channels out of its threat model (§III-B) and so does this
//! reproduction. Do not reuse this crate outside the simulation.
//!
//! # Example
//!
//! ```
//! use alidrone_crypto::rng::XorShift64;
//! use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
//!
//! # fn main() -> Result<(), alidrone_crypto::CryptoError> {
//! let mut rng = XorShift64::seed_from_u64(1);
//! let key = RsaPrivateKey::generate(512, &mut rng); // test-size key
//! let sig = key.sign(b"(40.1, -88.2) @ 12.0s", HashAlg::Sha1)?;
//! key.public_key().verify(b"(40.1, -88.2) @ 12.0s", &sig, HashAlg::Sha1)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod chacha20;
pub mod dh;
mod error;
pub mod hmac;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use error::CryptoError;
