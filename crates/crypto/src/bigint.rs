//! Arbitrary-precision unsigned integers.
//!
//! A minimal big-unsigned-integer implementation sized for RSA: addition,
//! subtraction, schoolbook multiplication, Knuth Algorithm D division,
//! modular exponentiation, gcd and modular inverse. Limbs are `u32`s in
//! little-endian order with no trailing zero limbs (canonical form).
//!
//! Performance is adequate for 2048-bit RSA (the largest key size the
//! paper benchmarks); no attempt is made at constant-time behaviour —
//! see the crate-level security note.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian `u32` limbs; empty means zero; no trailing zeros.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a value from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![(v & 0xFFFF_FFFF) as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Parses a big-endian byte string (the usual crypto wire format).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut acc: u32 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            acc |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Serialises to a minimal big-endian byte string (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let mut started = false;
                for &b in &bytes {
                    if b != 0 || started {
                        out.push(b);
                        started = true;
                    }
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialises to exactly `len` big-endian bytes, left-padded with
    /// zeros. Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// `true` for the value 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` for the value 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` if the lowest bit is 0 (and the value nonzero counts as even
    /// only by its bit; zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// The low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        let lo = *self.limbs.first().unwrap_or(&0) as u64;
        let hi = *self.limbs.get(1).unwrap_or(&0) as u64;
        lo | (hi << 32)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for (i, &l) in long.iter().enumerate() {
            let s = l as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push((s & 0xFFFF_FFFF) as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        BigUint { limbs: out }
    }

    /// `self − other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`; use [`checked_sub`](Self::checked_sub)
    /// when underflow is possible.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// `self − other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_val(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - *other.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        Some(r)
    }

    /// `self · other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u64 * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = (t & 0xFFFF_FFFF) as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u64 + carry;
                out[k] = (t & 0xFFFF_FFFF) as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 32;
        let bit_shift = n % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Comparison (named to avoid clashing with `Ord::cmp` call syntax in
    /// internal code paths).
    pub fn cmp_val(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_val(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            return self.divrem_single(divisor.limbs[0]);
        }
        self.divrem_knuth(divisor)
    }

    fn divrem_single(&self, d: u32) -> (BigUint, BigUint) {
        let mut q = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        let mut quo = BigUint { limbs: q };
        quo.normalize();
        (quo, BigUint::from_u64(rem))
    }

    /// Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
    fn divrem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift);
        let u = self.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of u with one extra high limb.
        let mut un: Vec<u32> = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];

        let v_hi = vn[n - 1] as u64;
        let v_next = vn[n - 2] as u64;

        for j in (0..=m).rev() {
            // Estimate q_hat.
            let num = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut q_hat = num / v_hi;
            let mut r_hat = num % v_hi;
            while q_hat >= 1 << 32 || q_hat * v_next > ((r_hat << 32) | un[j + n - 2] as u64) {
                q_hat -= 1;
                r_hat += v_hi;
                if r_hat >= 1 << 32 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= q_hat * vn.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = q_hat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[j + i] as i64 - (p & 0xFFFF_FFFF) as i64 - borrow;
                if t < 0 {
                    un[j + i] = (t + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    un[j + i] = t as u32;
                    borrow = 0;
                }
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // q_hat was one too large: add back.
                un[j + n] = (t + (1i64 << 32)) as u32;
                q_hat -= 1;
                let mut c: u64 = 0;
                for i in 0..n {
                    let s = un[j + i] as u64 + vn[i] as u64 + c;
                    un[j + i] = (s & 0xFFFF_FFFF) as u32;
                    c = s >> 32;
                }
                un[j + n] = un[j + n].wrapping_add(c as u32);
            } else {
                un[j + n] = t as u32;
            }
            q[j] = q_hat as u32;
        }

        let mut quo = BigUint { limbs: q };
        quo.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quo, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.divrem(m).1
    }

    /// `(self + other) mod m`, assuming both inputs are already `< m`.
    pub fn add_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp_val(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// `(self · other) mod m`.
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m`.
    ///
    /// Odd moduli (every RSA modulus and RSA prime) take the Montgomery
    /// fast path via a one-shot [`MontgomeryContext`]; even moduli fall
    /// back to [`mod_pow_classic`](Self::mod_pow_classic). Callers that
    /// exponentiate repeatedly under the same modulus should build the
    /// context once and call [`MontgomeryContext::mod_pow`] directly.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        match MontgomeryContext::new(m) {
            Some(ctx) => ctx.mod_pow(self, exp),
            None => self.mod_pow_classic(exp, m),
        }
    }

    /// `self^exp mod m` by left-to-right square-and-multiply over
    /// division-based reduction — the reference implementation the
    /// Montgomery path is property-tested against.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow_classic(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m.is_one() {
            return BigUint::zero();
        }
        let base = self.rem(m);
        if exp.is_zero() {
            return BigUint::one();
        }
        let mut acc = BigUint::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.mul_mod(&acc, m);
            if exp.bit(i) {
                acc = acc.mul_mod(&base, m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary-free Euclid; division is fast
    /// enough here).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// The inverse of `self` modulo `m`, or `None` when
    /// `gcd(self, m) != 1`.
    ///
    /// Extended Euclid over signed cofactors tracked as (sign, magnitude)
    /// pairs.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Iterative extended Euclid: track old_r, r and old_t, t where
        // t coefficients are modulo m with explicit sign.
        let mut old_r = self.rem(m);
        let mut r = m.clone();
        // (value, negative?) pairs.
        let mut old_t = (BigUint::one(), false);
        let mut t = (BigUint::zero(), false);

        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            old_r = std::mem::replace(&mut r, rem);

            // new_t = old_t - q * t  (signed arithmetic).
            let qt = q.mul(&t.0);
            let new_t = signed_sub(&old_t, &(qt, t.1));
            old_t = std::mem::replace(&mut t, new_t);
        }
        if !old_r.is_one() {
            return None;
        }
        // old_t is the inverse, possibly negative: reduce into [0, m).
        let (mag, neg) = old_t;
        let mag = mag.rem(m);
        if neg && !mag.is_zero() {
            Some(m.sub(&mag))
        } else {
            Some(mag)
        }
    }
}

/// `a - b` over (magnitude, negative?) signed pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both positive.
        (false, false) => match a.0.cmp_val(&b.0) {
            Ordering::Less => (b.0.sub(&a.0), true),
            _ => (a.0.sub(&b.0), false),
        },
        // a - (-b) = a + b.
        (false, true) => (a.0.add(&b.0), false),
        // -a - b = -(a + b).
        (true, false) => (a.0.add(&b.0), true),
        // -a - (-b) = b - a.
        (true, true) => match b.0.cmp_val(&a.0) {
            Ordering::Less => (a.0.sub(&b.0), true),
            _ => (b.0.sub(&a.0), false),
        },
    }
}

/// Precomputed Montgomery-domain parameters for one fixed **odd**
/// modulus, amortised across every multiplication and exponentiation
/// under that modulus.
///
/// With `R = 2^(32·k)` for `k` limbs of `n`, the context holds
/// `n' = -n⁻¹ mod 2³²`, `R² mod n` (to enter the domain with one
/// Montgomery multiplication) and `R mod n` (the domain image of 1).
/// Reduction is word-level CIOS (Koç et al.), replacing the Knuth
/// division in [`BigUint::mul_mod`] with shift-free carry chains — the
/// difference between the classic and fast RSA verify paths.
///
/// Build one per key ([`crate::rsa::RsaVerifier`] does) and reuse it;
/// [`BigUint::mod_pow`] builds a throwaway context per call, which still
/// wins but pays the `R² mod n` division every time.
#[derive(Clone, Debug)]
pub struct MontgomeryContext {
    /// The modulus.
    n: BigUint,
    /// `n` as little-endian 64-bit words, exactly `k` of them (the top
    /// word may be zero-extended when `n` has an odd number of 32-bit
    /// limbs). Reduction runs at native word width — this is where the
    /// speedup over 32-bit limbed division comes from.
    n_words: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n`, used to map values into the Montgomery domain.
    r2: Vec<u64>,
    /// `R mod n`: the Montgomery form of 1.
    one: Vec<u64>,
}

impl MontgomeryContext {
    /// Builds a context for `m`, or `None` when `m` is even or `< 3`
    /// (Montgomery reduction requires an odd modulus; callers fall back
    /// to [`BigUint::mod_pow_classic`]).
    pub fn new(m: &BigUint) -> Option<Self> {
        if m.is_even() || m.is_one() || m.is_zero() {
            return None;
        }
        let n_words = to_words(m);
        let k = n_words.len();
        // n' = -n^{-1} mod 2^64 via Newton–Hensel lifting on the low
        // word: inv *= 2 - n0*inv doubles the valid bit count each step.
        let n0 = n_words[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R² mod n costs one shift + one division (R is a power of two);
        // R mod n then falls out of a reduction pass: REDC(R²) = R mod n.
        let r2 = pad_words(&BigUint::one().shl(128 * k).rem(m), k);
        let mut ctx = MontgomeryContext {
            n: m.clone(),
            n_words,
            n0_inv,
            r2,
            one: Vec::new(),
        };
        let mut wide = ctx.r2.clone();
        wide.resize(2 * k + 1, 0);
        ctx.one = ctx.mont_reduce(wide);
        Some(ctx)
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod n` for
    /// `a`, `b` already padded to `k` words and `< n`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n_words.len();
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter().take(k) {
            let ai = ai as u128;
            let mut carry: u128 = 0;
            for (tj, &bj) in t[..k].iter_mut().zip(b) {
                let s = *tj as u128 + ai * bj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            let m = t[0].wrapping_mul(self.n0_inv) as u128;
            let s = t[0] as u128 + m * self.n_words[0] as u128;
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m * self.n_words[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }
        // t < 2n here; one conditional subtraction restores t < n.
        if t[k] != 0 || cmp_words(&t[..k], &self.n_words) != Ordering::Less {
            sub_words_in_place(&mut t, &self.n_words);
        }
        t.truncate(k);
        t
    }

    /// Montgomery squaring: returns `a²·R⁻¹ mod n`. Schoolbook squaring
    /// computes each off-diagonal product once and doubles, then a
    /// separate Montgomery reduction pass folds the 2k-word square —
    /// ~25% fewer word multiplies than [`mont_mul`](Self::mont_mul),
    /// and squarings dominate every exponentiation ladder.
    fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let k = self.n_words.len();
        let mut t = vec![0u64; 2 * k + 1];
        // Off-diagonal products, each computed once.
        for i in 0..k {
            let ai = a[i] as u128;
            let mut carry: u128 = 0;
            for j in i + 1..k {
                let s = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = s as u64;
                carry = s >> 64;
            }
            t[i + k] = carry as u64;
        }
        // Double, then add the diagonal squares.
        let mut carry: u64 = 0;
        for w in t.iter_mut().take(2 * k) {
            let new_carry = *w >> 63;
            *w = (*w << 1) | carry;
            carry = new_carry;
        }
        let mut carry: u128 = 0;
        for i in 0..k {
            let sq = (a[i] as u128) * (a[i] as u128);
            let s = t[2 * i] as u128 + (sq as u64) as u128 + carry;
            t[2 * i] = s as u64;
            let s2 = t[2 * i + 1] as u128 + ((sq >> 64) as u64) as u128 + (s >> 64);
            t[2 * i + 1] = s2 as u64;
            carry = s2 >> 64;
        }
        if carry > 0 {
            t[2 * k] = t[2 * k].wrapping_add(carry as u64);
        }
        self.mont_reduce(t)
    }

    /// Folds a 2k-word (plus top carry word) value `t < n·R` down to
    /// `t·R⁻¹ mod n` in `k` words.
    fn mont_reduce(&self, mut t: Vec<u64>) -> Vec<u64> {
        let k = self.n_words.len();
        debug_assert_eq!(t.len(), 2 * k + 1);
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv) as u128;
            let mut carry: u128 = 0;
            for (j, &nj) in self.n_words.iter().enumerate() {
                let s = t[i + j] as u128 + m * nj as u128 + carry;
                t[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry > 0 {
                let s = t[idx] as u128 + carry;
                t[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        // Result sits in t[k..=2k]; one conditional subtraction.
        if t[2 * k] != 0 || cmp_words(&t[k..2 * k], &self.n_words) != Ordering::Less {
            sub_words_in_place(&mut t[k..], &self.n_words);
        }
        t.drain(..k);
        t.truncate(k);
        t
    }

    /// Maps `x` (any magnitude) into the Montgomery domain.
    fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        let k = self.n_words.len();
        let reduced = if x.cmp_val(&self.n) == Ordering::Less {
            x.clone()
        } else {
            x.rem(&self.n)
        };
        self.mont_mul(&pad_words(&reduced, k), &self.r2)
    }

    /// Maps a Montgomery-domain value back to the ordinary domain via a
    /// bare reduction pass (half the multiplies of a `mont_mul` by 1).
    /// The inverse of [`to_mont`](Self::to_mont).
    fn mont_to_uint(&self, x: &[u64]) -> BigUint {
        let k = self.n_words.len();
        let mut wide = x.to_vec();
        wide.resize(2 * k + 1, 0);
        from_words(&self.mont_reduce(wide))
    }

    /// `(a · b) mod n` through the Montgomery domain.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.mont_to_uint(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` by fixed-window exponentiation in the Montgomery
    /// domain. Matches [`BigUint::mod_pow_classic`] bit for bit on every
    /// input (property-tested), including `exp = 0 → 1` and base ≥ n.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        let bits = exp.bits();
        let base_m = self.to_mont(base);
        // Window width: the 2^w-entry table must amortise over bits/w
        // multiplies. Small exponents (RSA e = 65537) stay at w = 1 —
        // plain square-and-multiply beats paying for a table.
        let w = match bits {
            0..=96 => 1,
            97..=512 => 4,
            _ => 5,
        };
        if w == 1 {
            // Seed from the (always-set) top bit: no squarings of 1.
            let mut acc = base_m.clone();
            for i in (0..bits - 1).rev() {
                acc = self.mont_sqr(&acc);
                if exp.bit(i) {
                    acc = self.mont_mul(&acc, &base_m);
                }
            }
            return self.mont_to_uint(&acc);
        }
        // table[i] = base^i in Montgomery form, i in 0..2^w.
        let mut table = Vec::with_capacity(1 << w);
        table.push(self.one.clone());
        table.push(base_m);
        for i in 2..(1usize << w) {
            let prev = self.mont_mul(&table[i - 1], &table[1]);
            table.push(prev);
        }
        // Seed the accumulator from the first window instead of
        // squaring 1 up to it.
        let mut i = bits;
        let first = w.min(i);
        let mut window = 0usize;
        for _ in 0..first {
            i -= 1;
            window = (window << 1) | exp.bit(i) as usize;
        }
        let mut acc = table[window].clone();
        while i > 0 {
            let take = w.min(i);
            let mut window = 0usize;
            for _ in 0..take {
                i -= 1;
                acc = self.mont_sqr(&acc);
                window = (window << 1) | exp.bit(i) as usize;
            }
            if window != 0 {
                acc = self.mont_mul(&acc, &table[window]);
            }
        }
        self.mont_to_uint(&acc)
    }
}

/// `x` as little-endian 64-bit words (two 32-bit limbs each).
fn to_words(x: &BigUint) -> Vec<u64> {
    let mut out = Vec::with_capacity(x.limbs.len().div_ceil(2));
    for pair in x.limbs.chunks(2) {
        let lo = pair[0] as u64;
        let hi = *pair.get(1).unwrap_or(&0) as u64;
        out.push(lo | (hi << 32));
    }
    out
}

/// Rebuilds a [`BigUint`] from little-endian 64-bit words.
fn from_words(words: &[u64]) -> BigUint {
    let mut limbs = Vec::with_capacity(words.len() * 2);
    for &w in words {
        limbs.push(w as u32);
        limbs.push((w >> 32) as u32);
    }
    let mut r = BigUint { limbs };
    r.normalize();
    r
}

/// `x`'s 64-bit words padded with high zeros to exactly `k` words.
fn pad_words(x: &BigUint, k: usize) -> Vec<u64> {
    let mut out = to_words(x);
    out.resize(k, 0);
    out
}

/// Compares two equal-length little-endian word slices.
fn cmp_words(a: &[u64], b: &[u64]) -> Ordering {
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `a -= b` in place over the low `b.len()` words, borrowing into the
/// words above.
fn sub_words_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = false;
    for (i, word) in a.iter_mut().enumerate() {
        let (d1, b1) = word.overflowing_sub(*b.get(i).unwrap_or(&0));
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        *word = d2;
        borrow = b1 || b2;
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// Lower-case hexadecimal representation without leading zeros.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Parses a hexadecimal string (no `0x` prefix).
    ///
    /// Returns `None` for invalid characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut i = chars.len();
        while i > 0 {
            let lo = hex_val(chars[i - 1])?;
            let hi = if i >= 2 { hex_val(chars[i - 2])? } else { 0 };
            bytes.push((hi << 4) | lo);
            i = i.saturating_sub(2);
        }
        bytes.reverse();
        Some(BigUint::from_bytes_be(&bytes))
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn add_with_carry() {
        let a = b(u64::MAX);
        let s = a.add(&BigUint::one());
        assert_eq!(s.to_hex(), "10000000000000000");
        assert_eq!(s.bits(), 65);
    }

    #[test]
    fn sub_with_borrow() {
        let a = BigUint::from_hex("10000000000000000").unwrap();
        let d = a.sub(&BigUint::one());
        assert_eq!(d, b(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow() {
        assert!(b(5).checked_sub(&b(6)).is_none());
        assert_eq!(b(5).checked_sub(&b(5)).unwrap(), BigUint::zero());
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!(b(7).mul(&b(6)), b(42));
        let a = BigUint::from_hex("ffffffffffffffff").unwrap();
        let sq = a.mul(&a);
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn divrem_basic() {
        let (q, r) = b(100).divrem(&b(7));
        assert_eq!(q, b(14));
        assert_eq!(r, b(2));
    }

    #[test]
    fn divrem_large() {
        let a = BigUint::from_hex("deadbeefdeadbeefdeadbeefdeadbeef").unwrap();
        let d = BigUint::from_hex("123456789abcdef0").unwrap();
        let (q, r) = a.divrem(&d);
        // Verify q*d + r == a and r < d.
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn divrem_knuth_add_back_case() {
        // A case that exercises the rare "add back" branch: divisor with
        // high limb pattern forcing q_hat overestimate.
        let a = BigUint::from_hex("800000000000000000000000").unwrap();
        let d = BigUint::from_hex("800000000000000001").unwrap();
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn div_by_zero_panics() {
        let result = std::panic::catch_unwind(|| b(1).divrem(&BigUint::zero()));
        assert!(result.is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let a = BigUint::from_hex("0123456789abcdef00ff").unwrap();
        let rt = BigUint::from_bytes_be(&a.to_bytes_be());
        assert_eq!(a, rt);
    }

    #[test]
    fn bytes_be_no_leading_zero() {
        let a = b(0x0102);
        assert_eq!(a.to_bytes_be(), vec![0x01, 0x02]);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn padded_bytes() {
        let a = b(0x0102);
        assert_eq!(a.to_bytes_be_padded(4).unwrap(), vec![0, 0, 1, 2]);
        assert!(a.to_bytes_be_padded(1).is_none());
        assert_eq!(BigUint::zero().to_bytes_be_padded(2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn shifts() {
        let a = b(0b1011);
        assert_eq!(a.shl(4), b(0b1011_0000));
        assert_eq!(a.shr(2), b(0b10));
        assert_eq!(a.shr(64), BigUint::zero());
        assert_eq!(a.shl(33).shr(33), a);
    }

    #[test]
    fn bit_access() {
        let a = b(0b101);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(2));
        assert!(!a.bit(100));
    }

    #[test]
    fn mod_pow_small() {
        // 3^7 mod 10 = 2187 mod 10 = 7
        assert_eq!(b(3).mod_pow(&b(7), &b(10)), b(7));
        // Fermat: 2^(p-1) = 1 mod p for prime p.
        assert_eq!(b(2).mod_pow(&b(1_000_000_006), &b(1_000_000_007)), b(1));
    }

    #[test]
    fn mod_pow_edge_cases() {
        assert_eq!(b(5).mod_pow(&BigUint::zero(), &b(7)), BigUint::one());
        assert_eq!(b(5).mod_pow(&b(3), &BigUint::one()), BigUint::zero());
        assert_eq!(BigUint::zero().mod_pow(&b(5), &b(7)), BigUint::zero());
    }

    #[test]
    fn mod_pow_large() {
        // RSA-style round trip with a known toy key:
        // p=61, q=53, n=3233, e=17, d=413. m=65 -> c=2790 -> m=65.
        let n = b(3233);
        let c = b(65).mod_pow(&b(17), &n);
        assert_eq!(c, b(2790));
        assert_eq!(c.mod_pow(&b(413), &n), b(65));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
    }

    #[test]
    fn mod_inverse_cases() {
        // 3 * 4 = 12 = 1 mod 11.
        assert_eq!(b(3).mod_inverse(&b(11)).unwrap(), b(4));
        // Not invertible.
        assert!(b(6).mod_inverse(&b(9)).is_none());
        // RSA toy: e=17 mod phi=3120 -> d=2753... (61-1)(53-1)=3120.
        let d = b(17).mod_inverse(&b(3120)).unwrap();
        assert_eq!(b(17).mul(&d).rem(&b(3120)), BigUint::one());
    }

    #[test]
    fn mod_inverse_large() {
        let m = BigUint::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff").unwrap();
        let a = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        if let Some(inv) = a.mod_inverse(&m) {
            assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
        } else {
            panic!("expected invertible");
        }
    }

    #[test]
    fn hex_round_trip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = BigUint::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s);
            assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
        }
        // Upper-case digits and leading zeros are accepted on input.
        assert_eq!(
            BigUint::from_hex("00DEADBEEF").unwrap().to_hex(),
            "deadbeef"
        );
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn ordering() {
        assert!(b(5) < b(6));
        assert!(BigUint::from_hex("100000000").unwrap() > b(0xFFFF_FFFF));
        assert_eq!(b(7).cmp_val(&b(7)), Ordering::Equal);
    }

    #[test]
    fn low_u64() {
        let a = BigUint::from_hex("aabbccdd11223344").unwrap();
        assert_eq!(a.low_u64(), 0xaabbccdd11223344);
        let big = BigUint::from_hex("ff0000000011223344").unwrap();
        assert_eq!(big.low_u64(), 0x11223344);
    }

    #[test]
    fn add_mod_stays_reduced() {
        let m = b(100);
        assert_eq!(b(70).add_mod(&b(50), &m), b(20));
        assert_eq!(b(30).add_mod(&b(50), &m), b(80));
    }

    // --- Montgomery fast path: property-tested against the classic
    // division-based implementation.

    use crate::rng::{Rng, XorShift64};

    /// A random value of exactly `bits` significant bits: the top bit is
    /// forced, the rest uniform.
    fn random_bits(rng: &mut XorShift64, bits: usize) -> BigUint {
        let mut bytes = vec![0u8; bits.div_ceil(8)];
        rng.fill_bytes(&mut bytes);
        let top = BigUint::one().shl(bits - 1);
        top.add(&BigUint::from_bytes_be(&bytes).rem(&top))
    }

    /// A random odd modulus of exactly `bits` bits.
    fn random_odd_modulus(rng: &mut XorShift64, bits: usize) -> BigUint {
        let mut m = random_bits(rng, bits);
        if m.is_even() {
            m = m.add(&BigUint::one());
        }
        m
    }

    #[test]
    fn montgomery_rejects_even_and_tiny_moduli() {
        assert!(MontgomeryContext::new(&BigUint::zero()).is_none());
        assert!(MontgomeryContext::new(&BigUint::one()).is_none());
        assert!(MontgomeryContext::new(&b(10)).is_none());
        assert!(MontgomeryContext::new(&b(3)).is_some());
    }

    #[test]
    fn montgomery_mul_mod_matches_division() {
        let mut rng = XorShift64::seed_from_u64(11);
        for bits in [32usize, 64, 96, 256, 1024] {
            let m = random_odd_modulus(&mut rng, bits);
            let ctx = MontgomeryContext::new(&m).expect("odd modulus");
            for _ in 0..8 {
                let a = random_bits(&mut rng, bits + 17);
                let c = random_bits(&mut rng, bits / 2 + 1);
                assert_eq!(ctx.mul_mod(&a, &c), a.mul_mod(&c, &m), "bits={bits}");
            }
        }
    }

    #[test]
    fn mod_pow_montgomery_matches_classic_random() {
        let mut rng = XorShift64::seed_from_u64(22);
        for bits in [33usize, 64, 160, 256] {
            let m = random_odd_modulus(&mut rng, bits);
            for _ in 0..4 {
                let base = random_bits(&mut rng, bits + 9);
                let exp = random_bits(&mut rng, bits);
                assert_eq!(
                    base.mod_pow(&exp, &m),
                    base.mod_pow_classic(&exp, &m),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn mod_pow_montgomery_matches_classic_edge_operands() {
        let mut rng = XorShift64::seed_from_u64(33);
        let m = random_odd_modulus(&mut rng, 128);
        let m_minus_1 = m.sub(&BigUint::one());
        let even_exp = b(65536);
        let cases: Vec<(BigUint, BigUint)> = vec![
            (BigUint::zero(), b(5)),                      // zero base
            (BigUint::one(), random_bits(&mut rng, 128)), // base one
            (m_minus_1.clone(), b(2)),                    // (m-1)^2 = 1 mod m
            (m_minus_1.clone(), m_minus_1.clone()),       // full-width exponent
            (m.clone(), b(7)),                            // base == m reduces to 0
            (random_bits(&mut rng, 200), even_exp),       // even exponent, base > m
            (random_bits(&mut rng, 64), BigUint::zero()), // exp 0 -> 1
            (random_bits(&mut rng, 64), b(65537)),        // the RSA public exponent
        ];
        for (base, exp) in cases {
            assert_eq!(
                base.mod_pow(&exp, &m),
                base.mod_pow_classic(&exp, &m),
                "base={base} exp={exp}"
            );
        }
        // m == 1 short-circuits to zero on both paths.
        assert_eq!(b(5).mod_pow(&b(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn mod_pow_montgomery_matches_classic_rsa_sizes() {
        // Verify-shaped workloads (e = 65537) at the paper's key sizes;
        // the classic reference stays cheap because the exponent is tiny.
        let mut rng = XorShift64::seed_from_u64(44);
        for bits in [1024usize, 2048] {
            let m = random_odd_modulus(&mut rng, bits);
            let base = random_bits(&mut rng, bits - 1);
            let e = b(65537);
            assert_eq!(
                base.mod_pow(&e, &m),
                base.mod_pow_classic(&e, &m),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn mod_pow_even_modulus_falls_back() {
        // Even moduli have no Montgomery representation; the dispatch
        // must still give the classic answer.
        let m = b(4096);
        assert_eq!(b(3).mod_pow(&b(5), &m), b(3).mod_pow_classic(&b(5), &m));
        assert_eq!(b(3).mod_pow_classic(&b(5), &m), b(243));
    }

    #[test]
    fn montgomery_context_reusable_across_calls() {
        let mut rng = XorShift64::seed_from_u64(55);
        let m = random_odd_modulus(&mut rng, 512);
        let ctx = MontgomeryContext::new(&m).expect("odd modulus");
        assert_eq!(ctx.modulus(), &m);
        for _ in 0..4 {
            let base = random_bits(&mut rng, 512);
            let exp = random_bits(&mut rng, 80);
            assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_classic(&exp, &m));
        }
    }
}
