//! Error type for cryptographic operations.

use std::error::Error;
use std::fmt;

/// Errors returned by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The plaintext is too long for the key's modulus.
    MessageTooLong {
        /// Maximum allowed payload bytes for this key.
        max: usize,
        /// Actual payload bytes supplied.
        got: usize,
    },
    /// Decryption failed: the ciphertext or the padding is invalid.
    DecryptionFailed,
    /// A signature did not verify.
    InvalidSignature,
    /// A key parameter is malformed (e.g. zero modulus).
    InvalidKey(&'static str),
    /// Key material had an unexpected length.
    InvalidLength {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        got: usize,
    },
    /// Diffie–Hellman public value out of range.
    InvalidDhPublic,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLong { max, got } => {
                write!(
                    f,
                    "message of {got} bytes exceeds maximum {max} for this key"
                )
            }
            CryptoError::DecryptionFailed => write!(f, "decryption failed"),
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidKey(what) => write!(f, "invalid key: {what}"),
            CryptoError::InvalidLength { expected, got } => {
                write!(f, "expected {expected} bytes, got {got}")
            }
            CryptoError::InvalidDhPublic => write!(f, "diffie-hellman public value out of range"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CryptoError::MessageTooLong { max: 117, got: 200 },
            CryptoError::DecryptionFailed,
            CryptoError::InvalidSignature,
            CryptoError::InvalidKey("zero modulus"),
            CryptoError::InvalidLength {
                expected: 4,
                got: 2,
            },
            CryptoError::InvalidDhPublic,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
