//! Finite-field Diffie–Hellman key agreement — used by the §VII-A1a
//! extension: "a drone may setup ephemeral symmetric keys with the Auditor
//! every time before it starts a flight … a key exchange protocol is
//! needed between the Drone TEE and the Auditor."
//!
//! The derived shared secret is hashed with SHA-256 into an HMAC key.

use crate::rng::Rng;

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::sha256::sha256;

/// RFC 3526 group 14 (2048-bit MODP) prime, the standard choice for
/// classic DH.
const MODP_2048_HEX: &str = concat!(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1",
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD",
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245",
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D",
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F",
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D",
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B",
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9",
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510",
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF"
);

/// A Diffie–Hellman group: prime modulus `p` and generator `g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhGroup {
    p: BigUint,
    g: BigUint,
}

impl DhGroup {
    /// The RFC 3526 2048-bit MODP group with generator 2.
    pub fn modp_2048() -> Self {
        DhGroup {
            p: BigUint::from_hex(MODP_2048_HEX).expect("valid constant"),
            g: BigUint::from_u64(2),
        }
    }

    /// A fixed 512-bit modulus for fast tests. **Not secure** — test use
    /// only (agreement symmetry `(g^x)^y = (g^y)^x mod p` holds for any
    /// modulus; production code must use [`DhGroup::modp_2048`]).
    pub fn test_512() -> Self {
        DhGroup {
            p: BigUint::from_hex(
                "f33eb22d7b01947f5c4545fe7f52fc0e0a9ba16ba1d23de5f5a0b1a4\
                 6e13527dae34ea952d4dfb66b9ed7ab39b7f6a92e4c03f79b48e5a37\
                 12d50ad5e1b2a0ef",
            )
            .expect("valid constant"),
            g: BigUint::from_u64(2),
        }
    }

    /// The group prime.
    pub fn prime(&self) -> &BigUint {
        &self.p
    }

    /// Generates an ephemeral keypair `(x, g^x mod p)`.
    pub fn generate_keypair<R: Rng + ?Sized>(&self, rng: &mut R) -> DhKeyPair {
        // x uniform in [2, p-2]; sampling 256 random bits is sufficient
        // entropy for the derived symmetric key.
        let mut buf = [0u8; 32];
        rng.fill_bytes(&mut buf);
        let x = BigUint::from_bytes_be(&buf)
            .rem(&self.p.sub(&BigUint::from_u64(3)))
            .add(&BigUint::from_u64(2));
        let public = self.g.mod_pow(&x, &self.p);
        DhKeyPair {
            group: self.clone(),
            private: x,
            public,
        }
    }
}

/// An ephemeral DH keypair bound to its group.
#[derive(Debug, Clone)]
pub struct DhKeyPair {
    group: DhGroup,
    private: BigUint,
    public: BigUint,
}

impl DhKeyPair {
    /// The public value `g^x mod p` to send to the peer.
    pub fn public_value(&self) -> &BigUint {
        &self.public
    }

    /// Derives the 32-byte shared key from the peer's public value:
    /// `SHA-256(peer^x mod p)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidDhPublic`] for peer values outside
    /// `[2, p−2]` (0, 1 and p−1 would force a trivial shared secret).
    pub fn derive_shared_key(&self, peer_public: &BigUint) -> Result<[u8; 32], CryptoError> {
        let p_minus_1 = self.group.p.sub(&BigUint::one());
        if peer_public < &BigUint::from_u64(2) || peer_public >= &p_minus_1 {
            return Err(CryptoError::InvalidDhPublic);
        }
        let secret = peer_public.mod_pow(&self.private, &self.group.p);
        Ok(sha256(&secret.to_bytes_be()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;

    #[test]
    fn modp_2048_loads() {
        let g = DhGroup::modp_2048();
        assert_eq!(g.prime().bits(), 2048);
    }

    #[test]
    fn agreement_produces_same_key() {
        let group = DhGroup::test_512();
        let mut rng = XorShift64::seed_from_u64(11);
        let alice = group.generate_keypair(&mut rng);
        let bob = group.generate_keypair(&mut rng);
        let ka = alice.derive_shared_key(bob.public_value()).unwrap();
        let kb = bob.derive_shared_key(alice.public_value()).unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_sessions_different_keys() {
        let group = DhGroup::test_512();
        let mut rng = XorShift64::seed_from_u64(12);
        let a1 = group.generate_keypair(&mut rng);
        let b1 = group.generate_keypair(&mut rng);
        let a2 = group.generate_keypair(&mut rng);
        let b2 = group.generate_keypair(&mut rng);
        let k1 = a1.derive_shared_key(b1.public_value()).unwrap();
        let k2 = a2.derive_shared_key(b2.public_value()).unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn rejects_degenerate_public_values() {
        let group = DhGroup::test_512();
        let mut rng = XorShift64::seed_from_u64(13);
        let kp = group.generate_keypair(&mut rng);
        for bad in [
            BigUint::zero(),
            BigUint::one(),
            group.prime().sub(&BigUint::one()),
            group.prime().clone(),
        ] {
            assert_eq!(
                kp.derive_shared_key(&bad),
                Err(CryptoError::InvalidDhPublic),
                "should reject {bad}"
            );
        }
    }

    #[test]
    fn public_value_in_range() {
        let group = DhGroup::test_512();
        let mut rng = XorShift64::seed_from_u64(14);
        let kp = group.generate_keypair(&mut rng);
        assert!(kp.public_value() >= &BigUint::from_u64(2));
        assert!(kp.public_value() < group.prime());
    }
}
