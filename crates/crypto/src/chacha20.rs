//! ChaCha20 stream cipher (RFC 8439) — used by the §VII-B3
//! privacy-preserving extension, where each GPS sample in a PoA is
//! encrypted under a per-sample one-time key so the auditor can be shown
//! individual samples without learning the whole trajectory.

/// Key size in bytes.
pub const CHACHA20_KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const CHACHA20_NONCE_LEN: usize = 12;

/// Encrypts or decrypts `data` in place with ChaCha20 (XOR keystream;
/// encryption and decryption are the same operation).
///
/// `counter` is the initial block counter (RFC 8439 uses 1 for payload
/// encryption; 0 is reserved for Poly1305 key derivation, which this
/// reproduction does not need).
pub fn chacha20_xor(
    key: &[u8; CHACHA20_KEY_LEN],
    nonce: &[u8; CHACHA20_NONCE_LEN],
    counter: u32,
    data: &mut [u8],
) {
    let mut block_counter = counter;
    for chunk in data.chunks_mut(64) {
        let keystream = chacha20_block(key, nonce, block_counter);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        block_counter = block_counter.wrapping_add(1);
    }
}

/// Convenience: encrypts a copy of `data`.
pub fn chacha20_encrypt(
    key: &[u8; CHACHA20_KEY_LEN],
    nonce: &[u8; CHACHA20_NONCE_LEN],
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    chacha20_xor(key, nonce, 1, &mut out);
    out
}

/// Convenience: decrypts a copy of `data` (same as encryption).
pub fn chacha20_decrypt(
    key: &[u8; CHACHA20_KEY_LEN],
    nonce: &[u8; CHACHA20_NONCE_LEN],
    data: &[u8],
) -> Vec<u8> {
    chacha20_encrypt(key, nonce, data)
}

fn chacha20_block(
    key: &[u8; CHACHA20_KEY_LEN],
    nonce: &[u8; CHACHA20_NONCE_LEN],
    counter: u32,
) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, &nonce, 1);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = chacha20_encrypt(&key, &nonce, plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&ct[112..]), "874d"); // final two ciphertext bytes
    }

    #[test]
    fn round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let msg = b"proof-of-alibi sample 42";
        let ct = chacha20_encrypt(&key, &nonce, msg);
        assert_ne!(&ct[..], &msg[..]);
        assert_eq!(chacha20_decrypt(&key, &nonce, &ct), msg);
    }

    #[test]
    fn different_keys_differ() {
        let nonce = [0u8; 12];
        let c1 = chacha20_encrypt(&[1u8; 32], &nonce, b"same message");
        let c2 = chacha20_encrypt(&[2u8; 32], &nonce, b"same message");
        assert_ne!(c1, c2);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let c1 = chacha20_encrypt(&key, &[0u8; 12], b"same message");
        let c2 = chacha20_encrypt(&key, &[1u8; 12], b"same message");
        assert_ne!(c1, c2);
    }

    #[test]
    fn multi_block_message() {
        let key = [9u8; 32];
        let nonce = [4u8; 12];
        let msg = vec![0xA5u8; 300]; // spans 5 blocks
        let ct = chacha20_encrypt(&key, &nonce, &msg);
        assert_eq!(ct.len(), 300);
        assert_eq!(chacha20_decrypt(&key, &nonce, &ct), msg);
    }

    #[test]
    fn empty_message() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        assert!(chacha20_encrypt(&key, &nonce, b"").is_empty());
    }
}
