//! A vendored deterministic random-number generator.
//!
//! The repository's from-scratch ethos (and the offline build
//! environment) rules out the `rand` crate, so randomness comes from a
//! hand-rolled xorshift64* generator behind a minimal [`Rng`] trait.
//! Every use of randomness in this workspace is *deterministic by
//! construction* — keys, nonces, and test inputs are derived from
//! explicit seeds — so a small, fast, well-understood PRNG is exactly
//! the right tool. It is **not** cryptographically secure; a deployment
//! would source key material from the TEE's hardware TRNG instead
//! (OP-TEE `TEE_GenerateRandom`), which this trait models.

/// A source of pseudo-random bytes.
///
/// Mirrors the subset of `rand::Rng` the workspace actually uses, so
/// generic bounds read the same: `fn f<R: Rng + ?Sized>(rng: &mut R)`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`next_u64`](Self::next_u64), which are the better-mixed bits of
    /// xorshift64*).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// One random byte.
    fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniformly distributed `u64` below `bound` (which must be
    /// nonzero). Uses rejection sampling to avoid modulo bias.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be nonzero");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin flip.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// The xorshift64* generator (Vigna 2016): a 64-bit xorshift state
/// scrambled by a multiply. Passes BigCrush except MatrixRank; more than
/// adequate for deterministic test vectors and Miller–Rabin bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed (invalid for
    /// xorshift) is remapped through splitmix64 so every seed works.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Run the seed through splitmix64 once so that small,
        // correlated seeds (0, 1, 2, ...) land in well-separated states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }
}

impl Rng for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = XorShift64::seed_from_u64(42);
        let mut b = XorShift64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::seed_from_u64(1);
        let mut b = XorShift64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = XorShift64::seed_from_u64(7);
        for len in [0usize, 1, 7, 8, 9, 16, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = XorShift64::seed_from_u64(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_range_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = XorShift64::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniforms: well inside [0.4, 0.6].
        assert!((sum / 1000.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn bytes_look_balanced() {
        let mut r = XorShift64::seed_from_u64(13);
        let mut buf = [0u8; 4096];
        r.fill_bytes(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total = buf.len() as f64 * 8.0;
        let ratio = ones as f64 / total;
        assert!((ratio - 0.5).abs() < 0.02, "bit ratio {ratio}");
    }

    #[test]
    fn trait_object_and_reference_both_work() {
        fn take_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut r = XorShift64::seed_from_u64(5);
        let via_ref = take_generic(&mut r);
        let dynr: &mut dyn Rng = &mut r;
        let via_dyn = take_generic(dynr);
        assert_ne!(via_ref, via_dyn);
    }
}
