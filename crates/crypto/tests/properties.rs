//! Randomized property tests for the cryptographic substrate.
//!
//! The big-integer layer underpins every signature in the system, so its
//! algebraic laws get the heaviest scrutiny: a silent `divrem` bug would
//! produce signatures that fail verification (best case) or verify keys
//! that accept forgeries (worst case).
//!
//! Each property runs over a deterministic stream of vendored-xorshift
//! inputs (no `proptest` — the offline build has no crates.io), so a
//! failure reproduces exactly by rerunning the test.

use alidrone_crypto::bigint::BigUint;
use alidrone_crypto::chacha20::{chacha20_decrypt, chacha20_encrypt};
use alidrone_crypto::hmac::{hmac_sha256, hmac_sha256_verify};
use alidrone_crypto::rng::{Rng, XorShift64};
use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone_crypto::sha256::sha256;
use std::sync::OnceLock;

const CASES: usize = 64;

fn test_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(0xBEEF);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

/// Random bytes with length uniform in `[0, max_len)`, biased toward
/// interesting shapes (empty, leading zeros) like the old proptest
/// generators were.
fn rand_bytes(rng: &mut XorShift64, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range_u64(max_len as u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    // One case in eight gets a zeroed prefix to exercise normalisation.
    if !v.is_empty() && rng.gen_range_u64(8) == 0 {
        let cut = rng.gen_range_u64(v.len() as u64) as usize;
        for b in &mut v[..cut] {
            *b = 0;
        }
    }
    v
}

/// A BigUint from 0 to ~2^256.
fn arb_biguint(rng: &mut XorShift64) -> BigUint {
    BigUint::from_bytes_be(&rand_bytes(rng, 32))
}

fn arb_nonzero(rng: &mut XorShift64) -> BigUint {
    let b = arb_biguint(rng);
    if b.is_zero() {
        BigUint::one()
    } else {
        b
    }
}

#[test]
fn add_commutative_and_associative() {
    let mut rng = XorShift64::seed_from_u64(1);
    for _ in 0..CASES {
        let (a, b, c) = (
            arb_biguint(&mut rng),
            arb_biguint(&mut rng),
            arb_biguint(&mut rng),
        );
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }
}

#[test]
fn add_sub_round_trip() {
    let mut rng = XorShift64::seed_from_u64(2);
    for _ in 0..CASES {
        let (a, b) = (arb_biguint(&mut rng), arb_biguint(&mut rng));
        assert_eq!(a.add(&b).sub(&b), a);
    }
}

#[test]
fn mul_commutative_and_distributive() {
    let mut rng = XorShift64::seed_from_u64(3);
    for _ in 0..CASES {
        let (a, b, c) = (
            arb_biguint(&mut rng),
            arb_biguint(&mut rng),
            arb_biguint(&mut rng),
        );
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}

/// The fundamental division law: a = q·d + r with r < d.
#[test]
fn divrem_law() {
    let mut rng = XorShift64::seed_from_u64(4);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng);
        let d = arb_nonzero(&mut rng);
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }
}

#[test]
fn shl_shr_round_trip_and_power_of_two() {
    let mut rng = XorShift64::seed_from_u64(5);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng);
        let n = rng.gen_range_u64(200) as usize;
        assert_eq!(a.shl(n).shr(n), a);
        let small = n % 64;
        let pow = BigUint::one().shl(small);
        assert_eq!(a.shl(small), a.mul(&pow));
    }
}

#[test]
fn bytes_and_hex_round_trips() {
    let mut rng = XorShift64::seed_from_u64(6);
    for _ in 0..CASES {
        let bytes = rand_bytes(&mut rng, 64);
        let v = BigUint::from_bytes_be(&bytes);
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
    }
}

/// Modular exponentiation law: x^(a+b) = x^a · x^b (mod m).
#[test]
fn mod_pow_additive_exponents() {
    let mut rng = XorShift64::seed_from_u64(7);
    for _ in 0..CASES / 2 {
        let x = arb_biguint(&mut rng);
        let a = rng.gen_range_u64(1_000);
        let b = rng.gen_range_u64(1_000);
        let m = arb_nonzero(&mut rng);
        let lhs = x.mod_pow(&BigUint::from_u64(a + b), &m);
        let rhs = x
            .mod_pow(&BigUint::from_u64(a), &m)
            .mul_mod(&x.mod_pow(&BigUint::from_u64(b), &m), &m);
        assert_eq!(lhs, rhs);
    }
}

/// Modular inverse, when it exists, actually inverts.
#[test]
fn mod_inverse_inverts() {
    let mut rng = XorShift64::seed_from_u64(8);
    for _ in 0..CASES {
        let a = arb_nonzero(&mut rng);
        let m = arb_nonzero(&mut rng);
        if let Some(inv) = a.mod_inverse(&m) {
            assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
            assert!(inv < m);
        } else if !m.is_one() && !m.is_zero() {
            // No inverse ⇒ gcd must be nontrivial.
            assert!(!a.gcd(&m).is_one());
        }
    }
}

#[test]
fn gcd_divides_both() {
    let mut rng = XorShift64::seed_from_u64(9);
    for _ in 0..CASES {
        let a = arb_nonzero(&mut rng);
        let b = arb_nonzero(&mut rng);
        let g = a.gcd(&b);
        assert!(a.rem(&g).is_zero());
        assert!(b.rem(&g).is_zero());
    }
}

/// RSA sign/verify over arbitrary messages.
#[test]
fn rsa_sign_verify() {
    let mut rng = XorShift64::seed_from_u64(10);
    let key = test_key();
    for _ in 0..16 {
        let msg = rand_bytes(&mut rng, 200);
        let sig = key.sign(&msg, HashAlg::Sha1).unwrap();
        assert!(key.public_key().verify(&msg, &sig, HashAlg::Sha1).is_ok());
    }
}

/// A single-bit signature flip always fails verification.
#[test]
fn rsa_flipped_signature_rejected() {
    let mut rng = XorShift64::seed_from_u64(11);
    let key = test_key();
    for _ in 0..16 {
        let msg = rand_bytes(&mut rng, 64);
        let mut sig = key.sign(&msg, HashAlg::Sha256).unwrap();
        let idx = rng.gen_range_u64(sig.len() as u64) as usize;
        let bit = rng.gen_range_u64(8) as u8;
        sig[idx] ^= 1 << bit;
        assert!(key
            .public_key()
            .verify(&msg, &sig, HashAlg::Sha256)
            .is_err());
    }
}

/// RSA encrypt/decrypt round trip for any payload that fits.
#[test]
fn rsa_encrypt_decrypt() {
    let mut rng = XorShift64::seed_from_u64(12);
    let key = test_key();
    for _ in 0..16 {
        let msg = rand_bytes(&mut rng, 53);
        let ct = key.public_key().encrypt(&msg, &mut rng).unwrap();
        assert_eq!(key.decrypt(&ct).unwrap(), msg);
    }
}

/// ChaCha20 round trip for arbitrary payload, key, nonce.
#[test]
fn chacha_round_trip() {
    let mut rng = XorShift64::seed_from_u64(13);
    for _ in 0..CASES {
        let msg = rand_bytes(&mut rng, 512);
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut nonce);
        let ct = chacha20_encrypt(&key, &nonce, &msg);
        assert_eq!(ct.len(), msg.len());
        assert_eq!(chacha20_decrypt(&key, &nonce, &ct), msg);
    }
}

/// HMAC verification accepts genuine tags and rejects modified ones.
#[test]
fn hmac_verify_consistent() {
    let mut rng = XorShift64::seed_from_u64(14);
    for _ in 0..CASES {
        let key = rand_bytes(&mut rng, 80);
        let msg = rand_bytes(&mut rng, 256);
        let tag = hmac_sha256(&key, &msg);
        assert!(hmac_sha256_verify(&key, &msg, &tag));
        let mut bad = tag;
        let flip = rng.gen_range_u64(32) as usize;
        bad[flip] ^= 0x80;
        assert!(!hmac_sha256_verify(&key, &msg, &bad));
    }
}

/// Incremental chunked hashing equals the one-shot digest.
#[test]
fn hash_chunking_invariant() {
    let mut rng = XorShift64::seed_from_u64(15);
    for _ in 0..CASES {
        let msg = rand_bytes(&mut rng, 600);
        let chunk = 1 + rng.gen_range_u64(63) as usize;
        let mut h256 = alidrone_crypto::sha256::Sha256::new();
        let mut h1 = alidrone_crypto::sha1::Sha1::new();
        for c in msg.chunks(chunk) {
            h256.update(c);
            h1.update(c);
        }
        assert_eq!(h256.finalize(), sha256(&msg));
        assert_eq!(h1.finalize(), alidrone_crypto::sha1::sha1(&msg));
    }
}
