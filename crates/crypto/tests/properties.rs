//! Property-based tests for the cryptographic substrate.
//!
//! The big-integer layer underpins every signature in the system, so its
//! algebraic laws get the heaviest scrutiny: a silent `divrem` bug would
//! produce signatures that fail verification (best case) or verify keys
//! that accept forgeries (worst case).

use alidrone_crypto::bigint::BigUint;
use alidrone_crypto::chacha20::{chacha20_decrypt, chacha20_encrypt};
use alidrone_crypto::hmac::{hmac_sha256, hmac_sha256_verify};
use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone_crypto::sha256::sha256;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn test_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

prop_compose! {
    /// A BigUint from 0 to ~2^256, with bias toward interesting shapes.
    fn arb_biguint()(bytes in prop::collection::vec(any::<u8>(), 0..32)) -> BigUint {
        BigUint::from_bytes_be(&bytes)
    }
}

prop_compose! {
    fn arb_nonzero()(b in arb_biguint()) -> BigUint {
        if b.is_zero() { BigUint::one() } else { b }
    }
}

proptest! {
    #[test]
    fn add_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associative(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn add_sub_round_trip(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    /// The fundamental division law: a = q·d + r with r < d.
    #[test]
    fn divrem_law(a in arb_biguint(), d in arb_nonzero()) {
        let (q, r) = a.divrem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
        prop_assert!(r < d);
    }

    #[test]
    fn shl_shr_round_trip(a in arb_biguint(), n in 0usize..200) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in arb_biguint(), n in 0usize..64) {
        let pow = BigUint::one().shl(n);
        prop_assert_eq!(a.shl(n), a.mul(&pow));
    }

    #[test]
    fn bytes_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        let rt = BigUint::from_bytes_be(&v.to_bytes_be());
        prop_assert_eq!(v, rt);
    }

    #[test]
    fn hex_round_trip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    /// Modular exponentiation law: x^(a+b) = x^a · x^b (mod m).
    #[test]
    fn mod_pow_additive_exponents(
        x in arb_biguint(),
        a in 0u64..1_000,
        b in 0u64..1_000,
        m in arb_nonzero(),
    ) {
        let ea = BigUint::from_u64(a);
        let eb = BigUint::from_u64(b);
        let eab = BigUint::from_u64(a + b);
        let lhs = x.mod_pow(&eab, &m);
        let rhs = x.mod_pow(&ea, &m).mul_mod(&x.mod_pow(&eb, &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    /// Modular inverse, when it exists, actually inverts.
    #[test]
    fn mod_inverse_inverts(a in arb_nonzero(), m in arb_nonzero()) {
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
            prop_assert!(inv < m);
        } else if !m.is_one() && !m.is_zero() {
            // No inverse ⇒ gcd must be nontrivial.
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in arb_nonzero(), b in arb_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    /// RSA sign/verify over arbitrary messages.
    #[test]
    fn rsa_sign_verify(msg in prop::collection::vec(any::<u8>(), 0..200)) {
        let key = test_key();
        let sig = key.sign(&msg, HashAlg::Sha1).unwrap();
        prop_assert!(key.public_key().verify(&msg, &sig, HashAlg::Sha1).is_ok());
    }

    /// A single-bit signature flip always fails verification.
    #[test]
    fn rsa_flipped_signature_rejected(
        msg in prop::collection::vec(any::<u8>(), 0..64),
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let key = test_key();
        let mut sig = key.sign(&msg, HashAlg::Sha256).unwrap();
        let idx = byte % sig.len();
        sig[idx] ^= 1 << bit;
        prop_assert!(key.public_key().verify(&msg, &sig, HashAlg::Sha256).is_err());
    }

    /// RSA encrypt/decrypt round trip for any payload that fits.
    #[test]
    fn rsa_encrypt_decrypt(msg in prop::collection::vec(any::<u8>(), 0..53), seed in any::<u64>()) {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = key.public_key().encrypt(&msg, &mut rng).unwrap();
        prop_assert_eq!(key.decrypt(&ct).unwrap(), msg);
    }

    /// ChaCha20 round trip for arbitrary payload, key, nonce.
    #[test]
    fn chacha_round_trip(
        msg in prop::collection::vec(any::<u8>(), 0..512),
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
    ) {
        let ct = chacha20_encrypt(&key, &nonce, &msg);
        prop_assert_eq!(ct.len(), msg.len());
        prop_assert_eq!(chacha20_decrypt(&key, &nonce, &ct), msg);
    }

    /// HMAC verification accepts genuine tags and rejects modified ones.
    #[test]
    fn hmac_verify_consistent(
        key in prop::collection::vec(any::<u8>(), 0..80),
        msg in prop::collection::vec(any::<u8>(), 0..256),
        flip in 0usize..32,
    ) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(hmac_sha256_verify(&key, &msg, &tag));
        let mut bad = tag;
        bad[flip] ^= 0x80;
        prop_assert!(!hmac_sha256_verify(&key, &msg, &bad));
    }

    /// SHA-256 incremental chunks equal the one-shot digest.
    #[test]
    fn sha256_chunking_invariant(
        msg in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..64,
    ) {
        let mut h = alidrone_crypto::sha256::Sha256::new();
        for c in msg.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), sha256(&msg));
    }

    /// SHA-1 incremental chunks equal the one-shot digest.
    #[test]
    fn sha1_chunking_invariant(
        msg in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..64,
    ) {
        let mut h = alidrone_crypto::sha1::Sha1::new();
        for c in msg.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), alidrone_crypto::sha1::sha1(&msg));
    }
}
