//! Deterministic fault injection for the AliDrone reproduction.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, and failures found by randomized testing are only useful if
//! they *replay*. This crate provides one [`FaultPlane`] per campaign
//! run, seeded once; every component's fault schedule is a pure
//! function of that seed plus a stable injection-point name, so a
//! failing seed reproduces the exact same drops, corruptions, torn
//! writes and GPS blackouts on every rerun.
//!
//! # Injection points
//!
//! | layer | wrapper / hook | faults |
//! |---|---|---|
//! | transport | [`FaultyTransport`] | dropped requests, corrupted responses, injected latency |
//! | replication | [`FaultyLink`] | lost ships, campaign-controlled partitions |
//! | server | [`FaultPlane::delay_hook`] | slow request handlers (overload campaigns) |
//! | storage | [`StorageFaults`] | torn appends, bit flips, full-disk errors |
//! | TEE | [`FaultPlane::sign_fault`], [`FaultPlane::nmea_fault`] | signing failures, NMEA truncation/garbling |
//! | GPS | [`FaultyGps`] | dropout windows, clock jumps |
//!
//! Transport, TEE and storage faults draw from stateful [`FaultStream`]s
//! (one deterministic draw per event, in event order). GPS faults are
//! keyed *statelessly* per update sequence number, so a fix's fate does
//! not depend on how often the sampler polled — only on the seed.
//!
//! ```
//! use alidrone_chaos::FaultPlane;
//!
//! let plane = FaultPlane::new(42);
//! let s = plane.stream("demo");
//! let first: Vec<u64> = (0..4).map(|_| s.next_u64()).collect();
//! // Same seed + same name => the identical schedule.
//! let s2 = FaultPlane::new(42).stream("demo");
//! let again: Vec<u64> = (0..4).map(|_| s2.next_u64()).collect();
//! assert_eq!(first, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use alidrone_core::journal::MemBackend;
use alidrone_core::repl::{ReplAck, ReplError, ReplFrame, ReplLink};
use alidrone_core::wire::transport::Transport;
use alidrone_core::ProtocolError;
use alidrone_geo::{GpsSample, Timestamp};
use alidrone_gps::{GpsDevice, GpsFix};
use alidrone_tee::{NmeaFaultHook, SignFaultHook};

// ------------------------------------------------------------------ rng

/// One SplitMix64 step: advances `state` and returns the output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless mix of a key and a counter (for per-sequence GPS faults).
fn mix(key: u64, n: u64) -> u64 {
    let mut state = key ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// FNV-1a over the injection-point name, so each name gets an
/// independent stream from the same plane seed.
fn fnv1a64(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Maps a raw draw onto `[0, 1)` for probability comparisons.
fn unit(draw: u64) -> f64 {
    // 53 mantissa bits: exact in f64, uniform enough for fault rates.
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------- FaultPlane

/// The root of a deterministic fault campaign: one seed, many streams.
///
/// Every injection point derives its schedule from
/// `seed ^ fnv1a64(name)`, so adding a new fault point never perturbs
/// the schedules of existing ones, and a failing campaign seed replays
/// bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlane {
    seed: u64,
}

impl FaultPlane {
    /// A plane for `seed`. Equal seeds yield equal schedules at every
    /// injection point.
    pub fn new(seed: u64) -> Self {
        FaultPlane { seed }
    }

    /// The campaign seed (log this with every failure report).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The derived key for a named injection point.
    fn key(&self, name: &str) -> u64 {
        self.seed ^ fnv1a64(name)
    }

    /// A stateful fault stream for the injection point `name`.
    pub fn stream(&self, name: &str) -> FaultStream {
        FaultStream::new(self.key(name))
    }

    /// A TEE signing-failure hook: each signing attempt fails with
    /// probability `p`, on a schedule owned by `name`.
    ///
    /// Pass to
    /// [`SecureWorldBuilder::with_sign_fault`](alidrone_tee::SecureWorldBuilder::with_sign_fault).
    pub fn sign_fault(&self, name: &str, p: f64) -> SignFaultHook {
        let stream = self.stream(name);
        Box::new(move || stream.chance(p))
    }

    /// An NMEA corruption hook: with probability `p` a sentence is
    /// truncated at a schedule-chosen byte (or, when the draw lands in
    /// the upper half, garbled by flipping one byte) before the secure
    /// GPS reader parses it.
    ///
    /// Pass to
    /// [`SecureWorldBuilder::with_nmea_fault`](alidrone_tee::SecureWorldBuilder::with_nmea_fault).
    pub fn nmea_fault(&self, name: &str, p: f64) -> NmeaFaultHook {
        let stream = self.stream(name);
        Box::new(move |sentence: String| {
            if !stream.chance(p) || sentence.is_empty() {
                return sentence;
            }
            let draw = stream.next_u64();
            let at = (draw as usize) % sentence.len();
            if draw & 1 == 0 {
                // Truncation: the tail of the sentence never arrived.
                sentence[..at].to_string()
            } else {
                // Garbling: one byte flipped in transit on the UART.
                let mut bytes = sentence.into_bytes();
                bytes[at] ^= 0x20;
                String::from_utf8_lossy(&bytes).into_owned()
            }
        })
    }

    /// A per-call latency hook: with probability `p` a call takes
    /// `delay` longer, on a schedule owned by `name`. The return type
    /// matches
    /// [`AuditorServerBuilder::handle_delay`](alidrone_core::wire::server::AuditorServerBuilder::handle_delay),
    /// so overload campaigns can slow the server's handlers down
    /// deterministically and drive its admission queue to capacity.
    pub fn delay_hook(
        &self,
        name: &str,
        p: f64,
        delay: Duration,
    ) -> Box<dyn Fn() -> Duration + Send + Sync> {
        let stream = self.stream(name);
        Box::new(move || {
            if stream.chance(p) {
                delay
            } else {
                Duration::ZERO
            }
        })
    }

    /// A storage-fault driver for `backend`, scheduled by `name`.
    pub fn storage(&self, name: &str, backend: Arc<MemBackend>) -> StorageFaults {
        StorageFaults {
            stream: self.stream(name),
            backend,
        }
    }

    /// A stateless membership test selecting roughly `fraction` of any
    /// id space, keyed by `name`.
    ///
    /// Fleet campaigns use this to pick cohorts ("7% of drones fly with
    /// degraded GPS") without materialising the fleet: membership is a
    /// pure function of `(seed, name, id)`, so every worker thread
    /// agrees on who is in the cohort and replays agree across runs.
    pub fn cohort(&self, name: &str, fraction: f64) -> Cohort {
        Cohort {
            key: self.key(name),
            fraction: fraction.clamp(0.0, 1.0),
        }
    }
}

/// A deterministic fractional subset of an id space (see
/// [`FaultPlane::cohort`]).
#[derive(Debug, Clone, Copy)]
pub struct Cohort {
    key: u64,
    fraction: f64,
}

impl Cohort {
    /// Whether `id` is in the cohort. Pure: no draws are consumed, so
    /// calling this in any order from any thread is replay-safe.
    pub fn contains(&self, id: u64) -> bool {
        unit(mix(self.key, id)) < self.fraction
    }

    /// The selected fraction (clamped to `[0, 1]`).
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

// --------------------------------------------------------- FaultStream

/// A deterministic stream of fault decisions for one injection point.
///
/// The state is atomic so a stream can be captured by `Send + Sync`
/// hooks; under concurrent callers the *set* of draws is fixed but
/// their assignment to callers follows scheduling order, so campaigns
/// that must replay exactly should drive each stream from one thread.
#[derive(Debug)]
pub struct FaultStream {
    state: AtomicU64,
}

impl FaultStream {
    fn new(key: u64) -> Self {
        FaultStream {
            state: AtomicU64::new(key),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&self) -> u64 {
        let mut prev = self.state.load(Ordering::Relaxed);
        loop {
            let mut next = prev;
            let out = splitmix64(&mut next);
            match self
                .state
                .compare_exchange_weak(prev, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return out,
                Err(actual) => prev = actual,
            }
        }
    }

    /// One Bernoulli trial: `true` with probability `p` (clamped to
    /// `[0, 1]`). Always consumes exactly one draw.
    pub fn chance(&self, p: f64) -> bool {
        unit(self.next_u64()) < p.clamp(0.0, 1.0)
    }

    /// A uniform draw in `0..n` (`0` when `n == 0`).
    pub fn below(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// ----------------------------------------------------- FaultyTransport

/// Seeded probabilistic faults over any [`Transport`].
///
/// Unlike [`Flaky`](alidrone_core::wire::transport::Flaky)'s periodic
/// every-`n`-th schedule, faults here are Bernoulli draws from the
/// plane's stream — the shape randomized campaigns want — while staying
/// exactly replayable from the seed. Injected faults keep the existing
/// wire semantics: a dropped request surfaces as a typed
/// [`ProtocolError::Transport`], a corrupted response has its first
/// byte XOR-flipped (what `Flaky` does), so client-side decode errors
/// stay comparable across both planes.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    stream: FaultStream,
    /// Latency draws use a stream of their own (`<name>.delay`), so
    /// enabling latency never perturbs the drop/corrupt schedule.
    delay_stream: FaultStream,
    /// Request-corruption draws likewise own `<name>.corrupt_req`.
    corrupt_req_stream: FaultStream,
    drop_p: f64,
    corrupt_p: f64,
    corrupt_req_p: f64,
    delay_p: f64,
    delay: Duration,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` on the plane's `name` schedule, with no faults
    /// enabled yet.
    pub fn new(inner: T, plane: &FaultPlane, name: &str) -> Self {
        FaultyTransport {
            inner,
            stream: plane.stream(name),
            delay_stream: plane.stream(&format!("{name}.delay")),
            corrupt_req_stream: plane.stream(&format!("{name}.corrupt_req")),
            drop_p: 0.0,
            corrupt_p: 0.0,
            corrupt_req_p: 0.0,
            delay_p: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// Drops each request with probability `p`.
    pub fn drop_with(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Corrupts each response with probability `p`.
    pub fn corrupt_with(mut self, p: f64) -> Self {
        self.corrupt_p = p;
        self
    }

    /// Corrupts each *request* with probability `p`: one byte at a
    /// schedule-chosen offset is XOR-flipped before the frame reaches
    /// the wire.
    ///
    /// Response corruption (the [`corrupt_with`](Self::corrupt_with)
    /// fault) is invisible to the server; request corruption is the
    /// fault that makes the *server's* error counters move — the shape
    /// a soak needs when its SLOs are judged from scraped server
    /// metrics. Draws come from a dedicated `<name>.corrupt_req`
    /// stream, so enabling this never perturbs existing schedules.
    pub fn corrupt_requests_with(mut self, p: f64) -> Self {
        self.corrupt_req_p = p;
        self
    }

    /// Stalls each call by `delay` with probability `p` before it
    /// reaches the inner transport (path latency / a slow hop). Delay
    /// draws come from a dedicated `<name>.delay` stream, so enabling
    /// latency does not perturb pre-existing drop/corrupt schedules.
    pub fn delay_with(mut self, p: f64, delay: Duration) -> Self {
        self.delay_p = p;
        self.delay = delay;
        self
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        // All draws happen on every call, so the schedule downstream
        // of a call does not depend on whether this one was dropped.
        let dropped = self.stream.chance(self.drop_p);
        let corrupted = self.stream.chance(self.corrupt_p);
        let delayed = self.delay_p > 0.0 && self.delay_stream.chance(self.delay_p);
        if delayed {
            std::thread::sleep(self.delay);
        }
        if dropped {
            return Err(ProtocolError::Transport("chaos: request lost".into()));
        }
        let mangled;
        let request = if self.corrupt_req_p > 0.0
            && self.corrupt_req_stream.chance(self.corrupt_req_p)
            && !request.is_empty()
        {
            let at = self.corrupt_req_stream.below(request.len() as u64) as usize;
            let mut copy = request.to_vec();
            copy[at] ^= 0x55;
            mangled = copy;
            &mangled[..]
        } else {
            request
        };
        let mut resp = self.inner.call(request, now)?;
        if corrupted {
            if let Some(b) = resp.get_mut(0) {
                *b ^= 0x55;
            }
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------- FaultyLink

/// Seeded faults over a replication [`ReplLink`]
/// (see [`alidrone_core::repl`]): probabilistic ship loss plus a
/// campaign-controlled **partition switch** for kill/promote and
/// catch-up scenarios.
///
/// A dropped or partitioned ship surfaces as the typed
/// [`ReplError::Transport`] the real TCP link would produce; the
/// follower never sees the frame, so the primary's retry resumes from
/// the follower's true acked offset — exactly the heal path the
/// catch-up protocol must survive.
pub struct FaultyLink<L> {
    inner: L,
    stream: FaultStream,
    drop_p: f64,
    partitioned: Arc<std::sync::atomic::AtomicBool>,
}

impl<L: ReplLink> FaultyLink<L> {
    /// Wraps `inner` on the plane's `name` schedule, connected (no
    /// partition) and with no drop faults enabled.
    pub fn new(inner: L, plane: &FaultPlane, name: &str) -> Self {
        FaultyLink {
            inner,
            stream: plane.stream(name),
            drop_p: 0.0,
            partitioned: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// Loses each shipped frame with probability `p`.
    pub fn drop_with(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// A handle that partitions/heals this link from campaign code
    /// (clone it before handing the link to the replicator).
    pub fn partition_switch(&self) -> PartitionSwitch {
        PartitionSwitch {
            partitioned: Arc::clone(&self.partitioned),
        }
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: ReplLink> ReplLink for FaultyLink<L> {
    fn ship(&self, frame: &ReplFrame) -> Result<ReplAck, ReplError> {
        if self.partitioned.load(Ordering::Acquire) {
            return Err(ReplError::Transport("chaos: link partitioned".into()));
        }
        // Draw on every ship so downstream schedules don't depend on
        // this frame's fate.
        if self.stream.chance(self.drop_p) {
            return Err(ReplError::Transport("chaos: ship lost".into()));
        }
        self.inner.ship(frame)
    }
}

/// Campaign-side control over a [`FaultyLink`]'s partition state.
#[derive(Debug, Clone)]
pub struct PartitionSwitch {
    partitioned: Arc<std::sync::atomic::AtomicBool>,
}

impl PartitionSwitch {
    /// Cuts the link: every ship fails with a transport error.
    pub fn partition(&self) {
        self.partitioned.store(true, Ordering::Release);
    }

    /// Heals the link; the next replicate resumes catch-up.
    pub fn heal(&self) {
        self.partitioned.store(false, Ordering::Release);
    }

    /// Whether the link is currently cut.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::Acquire)
    }
}

// ------------------------------------------------------- StorageFaults

/// Drives the [`MemBackend`] fault knobs from a plane stream.
///
/// The backend's knobs are one-shot (`tear_next_append`,
/// `fail_next_append`); call [`roll`](StorageFaults::roll) before each
/// batch of auditor operations to arm at most one fault according to
/// the schedule.
#[derive(Debug)]
pub struct StorageFaults {
    stream: FaultStream,
    backend: Arc<MemBackend>,
}

impl StorageFaults {
    /// Rolls the schedule once and arms at most one fault on the
    /// backend: a torn append (probability `tear_p`, keeping a
    /// schedule-chosen prefix of up to 16 bytes), a failed append
    /// (`fail_p`), or a bit flip in the existing image (`flip_p`,
    /// skipped while the journal is empty). Returns what was armed.
    pub fn roll(&self, tear_p: f64, fail_p: f64, flip_p: f64) -> ArmedFault {
        // Fixed draw count per roll keeps the schedule replayable.
        let tear = self.stream.chance(tear_p);
        let fail = self.stream.chance(fail_p);
        let flip = self.stream.chance(flip_p);
        let keep = self.stream.below(16) as usize;
        let offset = self.stream.below(u64::MAX);
        let mask = (self.stream.below(255) + 1) as u8;
        if tear {
            self.backend.tear_next_append(keep);
            ArmedFault::TornAppend { keep }
        } else if fail {
            self.backend.fail_next_append();
            ArmedFault::FailedAppend
        } else if flip && !self.backend.is_empty() {
            let offset = (offset % self.backend.len() as u64) as usize;
            self.backend.flip_bits(offset, mask);
            ArmedFault::BitFlip { offset, mask }
        } else {
            ArmedFault::None
        }
    }
}

/// What [`StorageFaults::roll`] armed, for campaign logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmedFault {
    /// No fault this roll.
    None,
    /// The next append keeps only `keep` bytes (a torn write).
    TornAppend {
        /// Bytes of the record that reach the medium.
        keep: usize,
    },
    /// The next append fails outright (full disk / I/O error).
    FailedAppend,
    /// One bit pattern flipped in the stored image.
    BitFlip {
        /// Byte offset of the flip.
        offset: usize,
        /// XOR mask applied at `offset`.
        mask: u8,
    },
}

// ----------------------------------------------------------- FaultyGps

/// Seeded GPS degradation over any [`GpsDevice`].
///
/// Faults are keyed per update *sequence number*, statelessly: whether
/// update `k` is swallowed or time-shifted depends only on the plane
/// seed and `k`, never on how often (or from how many threads) the
/// sampler polled. Dropouts come in windows — once a window opens at
/// update `k`, updates `k..k + len` all vanish — which is what drives
/// the TEE sampler's staleness detector into declaring a signed gap.
#[derive(Debug)]
pub struct FaultyGps<G> {
    inner: G,
    key: u64,
    dropout_p: f64,
    dropout_len: u64,
    jump_p: f64,
    jump_secs: f64,
}

impl<G: GpsDevice> FaultyGps<G> {
    /// Wraps `device` on the plane's `name` schedule, with no faults
    /// enabled yet.
    pub fn new(device: G, plane: &FaultPlane, name: &str) -> Self {
        FaultyGps {
            inner: device,
            key: plane.key(name),
            dropout_p: 0.0,
            dropout_len: 0,
            jump_p: 0.0,
            jump_secs: 0.0,
        }
    }

    /// Opens a dropout window with probability `p` at each update; a
    /// window swallows `len` consecutive updates (the receiver reports
    /// no fix at all, as under a blackout).
    pub fn dropout_windows(mut self, p: f64, len: u64) -> Self {
        self.dropout_p = p;
        self.dropout_len = len.max(1);
        self
    }

    /// Jumps a fix's timestamp forward by `secs` with probability `p`
    /// per update (a receiver clock glitch).
    pub fn clock_jumps(mut self, p: f64, secs: f64) -> Self {
        self.jump_p = p;
        self.jump_secs = secs;
        self
    }

    /// The wrapped device.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Whether update `seq` falls inside a dropout window.
    pub fn is_dropped(&self, seq: u64) -> bool {
        if self.dropout_p <= 0.0 {
            return false;
        }
        // `seq` is covered if any of the last `len` updates (itself
        // included) opened a window.
        let first = seq.saturating_sub(self.dropout_len - 1);
        (first..=seq).any(|k| unit(mix(self.key ^ 0xD80F, k)) < self.dropout_p)
    }

    fn jumped(&self, seq: u64) -> bool {
        self.jump_p > 0.0 && unit(mix(self.key ^ 0xC10C, seq)) < self.jump_p
    }
}

impl<G: GpsDevice> GpsDevice for FaultyGps<G> {
    fn latest_fix(&self) -> Option<GpsFix> {
        let mut fix = self.inner.latest_fix()?;
        if self.is_dropped(fix.sequence) {
            return None;
        }
        if self.jumped(fix.sequence) {
            let jumped = Timestamp::from_secs(fix.sample.time().secs() + self.jump_secs);
            fix.sample = GpsSample::new(fix.sample.point(), jumped);
        }
        Some(fix)
    }

    fn update_rate_hz(&self) -> f64 {
        self.inner.update_rate_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_core::journal::StorageBackend;
    use alidrone_core::wire::server::AuditorServer;
    use alidrone_core::wire::transport::InProcess;
    use alidrone_core::{Auditor, AuditorConfig};
    use alidrone_crypto::rng::XorShift64;
    use alidrone_crypto::rsa::RsaPrivateKey;
    use alidrone_geo::trajectory::TrajectoryBuilder;
    use alidrone_geo::{Distance, Duration, GeoPoint, NoFlyZone};
    use alidrone_gps::{SimClock, SimulatedReceiver};

    fn key() -> RsaPrivateKey {
        RsaPrivateKey::generate(512, &mut XorShift64::seed_from_u64(0xC405))
    }

    /// A stationary receiver: enough trajectory to cover the test span.
    fn hovering_receiver(clock: SimClock, rate_hz: f64) -> SimulatedReceiver {
        let traj = TrajectoryBuilder::start_at(GeoPoint::new(40.0, -88.0).expect("valid point"))
            .pause(Duration::from_secs(200.0))
            .build()
            .expect("valid trajectory");
        SimulatedReceiver::from_trajectory(traj, clock, rate_hz)
    }

    #[test]
    fn streams_replay_and_names_are_independent() {
        let a: Vec<u64> = {
            let s = FaultPlane::new(7).stream("x");
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let s = FaultPlane::new(7).stream("x");
            (0..8).map(|_| s.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let s = FaultPlane::new(7).stream("y");
            (0..8).map(|_| s.next_u64()).collect()
        };
        let d: Vec<u64> = {
            let s = FaultPlane::new(8).stream("x");
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed + name must replay");
        assert_ne!(a, c, "different names must diverge");
        assert_ne!(a, d, "different seeds must diverge");
    }

    #[test]
    fn chance_respects_extremes() {
        let s = FaultPlane::new(1).stream("edge");
        for _ in 0..64 {
            assert!(!s.chance(0.0));
            assert!(s.chance(1.0));
        }
    }

    #[test]
    fn faulty_transport_drops_are_typed_and_replayable() {
        let run = |seed: u64| -> Vec<bool> {
            let auditor = Auditor::new(AuditorConfig::default(), key());
            let plane = FaultPlane::new(seed);
            let transport = FaultyTransport::new(
                InProcess::new(AuditorServer::builder(auditor).build()),
                &plane,
                "transport",
            )
            .drop_with(0.5);
            let req = alidrone_core::wire::Request::RegisterZone {
                zone: NoFlyZone::new(
                    GeoPoint::new(40.0, -88.0).expect("valid point"),
                    Distance::from_meters(50.0),
                ),
            };
            (0..20)
                .map(|i| {
                    match transport.call(&req.to_bytes(), Timestamp::from_secs(f64::from(i))) {
                        Ok(_) => true,
                        Err(ProtocolError::Transport(_)) => false,
                        Err(other) => panic!("untyped fault surfaced: {other}"),
                    }
                })
                .collect()
        };
        let first = run(99);
        assert_eq!(first, run(99), "same seed must replay the drop pattern");
        assert!(first.iter().any(|ok| *ok) && first.iter().any(|ok| !*ok));
    }

    #[test]
    fn delay_schedules_replay_and_do_not_perturb_drops() {
        // The delay decision pattern replays from the seed.
        let pattern = |seed: u64| -> Vec<bool> {
            let hook =
                FaultPlane::new(seed).delay_hook("slow", 0.5, std::time::Duration::from_millis(1));
            (0..32)
                .map(|_| hook() > std::time::Duration::ZERO)
                .collect()
        };
        let a = pattern(11);
        assert_eq!(a, pattern(11));
        assert!(a.iter().any(|d| *d) && a.iter().any(|d| !*d));

        // Enabling latency on a FaultyTransport leaves an existing
        // drop schedule untouched (delay draws live on a dedicated
        // stream).
        let drops = |with_delay: bool| -> Vec<bool> {
            let auditor = Auditor::new(AuditorConfig::default(), key());
            let plane = FaultPlane::new(42);
            let mut t = FaultyTransport::new(
                InProcess::new(AuditorServer::builder(auditor).build()),
                &plane,
                "transport",
            )
            .drop_with(0.5);
            if with_delay {
                t = t.delay_with(1.0, std::time::Duration::ZERO);
            }
            let req = alidrone_core::wire::Request::RegisterZone {
                zone: NoFlyZone::new(
                    GeoPoint::new(40.0, -88.0).expect("valid point"),
                    Distance::from_meters(50.0),
                ),
            };
            (0..20)
                .map(|i| {
                    t.call(&req.to_bytes(), Timestamp::from_secs(f64::from(i)))
                        .is_ok()
                })
                .collect()
        };
        assert_eq!(drops(false), drops(true));
    }

    #[test]
    fn cohorts_are_stateless_proportional_and_replayable() {
        let plane = FaultPlane::new(5);
        let cohort = plane.cohort("gps_dropout", 0.25);
        let members: Vec<u64> = (0..10_000).filter(|&id| cohort.contains(id)).collect();
        let frac = members.len() as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "selected {frac}");
        // Membership is a pure function of (seed, name, id): a fresh
        // plane agrees exactly, in any evaluation order.
        let again = FaultPlane::new(5).cohort("gps_dropout", 0.25);
        assert!((0..10_000)
            .rev()
            .all(|id| again.contains(id) == cohort.contains(id)));
        // A different name keys a different subset.
        let other = plane.cohort("swarm_burst", 0.25);
        assert!((0..10_000).any(|id| cohort.contains(id) != other.contains(id)));
        // Extremes select nobody / everybody.
        assert!((0..100).all(|id| !plane.cohort("none", 0.0).contains(id)));
        assert!((0..100).all(|id| plane.cohort("all", 1.0).contains(id)));
    }

    #[test]
    fn request_corruption_is_server_visible_and_replayable() {
        // Unlike response corruption (a client-side fault the server
        // never sees), corrupted requests must move the *server's*
        // error counters — that is what a soak's scraped SLOs judge.
        let run = |seed: u64| -> (u64, u64, u64) {
            let obs = alidrone_obs::Obs::noop();
            let auditor = Auditor::with_obs(AuditorConfig::default(), key(), &obs);
            let plane = FaultPlane::new(seed);
            let transport = FaultyTransport::new(
                InProcess::with_obs(AuditorServer::builder(auditor).obs(&obs).build(), &obs),
                &plane,
                "fleet",
            )
            .corrupt_requests_with(0.5);
            // A health check frame is one tag byte, so every corrupted
            // frame is guaranteed to fail decode on the server.
            let req = alidrone_core::wire::Request::HealthCheck;
            for i in 0..40 {
                // The server answers malformed frames with typed error
                // responses, so the call itself never fails.
                transport
                    .call(&req.to_bytes(), Timestamp::from_secs(f64::from(i)))
                    .expect("corruption must not drop the call");
            }
            let snap = obs.snapshot();
            (
                snap.counter("server.requests"),
                snap.counter("server.malformed_frames"),
                snap.counter("server.errors.malformed"),
            )
        };
        let (requests, malformed, errors) = run(77);
        assert_eq!(requests, 40, "every frame reaches the server");
        assert!(malformed > 0, "some corrupted frames must fail decode");
        assert_eq!((requests, malformed, errors), run(77), "seed must replay");
    }

    #[test]
    fn storage_faults_arm_the_backend_deterministically() {
        let arm = |seed: u64| {
            let backend = Arc::new(MemBackend::new());
            backend.append(b"0123456789abcdef").unwrap();
            let faults = FaultPlane::new(seed).storage("journal", Arc::clone(&backend));
            let armed: Vec<ArmedFault> = (0..16).map(|_| faults.roll(0.2, 0.2, 0.2)).collect();
            (armed, backend.bytes())
        };
        let (a1, b1) = arm(3);
        let (a2, b2) = arm(3);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert!(a1.iter().any(|f| *f != ArmedFault::None));
    }

    #[test]
    fn gps_dropout_windows_swallow_consecutive_updates() {
        let clock = SimClock::new();
        let receiver = hovering_receiver(clock.clone(), 5.0);
        let plane = FaultPlane::new(1234);
        let gps = FaultyGps::new(receiver, &plane, "gps").dropout_windows(0.08, 10);

        // Drive simulated time and record which sequences surface.
        let mut seen = Vec::new();
        for step in 0..400 {
            clock.set(Timestamp::from_secs(f64::from(step) * 0.2));
            if let Some(fix) = gps.latest_fix() {
                seen.push(fix.sequence);
            }
        }
        assert!(!seen.is_empty(), "dropouts must not swallow everything");
        assert!(seen.len() < 400, "some updates must be dropped");
        // Dropout decisions are per-sequence, not per-poll.
        for s in &seen {
            assert!(!gps.is_dropped(*s));
        }

        // Windows: a dropped sequence extends `len` updates forward.
        let opener = (0..400u64)
            .find(|s| unit(mix(plane.key("gps") ^ 0xD80F, *s)) < 0.08)
            .expect("some window must open in 400 updates");
        for k in opener..(opener + 10).min(400) {
            assert!(gps.is_dropped(k), "update {k} inside the window");
        }
    }

    #[test]
    fn gps_clock_jumps_shift_time_only() {
        let clock = SimClock::new();
        let receiver = hovering_receiver(clock.clone(), 1.0);
        let gps = FaultyGps::new(receiver, &FaultPlane::new(5), "clock").clock_jumps(1.0, 120.0);
        clock.set(Timestamp::from_secs(3.0));
        let fix = gps.latest_fix().expect("fix available");
        let clean = gps.inner().latest_fix().expect("fix available");
        assert!((fix.sample.time().secs() - clean.sample.time().secs() - 120.0).abs() < 1e-9);
        assert_eq!(fix.sample.point(), clean.sample.point());
        assert_eq!(fix.sequence, clean.sequence);
    }

    #[test]
    fn nmea_fault_hook_truncates_or_garbles() {
        let plane = FaultPlane::new(77);
        let hook = plane.nmea_fault("nmea", 1.0);
        let sentence = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";
        let mangled = hook(sentence.to_string());
        assert_ne!(mangled, sentence, "p=1 must always corrupt");
        // And the schedule replays.
        let hook2 = FaultPlane::new(77).nmea_fault("nmea", 1.0);
        assert_eq!(mangled, hook2(sentence.to_string()));
    }

    #[test]
    fn sign_fault_hook_replays() {
        let plane = FaultPlane::new(21);
        let hook = plane.sign_fault("tee", 0.5);
        let pattern: Vec<bool> = (0..32).map(|_| hook()).collect();
        let hook2 = FaultPlane::new(21).sign_fault("tee", 0.5);
        let again: Vec<bool> = (0..32).map(|_| hook2()).collect();
        assert_eq!(pattern, again);
        assert!(pattern.iter().any(|b| *b) && pattern.iter().any(|b| !*b));
    }
}
