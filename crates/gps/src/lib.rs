//! Simulated GPS receiver stack for the AliDrone reproduction.
//!
//! The paper's prototype reads an Adafruit Ultimate GPS breakout whose
//! update rate is configurable between 1 Hz and 5 Hz (§V-A), and its
//! field studies *replay recorded traces* into the GPS sampler (§VI-A-1).
//! This crate provides the equivalent pieces:
//!
//! * [`SimClock`] — a shared, deterministic virtual clock; all sampling
//!   experiments run on simulated time and are exactly reproducible.
//! * [`GpsDevice`] — the receiver interface the (simulated) secure-world
//!   GPS driver reads from.
//! * [`SimulatedReceiver`] — produces fixes from a
//!   [`Trajectory`](alidrone_geo::trajectory::Trajectory) or a recorded
//!   trace at a configurable update rate, with optional measurement noise
//!   and *fix dropouts* (the paper's residential study observed the
//!   hardware miss an update, §VI-A3 — dropout injection reproduces it).
//! * [`nmea_feed`] — renders fixes as `$GPRMC`/`$GPGGA` sentences, the
//!   wire format the real driver parses.
//!
//! # Example
//!
//! ```
//! use alidrone_geo::trajectory::TrajectoryBuilder;
//! use alidrone_geo::{Distance, Duration, GeoPoint, Speed};
//! use alidrone_gps::{GpsDevice, SimClock, SimulatedReceiver};
//!
//! # fn main() -> Result<(), alidrone_geo::GeoError> {
//! let a = GeoPoint::new(40.0, -88.0)?;
//! let b = a.destination(90.0, Distance::from_km(1.0));
//! let traj = TrajectoryBuilder::start_at(a)
//!     .travel_to(b, Speed::from_mph(30.0))
//!     .build()?;
//!
//! let clock = SimClock::new();
//! let rx = SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0);
//! clock.advance(Duration::from_secs(2.0));
//! let fix = rx.latest_fix().expect("fix after 2 s");
//! assert!(fix.sample.time().secs() <= 2.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
pub mod nmea_feed;
mod receiver;
mod receiver3d;
mod trace;

pub use clock::SimClock;
pub use receiver::{GpsDevice, GpsFix, SimulatedReceiver};
pub use receiver3d::{GpsDevice3d, GpsFix3d, SimulatedReceiver3d};
pub use trace::{trace_from_trajectory, TraceStats};
