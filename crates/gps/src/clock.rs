//! The simulation clock.

use std::sync::Arc;

use alidrone_geo::{Duration, Timestamp};
use std::sync::Mutex;

/// A shared, monotonically-advancing virtual clock.
///
/// Cloning a `SimClock` yields a handle onto the *same* underlying time,
/// so a receiver, a sampler, and an experiment driver can all observe one
/// timeline. Time only moves when someone calls
/// [`advance`](SimClock::advance) (or [`set`](SimClock::set)), which is
/// what makes every experiment in the workspace deterministic.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<Mutex<f64>>,
}

impl SimClock {
    /// Creates a clock at `t = 0`.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Creates a clock starting at `t0`.
    pub fn starting_at(t0: Timestamp) -> Self {
        SimClock {
            now: Arc::new(Mutex::new(t0.secs())),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Timestamp {
        Timestamp::from_secs(*self.now.lock().unwrap())
    }

    /// Advances the clock by `dt` (negative durations are ignored — the
    /// clock never goes backwards).
    pub fn advance(&self, dt: Duration) {
        if dt.secs() > 0.0 {
            *self.now.lock().unwrap() += dt.secs();
        }
    }

    /// Jumps the clock forward to `t` (ignored if `t` is in the past).
    pub fn set(&self, t: Timestamp) {
        let mut now = self.now.lock().unwrap();
        if t.secs() > *now {
            *now = t.secs();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now().secs(), 0.0);
    }

    #[test]
    fn starting_at_offset() {
        let c = SimClock::starting_at(Timestamp::from_secs(100.0));
        assert_eq!(c.now().secs(), 100.0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(1.5));
        c.advance(Duration::from_secs(0.5));
        assert!((c.now().secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(3.0));
        assert!((b.now().secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn never_goes_backwards() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(5.0));
        c.advance(Duration::from_secs(-10.0));
        assert!((c.now().secs() - 5.0).abs() < 1e-12);
        c.set(Timestamp::from_secs(1.0));
        assert!((c.now().secs() - 5.0).abs() < 1e-12);
        c.set(Timestamp::from_secs(7.0));
        assert!((c.now().secs() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn clock_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimClock>();
    }
}
