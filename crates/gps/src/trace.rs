//! Trace utilities: generation from trajectories and summary statistics.

use alidrone_geo::trajectory::Trajectory;
use alidrone_geo::{Distance, Duration, GpsSample, Speed, Timestamp};

/// Discretises a trajectory into the trace a receiver running at
/// `rate_hz` would record, starting at `t0`.
///
/// This is the "recorded GPS trace" of the paper's field studies; replay
/// it with [`SimulatedReceiver::from_trace`](crate::SimulatedReceiver::from_trace).
pub fn trace_from_trajectory(traj: &Trajectory, rate_hz: f64, t0: Timestamp) -> Vec<GpsSample> {
    let rate = rate_hz.clamp(1.0, 5.0);
    traj.sample_every(Duration::from_secs(1.0 / rate), t0)
}

/// Summary statistics over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of samples.
    pub len: usize,
    /// Total elapsed time.
    pub duration: Duration,
    /// Total path length (sum of consecutive distances).
    pub path_length: Distance,
    /// Maximum speed between consecutive samples.
    pub max_speed: Speed,
    /// Mean speed over the whole trace (path length / duration).
    pub mean_speed: Speed,
}

impl TraceStats {
    /// Computes statistics for `trace`. Returns `None` for traces with
    /// fewer than two samples (no intervals to measure).
    pub fn compute(trace: &[GpsSample]) -> Option<Self> {
        if trace.len() < 2 {
            return None;
        }
        let mut path = Distance::ZERO;
        let mut max_speed = Speed::from_mps(0.0);
        for w in trace.windows(2) {
            let d = w[0].point().distance_to(&w[1].point());
            path += d;
            if let Some(v) = GpsSample::speed_between(&w[0], &w[1]) {
                if v > max_speed {
                    max_speed = v;
                }
            }
        }
        let duration = trace[trace.len() - 1].time() - trace[0].time();
        let mean_speed = if duration.secs() > 0.0 {
            Speed::from_mps(path.meters() / duration.secs())
        } else {
            Speed::from_mps(0.0)
        };
        Some(TraceStats {
            len: trace.len(),
            duration,
            path_length: path,
            max_speed,
            mean_speed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::trajectory::TrajectoryBuilder;
    use alidrone_geo::GeoPoint;

    fn traj(dist_m: f64, speed_mps: f64) -> Trajectory {
        let a = GeoPoint::new(40.0, -88.0).unwrap();
        let b = a.destination(90.0, Distance::from_meters(dist_m));
        TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(speed_mps))
            .build()
            .unwrap()
    }

    #[test]
    fn trace_has_expected_density() {
        let trace = trace_from_trajectory(&traj(1_000.0, 10.0), 5.0, Timestamp::EPOCH);
        // 100 s at 5 Hz = 500 samples + final endpoint.
        assert_eq!(trace.len(), 501);
        assert!(alidrone_geo::check_monotonic(&trace).is_ok());
    }

    #[test]
    fn trace_rate_clamped() {
        let trace = trace_from_trajectory(&traj(100.0, 10.0), 100.0, Timestamp::EPOCH);
        // Clamped to 5 Hz: 10 s * 5 Hz + endpoint.
        assert_eq!(trace.len(), 51);
    }

    #[test]
    fn stats_match_construction() {
        let trace = trace_from_trajectory(&traj(1_000.0, 10.0), 1.0, Timestamp::EPOCH);
        let stats = TraceStats::compute(&trace).unwrap();
        assert_eq!(stats.len, trace.len());
        assert!((stats.duration.secs() - 100.0).abs() < 1e-6);
        assert!((stats.path_length.meters() - 1_000.0).abs() < 1.0);
        assert!((stats.mean_speed.mps() - 10.0).abs() < 0.1);
        assert!((stats.max_speed.mps() - 10.0).abs() < 0.5);
    }

    #[test]
    fn stats_of_short_traces_none() {
        assert!(TraceStats::compute(&[]).is_none());
        let one = trace_from_trajectory(&traj(10.0, 10.0), 1.0, Timestamp::EPOCH);
        assert!(TraceStats::compute(&one[..1]).is_none());
    }
}
