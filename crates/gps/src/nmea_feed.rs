//! Rendering fixes as NMEA sentences — the wire format the real GPS
//! driver parses out of the UART buffer (paper §V-B).

use alidrone_geo::{GeoPoint, GpsSample, Timestamp};
use alidrone_nmea::{FixQuality, Gga, NmeaError, Rmc};

use crate::GpsFix;

/// Renders a fix as a `$GPRMC` line (active status, date fixed to the
/// simulation epoch 2026-07-06).
pub fn fix_to_rmc(fix: &GpsFix) -> String {
    Rmc {
        utc_seconds: fix.sample.time().secs().rem_euclid(86_400.0),
        active: true,
        lat_deg: fix.sample.lat_deg(),
        lon_deg: fix.sample.lon_deg(),
        speed_knots: fix.speed.mps() / 0.514_444,
        course_deg: None,
        date: (6, 7, 26),
    }
    .to_sentence()
}

/// Renders a fix as a `$GPGGA` line with the given altitude.
pub fn fix_to_gga(fix: &GpsFix, altitude_m: f64) -> String {
    Gga {
        utc_seconds: fix.sample.time().secs().rem_euclid(86_400.0),
        lat_deg: fix.sample.lat_deg(),
        lon_deg: fix.sample.lon_deg(),
        quality: FixQuality::Gps,
        num_satellites: 9,
        hdop: 1.1,
        altitude_m,
    }
    .to_sentence()
}

/// Parses a `$GPRMC` line back into a [`GpsSample`], resolving the time
/// of day against `day_base` (the timestamp of local midnight) — the
/// inverse of [`fix_to_rmc`], and what the secure-world GPS driver does
/// with the raw UART text.
///
/// # Errors
///
/// Returns the underlying [`NmeaError`] for malformed sentences, or a
/// `MalformedField` if the coordinates are out of range.
pub fn rmc_to_sample(line: &str, day_base: Timestamp) -> Result<GpsSample, NmeaError> {
    let rmc: Rmc = line.parse()?;
    let point = GeoPoint::new(rmc.lat_deg, rmc.lon_deg).map_err(|_| NmeaError::MalformedField {
        field: "coordinates",
        value: format!("({}, {})", rmc.lat_deg, rmc.lon_deg),
    })?;
    Ok(GpsSample::new(
        point,
        Timestamp::from_secs(day_base.secs() + rmc.utc_seconds),
    ))
}

/// Renders a fix as a `$GPVTG` line (track and ground speed).
pub fn fix_to_vtg(fix: &GpsFix) -> String {
    let knots = fix.speed.mps() / 0.514_444;
    alidrone_nmea::Vtg {
        course_true_deg: None,
        course_mag_deg: None,
        speed_knots: knots,
        speed_kmh: fix.speed.mps() * 3.6,
    }
    .to_sentence()
}

/// Renders a healthy 3-D `$GPGSA` line (fixed satellite set — the
/// simulator does not model the constellation).
pub fn fix_to_gsa() -> String {
    alidrone_nmea::Gsa {
        auto_selection: true,
        mode: alidrone_nmea::FixMode::Fix3d,
        satellites: vec![4, 7, 9, 12, 16, 23, 27, 30, 31],
        pdop: 1.8,
        hdop: 1.1,
        vdop: 1.4,
    }
    .to_sentence()
}

/// The full per-update sentence burst a real receiver emits: RMC, GGA,
/// VTG, GSA — in that order, each CRLF-terminated.
///
/// This is what would flow over the UART; the secure-world driver picks
/// the `$GPRMC` line out of exactly such a burst.
pub fn fix_to_burst(fix: &GpsFix, altitude_m: f64) -> String {
    let mut out = String::new();
    out.push_str(&fix_to_rmc(fix));
    out.push_str("\r\n");
    out.push_str(&fix_to_gga(fix, altitude_m));
    out.push_str("\r\n");
    out.push_str(&fix_to_vtg(fix));
    out.push_str("\r\n");
    out.push_str(&fix_to_gsa());
    out.push_str("\r\n");
    out
}

/// Extracts the `$--RMC` line from a sentence burst and parses it —
/// the driver-side counterpart of [`fix_to_burst`].
///
/// # Errors
///
/// Returns [`NmeaError::MissingField`] when no RMC line is present, or
/// the underlying parse error.
pub fn burst_to_sample(burst: &str, day_base: Timestamp) -> Result<GpsSample, NmeaError> {
    for line in burst.lines() {
        if line.len() > 6 && line[1..].starts_with("GP") && line[3..6] == *"RMC" {
            return rmc_to_sample(line, day_base);
        }
    }
    Err(NmeaError::MissingField("rmc sentence in burst"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::Speed;

    fn fix(lat: f64, lon: f64, t: f64, speed_mps: f64) -> GpsFix {
        GpsFix {
            sample: GpsSample::new(GeoPoint::new(lat, lon).unwrap(), Timestamp::from_secs(t)),
            speed: Speed::from_mps(speed_mps),
            sequence: 7,
        }
    }

    #[test]
    fn rmc_round_trip_through_wire_format() {
        let f = fix(40.0987, -88.2543, 4_521.25, 13.0);
        let line = fix_to_rmc(&f);
        let sample = rmc_to_sample(&line, Timestamp::EPOCH).unwrap();
        assert!(
            f.sample.point().distance_to(&sample.point()).meters() < 0.5,
            "position drifted"
        );
        assert!((sample.time().secs() - 4_521.25).abs() < 0.01);
    }

    #[test]
    fn rmc_time_wraps_at_midnight() {
        let f = fix(40.0, -88.0, 90_000.0, 0.0); // > 24 h
        let line = fix_to_rmc(&f);
        let sample = rmc_to_sample(&line, Timestamp::EPOCH).unwrap();
        assert!((sample.time().secs() - 3_600.0).abs() < 0.01);
    }

    #[test]
    fn day_base_offsets_time() {
        let f = fix(40.0, -88.0, 100.0, 0.0);
        let line = fix_to_rmc(&f);
        let sample = rmc_to_sample(&line, Timestamp::from_secs(86_400.0)).unwrap();
        assert!((sample.time().secs() - 86_500.0).abs() < 0.01);
    }

    #[test]
    fn gga_renders_altitude() {
        let f = fix(40.0, -88.0, 10.0, 5.0);
        let line = fix_to_gga(&f, 120.5);
        let gga: Gga = line.parse().unwrap();
        assert!((gga.altitude_m - 120.5).abs() < 0.05);
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(rmc_to_sample("$GPRMC,garbage*00", Timestamp::EPOCH).is_err());
        assert!(rmc_to_sample("not nmea at all", Timestamp::EPOCH).is_err());
    }

    #[test]
    fn burst_contains_all_four_sentences() {
        let f = fix(40.0987, -88.2543, 100.0, 12.0);
        let burst = fix_to_burst(&f, 230.0);
        let lines: Vec<&str> = burst.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("$GPRMC"));
        assert!(lines[1].starts_with("$GPGGA"));
        assert!(lines[2].starts_with("$GPVTG"));
        assert!(lines[3].starts_with("$GPGSA"));
        // Every line carries a valid checksum.
        for line in lines {
            alidrone_nmea::split_sentence(line).unwrap();
        }
    }

    #[test]
    fn burst_round_trips_through_driver_path() {
        let f = fix(40.0987, -88.2543, 4_521.25, 13.0);
        let burst = fix_to_burst(&f, 230.0);
        let sample = burst_to_sample(&burst, Timestamp::EPOCH).unwrap();
        assert!(f.sample.point().distance_to(&sample.point()).meters() < 0.5);
        assert!((sample.time().secs() - 4_521.25).abs() < 0.01);
    }

    #[test]
    fn burst_without_rmc_rejected() {
        let f = fix(40.0, -88.0, 10.0, 5.0);
        let burst = format!("{}\r\n{}\r\n", fix_to_gga(&f, 1.0), fix_to_gsa());
        assert!(burst_to_sample(&burst, Timestamp::EPOCH).is_err());
    }

    #[test]
    fn vtg_speed_round_trip() {
        let f = fix(40.0, -88.0, 10.0, 20.0);
        let line = fix_to_vtg(&f);
        let vtg: alidrone_nmea::Vtg = line.parse().unwrap();
        assert!((vtg.speed_mps() - 20.0).abs() < 0.05);
    }
}
