//! 3-D receiver support (§VII-B1): a receiver that also reports
//! altitude, as the GGA sentence stream of a real module does.

use alidrone_geo::three_d::GpsSample3d;
use alidrone_geo::trajectory::Trajectory3d;
use alidrone_geo::{Distance, Timestamp};

use crate::receiver::{GpsDevice, GpsFix};
use crate::SimClock;

/// A fix with altitude: the 2-D fix plus the GGA-reported altitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix3d {
    /// The plan-view fix.
    pub fix: GpsFix,
    /// Altitude above ground.
    pub alt: Distance,
}

impl GpsFix3d {
    /// The 4-tuple sample `(lat, lon, alt, t)`.
    ///
    /// # Panics
    ///
    /// Never panics for fixes produced by [`SimulatedReceiver3d`] (whose
    /// altitudes are validated at trajectory construction).
    pub fn sample3d(&self) -> GpsSample3d {
        GpsSample3d::new(self.fix.sample.point(), self.alt, self.fix.sample.time())
            .expect("receiver altitudes are non-negative")
    }
}

/// A receiver exposing altitude alongside the 2-D interface.
pub trait GpsDevice3d: GpsDevice {
    /// The latest fix with altitude, or `None` before the first update.
    fn latest_fix_3d(&self) -> Option<GpsFix3d>;
}

/// A deterministic 3-D receiver following a [`Trajectory3d`].
///
/// Wraps the plan-view [`SimulatedReceiver`](crate::SimulatedReceiver)
/// and adds the altitude profile; the 2-D interface ([`GpsDevice`])
/// keeps working, so all existing 2-D consumers (the default TEE driver,
/// the samplers) run unchanged against a 3-D receiver.
pub struct SimulatedReceiver3d {
    inner: crate::SimulatedReceiver,
    trajectory: Trajectory3d,
    start: Timestamp,
}

impl SimulatedReceiver3d {
    /// Creates a receiver following `trajectory` from the clock's
    /// current time, updating at `rate_hz` (clamped to 1–5 Hz).
    pub fn from_trajectory(trajectory: Trajectory3d, clock: SimClock, rate_hz: f64) -> Self {
        let start = clock.now();
        let inner =
            crate::SimulatedReceiver::from_trajectory(trajectory.plan().clone(), clock, rate_hz);
        SimulatedReceiver3d {
            inner,
            trajectory,
            start,
        }
    }
}

impl GpsDevice for SimulatedReceiver3d {
    fn latest_fix(&self) -> Option<GpsFix> {
        self.inner.latest_fix()
    }

    fn update_rate_hz(&self) -> f64 {
        self.inner.update_rate_hz()
    }
}

impl GpsDevice3d for SimulatedReceiver3d {
    fn latest_fix_3d(&self) -> Option<GpsFix3d> {
        let fix = self.inner.latest_fix()?;
        let elapsed = fix.sample.time() - self.start;
        Some(GpsFix3d {
            fix,
            alt: self.trajectory.altitude_at(elapsed),
        })
    }
}

impl<T: GpsDevice3d + ?Sized> GpsDevice3d for std::sync::Arc<T> {
    fn latest_fix_3d(&self) -> Option<GpsFix3d> {
        (**self).latest_fix_3d()
    }
}

impl std::fmt::Debug for SimulatedReceiver3d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedReceiver3d")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::trajectory::TrajectoryBuilder;
    use alidrone_geo::{Duration, GeoPoint, Speed};

    fn receiver(clock: SimClock) -> SimulatedReceiver3d {
        let a = GeoPoint::new(40.0, -88.0).unwrap();
        let b = a.destination(90.0, Distance::from_meters(1_000.0));
        let plan = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap(); // 100 s
        let t3 = alidrone_geo::trajectory::Trajectory3d::new(
            plan,
            vec![(0.0, 0.0), (20.0, 100.0), (80.0, 100.0), (100.0, 0.0)],
        )
        .unwrap();
        SimulatedReceiver3d::from_trajectory(t3, clock, 5.0)
    }

    #[test]
    fn altitude_tracks_profile() {
        let clock = SimClock::new();
        let rx = receiver(clock.clone());
        clock.advance(Duration::from_secs(10.0));
        let f = rx.latest_fix_3d().unwrap();
        assert!((f.alt.meters() - 50.0).abs() < 1.0, "{}", f.alt.meters());
        clock.advance(Duration::from_secs(40.0));
        let f = rx.latest_fix_3d().unwrap();
        assert!((f.alt.meters() - 100.0).abs() < 1.0);
    }

    #[test]
    fn two_d_interface_still_works() {
        let clock = SimClock::new();
        let rx = receiver(clock.clone());
        clock.advance(Duration::from_secs(50.0));
        let f2 = rx.latest_fix().unwrap();
        let f3 = rx.latest_fix_3d().unwrap();
        assert_eq!(f2, f3.fix);
        assert_eq!(rx.update_rate_hz(), 5.0);
    }

    #[test]
    fn sample3d_round_trips_through_bytes() {
        let clock = SimClock::new();
        let rx = receiver(clock.clone());
        clock.advance(Duration::from_secs(30.0));
        let s = rx.latest_fix_3d().unwrap().sample3d();
        let rt = GpsSample3d::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, rt);
    }
}
