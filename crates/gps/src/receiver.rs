//! The simulated GPS receiver.

use std::collections::BTreeSet;
use std::fmt;

use alidrone_geo::trajectory::Trajectory;
use alidrone_geo::{Distance, GeoPoint, GpsSample, Speed, Timestamp};

use crate::SimClock;

/// One receiver measurement: the sample plus receiver-reported metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// The position/time sample.
    pub sample: GpsSample,
    /// Receiver-reported ground speed.
    pub speed: Speed,
    /// Monotonic update counter. Two reads returning the same `sequence`
    /// saw the same measurement — the paper's fixed-rate sampler uses
    /// this to "wait until the first measurement update" (§VI-A1).
    pub sequence: u64,
}

impl fmt::Display for GpsFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fix #{} {}", self.sequence, self.sample)
    }
}

/// A GPS receiver as seen by the (secure-world) GPS driver: something
/// that holds a latest measurement, refreshed at its own update rate.
pub trait GpsDevice: Send + Sync {
    /// The most recent fix at the current simulated time, or `None`
    /// before the first update (or during a cold start).
    fn latest_fix(&self) -> Option<GpsFix>;

    /// The receiver's configured update rate in Hz.
    fn update_rate_hz(&self) -> f64;
}

impl<T: GpsDevice + ?Sized> GpsDevice for std::sync::Arc<T> {
    fn latest_fix(&self) -> Option<GpsFix> {
        (**self).latest_fix()
    }

    fn update_rate_hz(&self) -> f64 {
        (**self).update_rate_hz()
    }
}

enum Source {
    /// Follow a trajectory in real (simulated) time.
    Trajectory { traj: Trajectory, start: Timestamp },
    /// Replay a recorded trace; updates occur at the recorded timestamps.
    Trace(Vec<GpsSample>),
}

/// A deterministic simulated receiver.
///
/// Update `k` becomes available at `t_k = start + k / rate` (trajectory
/// mode) or at the recorded timestamp (trace mode). Specific updates can
/// be *dropped* to model the missed fixes the paper observed in the
/// field, and zero-mean measurement noise can be added; both are
/// deterministic functions of the sequence number.
pub struct SimulatedReceiver {
    clock: SimClock,
    source: Source,
    rate_hz: f64,
    dropped: BTreeSet<u64>,
    noise_std_m: f64,
    noise_seed: u64,
}

impl SimulatedReceiver {
    /// Creates a receiver that follows `traj` starting at the clock's
    /// *current* time, updating at `rate_hz` (clamped to the hardware's
    /// 1–5 Hz range, §V-A).
    pub fn from_trajectory(traj: Trajectory, clock: SimClock, rate_hz: f64) -> Self {
        let start = clock.now();
        SimulatedReceiver {
            clock,
            source: Source::Trajectory { traj, start },
            rate_hz: rate_hz.clamp(1.0, 5.0),
            dropped: BTreeSet::new(),
            noise_std_m: 0.0,
            noise_seed: 0,
        }
    }

    /// Creates a receiver replaying a recorded `trace` (samples must have
    /// strictly increasing timestamps). `rate_hz` describes the nominal
    /// rate the trace was recorded at.
    pub fn from_trace(trace: Vec<GpsSample>, clock: SimClock, rate_hz: f64) -> Self {
        SimulatedReceiver {
            clock,
            source: Source::Trace(trace),
            rate_hz: rate_hz.clamp(1.0, 5.0),
            dropped: BTreeSet::new(),
            noise_std_m: 0.0,
            noise_seed: 0,
        }
    }

    /// Marks update `sequence` as lost: the receiver will keep reporting
    /// the previous fix through that interval (models the §VI-A3 missed
    /// update that halved the effective rate to 2.5 Hz).
    pub fn drop_update(&mut self, sequence: u64) -> &mut Self {
        self.dropped.insert(sequence);
        self
    }

    /// Adds zero-mean Gaussian position noise with the given standard
    /// deviation, as a deterministic function of `(seed, sequence)`.
    pub fn with_noise(&mut self, std_m: f64, seed: u64) -> &mut Self {
        self.noise_std_m = std_m.max(0.0);
        self.noise_seed = seed;
        self
    }

    fn fix_at_index(&self, k: u64) -> Option<GpsFix> {
        match &self.source {
            Source::Trajectory { traj, start } => {
                let t = *start + alidrone_geo::Duration::from_secs(k as f64 / self.rate_hz);
                let elapsed = t - *start;
                let pos = traj.position_at(elapsed);
                let pos = self.perturb(pos, k);
                // Approximate speed from a small backward difference.
                let eps = 0.2;
                let prev = traj.position_at(alidrone_geo::Duration::from_secs(
                    (elapsed.secs() - eps).max(0.0),
                ));
                let speed = if elapsed.secs() > 0.0 {
                    Speed::from_mps(prev.distance_to(&pos).meters() / eps)
                } else {
                    Speed::from_mps(0.0)
                };
                Some(GpsFix {
                    sample: GpsSample::new(pos, t),
                    speed,
                    sequence: k,
                })
            }
            Source::Trace(samples) => {
                let s = samples.get(k as usize)?;
                let pos = self.perturb(s.point(), k);
                let speed = if k > 0 {
                    let prev = &samples[(k - 1) as usize];
                    GpsSample::speed_between(prev, s).unwrap_or(Speed::from_mps(0.0))
                } else {
                    Speed::from_mps(0.0)
                };
                Some(GpsFix {
                    sample: GpsSample::new(pos, s.time()),
                    speed,
                    sequence: k,
                })
            }
        }
    }

    fn perturb(&self, p: GeoPoint, sequence: u64) -> GeoPoint {
        if self.noise_std_m <= 0.0 {
            return p;
        }
        // Two deterministic standard normals via Box–Muller over a
        // SplitMix64 stream keyed by (seed, sequence).
        let mut state = self.noise_seed ^ sequence.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next_unit = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let u1 = next_unit().max(1e-12);
        let u2 = next_unit();
        let mag = (-2.0 * u1.ln()).sqrt() * self.noise_std_m;
        let east = mag * (std::f64::consts::TAU * u2).cos();
        let north = mag * (std::f64::consts::TAU * u2).sin();
        p.destination(90.0, Distance::from_meters(east))
            .destination(0.0, Distance::from_meters(north))
    }

    /// The index of the most recent *non-dropped* update at time `now`,
    /// if any update has occurred yet.
    fn current_index(&self) -> Option<u64> {
        let now = self.clock.now();
        let latest = match &self.source {
            Source::Trajectory { start, .. } => {
                let dt = now - *start;
                if dt.secs() < 0.0 {
                    return None;
                }
                (dt.secs() * self.rate_hz).floor() as u64
            }
            Source::Trace(samples) => {
                let n = samples
                    .iter()
                    .take_while(|s| s.time().secs() <= now.secs())
                    .count();
                if n == 0 {
                    return None;
                }
                (n - 1) as u64
            }
        };
        // Walk back over dropped updates.
        let mut k = latest;
        loop {
            if !self.dropped.contains(&k) {
                return Some(k);
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
    }
}

impl GpsDevice for SimulatedReceiver {
    fn latest_fix(&self) -> Option<GpsFix> {
        let k = self.current_index()?;
        self.fix_at_index(k)
    }

    fn update_rate_hz(&self) -> f64 {
        self.rate_hz
    }
}

impl fmt::Debug for SimulatedReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.source {
            Source::Trajectory { .. } => "trajectory",
            Source::Trace(_) => "trace",
        };
        f.debug_struct("SimulatedReceiver")
            .field("source", &kind)
            .field("rate_hz", &self.rate_hz)
            .field("dropped", &self.dropped.len())
            .field("noise_std_m", &self.noise_std_m)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::trajectory::TrajectoryBuilder;
    use alidrone_geo::Duration;

    fn east_trajectory() -> Trajectory {
        let a = GeoPoint::new(40.0, -88.0).unwrap();
        let b = a.destination(90.0, Distance::from_meters(1_000.0));
        TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap()
    }

    #[test]
    fn no_fix_before_clock_moves_is_fix_zero() {
        let clock = SimClock::new();
        let rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 5.0);
        // Update 0 happens at t=0 exactly.
        let fix = rx.latest_fix().unwrap();
        assert_eq!(fix.sequence, 0);
    }

    #[test]
    fn updates_follow_rate() {
        let clock = SimClock::new();
        let rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 5.0);
        clock.advance(Duration::from_secs(1.01));
        let fix = rx.latest_fix().unwrap();
        // At 5 Hz, just past t=1.0 we are at update 5.
        assert_eq!(fix.sequence, 5);
        assert!((fix.sample.time().secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rate_clamped_to_hardware_range() {
        let clock = SimClock::new();
        let rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 50.0);
        assert_eq!(rx.update_rate_hz(), 5.0);
        let rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock, 0.1);
        assert_eq!(rx.update_rate_hz(), 1.0);
    }

    #[test]
    fn position_advances_along_trajectory() {
        let clock = SimClock::new();
        let rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 1.0);
        clock.advance(Duration::from_secs(50.0));
        let fix = rx.latest_fix().unwrap();
        let origin = GeoPoint::new(40.0, -88.0).unwrap();
        let d = origin.distance_to(&fix.sample.point()).meters();
        assert!((d - 500.0).abs() < 1.0, "travelled {d} m");
        // Speed estimate near 10 m/s.
        assert!((fix.speed.mps() - 10.0).abs() < 1.0, "{}", fix.speed);
    }

    #[test]
    fn dropped_update_repeats_previous() {
        let clock = SimClock::new();
        let mut rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 1.0);
        rx.drop_update(3);
        clock.advance(Duration::from_secs(3.5));
        let fix = rx.latest_fix().unwrap();
        assert_eq!(fix.sequence, 2, "update 3 dropped; still seeing 2");
        clock.advance(Duration::from_secs(1.0));
        assert_eq!(rx.latest_fix().unwrap().sequence, 4);
    }

    #[test]
    fn all_updates_dropped_yields_none() {
        let clock = SimClock::new();
        let mut rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 1.0);
        rx.drop_update(0).drop_update(1);
        clock.advance(Duration::from_secs(1.5));
        assert!(rx.latest_fix().is_none());
    }

    #[test]
    fn trace_replay_uses_recorded_timestamps() {
        let origin = GeoPoint::new(40.0, -88.0).unwrap();
        let trace: Vec<GpsSample> = (0..5)
            .map(|i| {
                GpsSample::new(
                    origin.destination(90.0, Distance::from_meters(i as f64 * 10.0)),
                    Timestamp::from_secs(i as f64 * 0.5),
                )
            })
            .collect();
        let clock = SimClock::new();
        let rx = SimulatedReceiver::from_trace(trace, clock.clone(), 2.0);
        clock.advance(Duration::from_secs(1.2));
        let fix = rx.latest_fix().unwrap();
        assert_eq!(fix.sequence, 2);
        assert!((fix.sample.time().secs() - 1.0).abs() < 1e-9);
        // Past the end of the trace the last sample persists.
        clock.advance(Duration::from_secs(100.0));
        assert_eq!(rx.latest_fix().unwrap().sequence, 4);
    }

    #[test]
    fn trace_before_first_sample_yields_none() {
        let origin = GeoPoint::new(40.0, -88.0).unwrap();
        let trace = vec![GpsSample::new(origin, Timestamp::from_secs(10.0))];
        let clock = SimClock::new();
        let rx = SimulatedReceiver::from_trace(trace, clock.clone(), 1.0);
        assert!(rx.latest_fix().is_none());
        clock.advance(Duration::from_secs(10.0));
        assert!(rx.latest_fix().is_some());
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let clock = SimClock::new();
        let mut rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 1.0);
        rx.with_noise(3.0, 42);
        clock.advance(Duration::from_secs(10.0));
        let f1 = rx.latest_fix().unwrap();
        let f2 = rx.latest_fix().unwrap();
        assert_eq!(f1, f2, "same sequence must give identical noise");
        // Noise should displace but not teleport (6 sigma bound).
        let clean_clock = SimClock::new();
        let clean = SimulatedReceiver::from_trajectory(east_trajectory(), clean_clock.clone(), 1.0);
        clean_clock.advance(Duration::from_secs(10.0));
        let cf = clean.latest_fix().unwrap();
        let d = cf.sample.point().distance_to(&f1.sample.point()).meters();
        assert!(d < 18.0, "noise displaced {d} m");
    }

    #[test]
    fn same_seed_replays_identical_fix_sequence() {
        let run = |seed: u64| -> Vec<GpsFix> {
            let clock = SimClock::new();
            let mut rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 2.0);
            rx.with_noise(2.5, seed).drop_update(4).drop_update(5);
            (0..40)
                .filter_map(|_| {
                    clock.advance(Duration::from_secs(0.5));
                    rx.latest_fix()
                })
                .collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay bit-identical fixes");
        let c = run(8);
        assert_ne!(a, c, "a different seed must perturb differently");
        // The dropout window repeats fix 3 while 4 and 5 are lost.
        assert!(a.iter().any(|f| f.sequence == 3));
        assert!(a.iter().all(|f| f.sequence != 4 && f.sequence != 5));
    }

    #[test]
    fn zero_noise_leaves_position_exact() {
        let clock = SimClock::new();
        let mut rx = SimulatedReceiver::from_trajectory(east_trajectory(), clock.clone(), 1.0);
        rx.with_noise(0.0, 1);
        clock.advance(Duration::from_secs(5.0));
        let fix = rx.latest_fix().unwrap();
        let origin = GeoPoint::new(40.0, -88.0).unwrap();
        assert!((origin.distance_to(&fix.sample.point()).meters() - 50.0).abs() < 0.5);
    }
}
