//! Randomized tests for the receiver model: the invariants every
//! consumer (the sampler, the TEE driver) silently depends on.
//!
//! Inputs come from a seeded deterministic stream (no `proptest` — the
//! offline build has no crates.io), so failures reproduce exactly.

use alidrone_crypto::rng::{Rng, XorShift64};
use alidrone_geo::trajectory::TrajectoryBuilder;
use alidrone_geo::{Distance, Duration, GeoPoint, Speed};
use alidrone_gps::nmea_feed::{burst_to_sample, fix_to_burst};
use alidrone_gps::{GpsDevice, SimClock, SimulatedReceiver};
use std::collections::BTreeSet;

const CASES: usize = 64;

fn in_range(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.gen_f64() * (hi - lo)
}

fn receiver(rate_hz: f64, speed_mps: f64, dist_m: f64, clock: SimClock) -> SimulatedReceiver {
    let a = GeoPoint::new(40.1, -88.2).unwrap();
    let b = a.destination(90.0, Distance::from_meters(dist_m));
    let traj = TrajectoryBuilder::start_at(a)
        .travel_to(b, Speed::from_mps(speed_mps))
        .build()
        .unwrap();
    SimulatedReceiver::from_trajectory(traj, clock, rate_hz)
}

/// Fix sequence numbers and timestamps never go backwards as the
/// clock advances.
#[test]
fn fixes_are_monotone() {
    let mut rng = XorShift64::seed_from_u64(201);
    for _ in 0..CASES {
        let rate = in_range(&mut rng, 1.0, 5.0);
        let speed = in_range(&mut rng, 1.0, 40.0);
        let steps = 1 + rng.gen_range_u64(39) as usize;
        let clock = SimClock::new();
        let rx = receiver(rate, speed, 10_000.0, clock.clone());
        let mut last_seq = 0u64;
        let mut last_t = f64::NEG_INFINITY;
        for _ in 0..steps {
            let dt = in_range(&mut rng, 0.01, 3.0);
            clock.advance(Duration::from_secs(dt));
            if let Some(fix) = rx.latest_fix() {
                assert!(fix.sequence >= last_seq);
                assert!(fix.sample.time().secs() >= last_t);
                last_seq = fix.sequence;
                last_t = fix.sample.time().secs();
            }
        }
    }
}

/// A fix's timestamp never exceeds the clock, and lags it by at most
/// one update period.
#[test]
fn fix_time_tracks_clock() {
    let mut rng = XorShift64::seed_from_u64(202);
    for _ in 0..CASES {
        let rate = in_range(&mut rng, 1.0, 5.0);
        let t = in_range(&mut rng, 0.5, 100.0);
        let clock = SimClock::new();
        let rx = receiver(rate, 10.0, 10_000.0, clock.clone());
        clock.advance(Duration::from_secs(t));
        let fix = rx.latest_fix().expect("clock moved");
        let ft = fix.sample.time().secs();
        assert!(ft <= t + 1e-9);
        assert!(t - ft <= 1.0 / rate + 1e-9, "lag {} at rate {rate}", t - ft);
    }
}

/// Dropping updates only ever makes the reported fix *older*, never
/// newer, and never fabricates positions.
#[test]
fn dropouts_only_delay() {
    let mut rng = XorShift64::seed_from_u64(203);
    for _ in 0..CASES {
        let rate = in_range(&mut rng, 1.0, 5.0);
        let t = in_range(&mut rng, 2.0, 60.0);
        let ndropped = rng.gen_range_u64(20);
        let dropped: BTreeSet<u64> = (0..ndropped).map(|_| rng.gen_range_u64(100)).collect();
        let clock_a = SimClock::new();
        let clean = receiver(rate, 10.0, 10_000.0, clock_a.clone());
        let clock_b = SimClock::new();
        let mut lossy = receiver(rate, 10.0, 10_000.0, clock_b.clone());
        for &k in &dropped {
            lossy.drop_update(k);
        }
        clock_a.advance(Duration::from_secs(t));
        clock_b.advance(Duration::from_secs(t));
        match (clean.latest_fix(), lossy.latest_fix()) {
            (Some(c), Some(l)) => {
                assert!(l.sequence <= c.sequence);
                assert!(!dropped.contains(&l.sequence));
            }
            (Some(_), None) => {} // everything up to now dropped
            (None, Some(_)) => panic!("lossy saw more than clean"),
            (None, None) => {}
        }
    }
}

/// The NMEA burst round trip preserves position to sub-meter and
/// time to centiseconds for any reachable fix.
#[test]
fn burst_round_trip_accuracy() {
    let mut rng = XorShift64::seed_from_u64(204);
    for _ in 0..CASES {
        let rate = in_range(&mut rng, 1.0, 5.0);
        let t = in_range(&mut rng, 0.5, 500.0);
        let clock = SimClock::new();
        let rx = receiver(rate, 15.0, 50_000.0, clock.clone());
        clock.advance(Duration::from_secs(t));
        let fix = rx.latest_fix().expect("clock moved");
        let burst = fix_to_burst(&fix, 100.0);
        let sample = burst_to_sample(&burst, alidrone_geo::Timestamp::EPOCH).unwrap();
        assert!(fix.sample.point().distance_to(&sample.point()).meters() < 1.0);
        assert!((fix.sample.time().secs() - sample.time().secs()).abs() < 0.011);
    }
}
