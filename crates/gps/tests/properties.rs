//! Property-based tests for the receiver model: the invariants every
//! consumer (the sampler, the TEE driver) silently depends on.


use alidrone_geo::trajectory::TrajectoryBuilder;
use alidrone_geo::{Distance, Duration, GeoPoint, Speed};
use alidrone_gps::nmea_feed::{burst_to_sample, fix_to_burst};
use alidrone_gps::{GpsDevice, SimClock, SimulatedReceiver};
use proptest::prelude::*;

fn receiver(
    rate_hz: f64,
    speed_mps: f64,
    dist_m: f64,
    clock: SimClock,
) -> SimulatedReceiver {
    let a = GeoPoint::new(40.1, -88.2).unwrap();
    let b = a.destination(90.0, Distance::from_meters(dist_m));
    let traj = TrajectoryBuilder::start_at(a)
        .travel_to(b, Speed::from_mps(speed_mps))
        .build()
        .unwrap();
    SimulatedReceiver::from_trajectory(traj, clock, rate_hz)
}

proptest! {
    /// Fix sequence numbers and timestamps never go backwards as the
    /// clock advances.
    #[test]
    fn fixes_are_monotone(
        rate in 1.0..5.0f64,
        speed in 1.0..40.0f64,
        advances in prop::collection::vec(0.01..3.0f64, 1..40),
    ) {
        let clock = SimClock::new();
        let rx = receiver(rate, speed, 10_000.0, clock.clone());
        let mut last_seq = 0u64;
        let mut last_t = f64::NEG_INFINITY;
        for dt in advances {
            clock.advance(Duration::from_secs(dt));
            if let Some(fix) = rx.latest_fix() {
                prop_assert!(fix.sequence >= last_seq);
                prop_assert!(fix.sample.time().secs() >= last_t);
                last_seq = fix.sequence;
                last_t = fix.sample.time().secs();
            }
        }
    }

    /// A fix's timestamp never exceeds the clock, and lags it by at most
    /// one update period.
    #[test]
    fn fix_time_tracks_clock(rate in 1.0..5.0f64, t in 0.5..100.0f64) {
        let clock = SimClock::new();
        let rx = receiver(rate, 10.0, 10_000.0, clock.clone());
        clock.advance(Duration::from_secs(t));
        let fix = rx.latest_fix().expect("clock moved");
        let ft = fix.sample.time().secs();
        prop_assert!(ft <= t + 1e-9);
        prop_assert!(t - ft <= 1.0 / rate + 1e-9, "lag {} at rate {rate}", t - ft);
    }

    /// Dropping updates only ever makes the reported fix *older*, never
    /// newer, and never fabricates positions.
    #[test]
    fn dropouts_only_delay(
        rate in 1.0..5.0f64,
        t in 2.0..60.0f64,
        dropped in prop::collection::btree_set(0u64..100, 0..20),
    ) {
        let clock_a = SimClock::new();
        let clean = receiver(rate, 10.0, 10_000.0, clock_a.clone());
        let clock_b = SimClock::new();
        let mut lossy = receiver(rate, 10.0, 10_000.0, clock_b.clone());
        for &k in &dropped {
            lossy.drop_update(k);
        }
        clock_a.advance(Duration::from_secs(t));
        clock_b.advance(Duration::from_secs(t));
        match (clean.latest_fix(), lossy.latest_fix()) {
            (Some(c), Some(l)) => {
                prop_assert!(l.sequence <= c.sequence);
                prop_assert!(!dropped.contains(&l.sequence));
            }
            (Some(_), None) => {} // everything up to now dropped
            (None, Some(_)) => prop_assert!(false, "lossy saw more than clean"),
            (None, None) => {}
        }
    }

    /// The NMEA burst round trip preserves position to sub-meter and
    /// time to centiseconds for any reachable fix.
    #[test]
    fn burst_round_trip_accuracy(rate in 1.0..5.0f64, t in 0.5..500.0f64) {
        let clock = SimClock::new();
        let rx = receiver(rate, 15.0, 50_000.0, clock.clone());
        clock.advance(Duration::from_secs(t));
        let fix = rx.latest_fix().expect("clock moved");
        let burst = fix_to_burst(&fix, 100.0);
        let sample = burst_to_sample(&burst, alidrone_geo::Timestamp::EPOCH).unwrap();
        prop_assert!(fix.sample.point().distance_to(&sample.point()).meters() < 1.0);
        prop_assert!((fix.sample.time().secs() - sample.time().secs()).abs() < 0.011);
    }
}
