//! `$GPGSA` — GNSS DOP and Active Satellites.
//!
//! Carries the fix mode (no fix / 2-D / 3-D) and the dilution-of-
//! precision values — the receiver-health signals a production Adapter
//! watches to decide whether samples are worth authenticating at all.

use std::fmt;
use std::str::FromStr;

use crate::sentence::{frame_sentence, split_sentence};
use crate::NmeaError;

/// GSA fix mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixMode {
    /// 1 — fix not available.
    NoFix,
    /// 2 — 2-D fix.
    Fix2d,
    /// 3 — 3-D fix.
    Fix3d,
}

impl FixMode {
    fn from_u8(v: u8) -> Result<Self, NmeaError> {
        Ok(match v {
            1 => FixMode::NoFix,
            2 => FixMode::Fix2d,
            3 => FixMode::Fix3d,
            _ => {
                return Err(NmeaError::MalformedField {
                    field: "fix mode",
                    value: v.to_string(),
                })
            }
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            FixMode::NoFix => 1,
            FixMode::Fix2d => 2,
            FixMode::Fix3d => 3,
        }
    }
}

/// A parsed `$GPGSA` sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Gsa {
    /// `true` for automatic 2-D/3-D selection (`A`), `false` for manual
    /// (`M`).
    pub auto_selection: bool,
    /// Fix mode.
    pub mode: FixMode,
    /// PRNs of satellites used in the solution (up to 12).
    pub satellites: Vec<u8>,
    /// Position dilution of precision.
    pub pdop: f64,
    /// Horizontal dilution of precision.
    pub hdop: f64,
    /// Vertical dilution of precision.
    pub vdop: f64,
}

impl Gsa {
    /// `true` when a usable (2-D or 3-D) fix is present.
    pub fn has_fix(&self) -> bool {
        self.mode != FixMode::NoFix
    }

    /// Encodes back into a framed `$GPGSA…*CS` line.
    pub fn to_sentence(&self) -> String {
        let sel = if self.auto_selection { 'A' } else { 'M' };
        let mut sats: Vec<String> = self
            .satellites
            .iter()
            .take(12)
            .map(|p| format!("{p:02}"))
            .collect();
        sats.resize(12, String::new());
        let body = format!(
            "GPGSA,{sel},{},{},{:.1},{:.1},{:.1}",
            self.mode.as_u8(),
            sats.join(","),
            self.pdop,
            self.hdop,
            self.vdop
        );
        frame_sentence(&body)
    }
}

impl FromStr for Gsa {
    type Err = NmeaError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let fields = split_sentence(line)?;
        let kind = fields.first().copied().unwrap_or("");
        if kind.len() != 5 || !kind.ends_with("GSA") {
            return Err(NmeaError::WrongSentenceType { found: kind.into() });
        }
        if fields.len() < 18 {
            return Err(NmeaError::MissingField("gsa fields"));
        }
        let auto_selection = match fields[1] {
            "A" => true,
            "M" => false,
            other => {
                return Err(NmeaError::MalformedField {
                    field: "selection mode",
                    value: other.into(),
                })
            }
        };
        let mode_raw: u8 = fields[2].parse().map_err(|_| NmeaError::MalformedField {
            field: "fix mode",
            value: fields[2].into(),
        })?;
        let mode = FixMode::from_u8(mode_raw)?;
        let mut satellites = Vec::new();
        for f in &fields[3..15] {
            if f.is_empty() {
                continue;
            }
            satellites.push(f.parse().map_err(|_| NmeaError::MalformedField {
                field: "satellite prn",
                value: (*f).to_string(),
            })?);
        }
        let dop = |i: usize, name: &'static str| -> Result<f64, NmeaError> {
            fields[i].parse().map_err(|_| NmeaError::MalformedField {
                field: name,
                value: fields[i].into(),
            })
        };
        Ok(Gsa {
            auto_selection,
            mode,
            satellites,
            pdop: dop(15, "pdop")?,
            hdop: dop(16, "hdop")?,
            vdop: dop(17, "vdop")?,
        })
    }
}

impl fmt::Display for Gsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GSA[{:?}, {} sats, hdop {:.1}]",
            self.mode,
            self.satellites.len(),
            self.hdop
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reference_sentence() {
        let line = crate::frame_sentence("GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1");
        let gsa: Gsa = line.parse().unwrap();
        assert!(gsa.auto_selection);
        assert_eq!(gsa.mode, FixMode::Fix3d);
        assert!(gsa.has_fix());
        assert_eq!(gsa.satellites, vec![4, 5, 9, 12, 24]);
        assert!((gsa.pdop - 2.5).abs() < 1e-9);
        assert!((gsa.hdop - 1.3).abs() < 1e-9);
        assert!((gsa.vdop - 2.1).abs() < 1e-9);
    }

    #[test]
    fn encode_parse_round_trip() {
        let orig = Gsa {
            auto_selection: false,
            mode: FixMode::Fix2d,
            satellites: vec![1, 14, 22],
            pdop: 3.2,
            hdop: 1.8,
            vdop: 2.6,
        };
        let rt: Gsa = orig.to_sentence().parse().unwrap();
        assert_eq!(rt, orig);
    }

    #[test]
    fn no_fix_mode() {
        let line = crate::frame_sentence("GPGSA,A,1,,,,,,,,,,,,,99.9,99.9,99.9");
        let gsa: Gsa = line.parse().unwrap();
        assert_eq!(gsa.mode, FixMode::NoFix);
        assert!(!gsa.has_fix());
        assert!(gsa.satellites.is_empty());
    }

    #[test]
    fn rejects_malformed() {
        let bad_mode = crate::frame_sentence("GPGSA,A,7,,,,,,,,,,,,,1.0,1.0,1.0");
        assert!(bad_mode.parse::<Gsa>().is_err());
        let bad_sel = crate::frame_sentence("GPGSA,X,3,,,,,,,,,,,,,1.0,1.0,1.0");
        assert!(bad_sel.parse::<Gsa>().is_err());
        let short = crate::frame_sentence("GPGSA,A,3,1.0");
        assert!(short.parse::<Gsa>().is_err());
    }

    #[test]
    fn rejects_wrong_type() {
        let gga = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";
        assert!(matches!(
            gga.parse::<Gsa>(),
            Err(NmeaError::WrongSentenceType { .. })
        ));
    }
}
