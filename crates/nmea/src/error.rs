//! Error type for NMEA parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing NMEA 0183 sentences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NmeaError {
    /// The sentence did not start with `$`.
    MissingStart,
    /// The sentence had no `*` checksum delimiter.
    MissingChecksum,
    /// The checksum did not match the sentence body.
    ChecksumMismatch {
        /// Checksum computed over the body.
        computed: u8,
        /// Checksum stated in the sentence.
        stated: u8,
    },
    /// The checksum field was not two hex digits.
    MalformedChecksum,
    /// The sentence type was not the one the parser expected.
    WrongSentenceType {
        /// The type found (e.g. `"GPGGA"`).
        found: String,
    },
    /// A required field was missing.
    MissingField(&'static str),
    /// A field failed to parse.
    MalformedField {
        /// Which field.
        field: &'static str,
        /// The offending raw text.
        value: String,
    },
}

impl fmt::Display for NmeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NmeaError::MissingStart => write!(f, "sentence does not start with '$'"),
            NmeaError::MissingChecksum => write!(f, "sentence has no '*' checksum delimiter"),
            NmeaError::ChecksumMismatch { computed, stated } => write!(
                f,
                "checksum mismatch: computed {computed:02X}, sentence says {stated:02X}"
            ),
            NmeaError::MalformedChecksum => write!(f, "checksum is not two hex digits"),
            NmeaError::WrongSentenceType { found } => {
                write!(f, "unexpected sentence type {found}")
            }
            NmeaError::MissingField(name) => write!(f, "missing field {name}"),
            NmeaError::MalformedField { field, value } => {
                write!(f, "malformed field {field}: {value:?}")
            }
        }
    }
}

impl Error for NmeaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            NmeaError::MissingStart,
            NmeaError::MissingChecksum,
            NmeaError::ChecksumMismatch {
                computed: 0x6A,
                stated: 0x6B,
            },
            NmeaError::MalformedChecksum,
            NmeaError::WrongSentenceType {
                found: "GPVTG".into(),
            },
            NmeaError::MissingField("lat"),
            NmeaError::MalformedField {
                field: "lon",
                value: "xx".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
