//! The NMEA `ddmm.mmmm` coordinate format.
//!
//! NMEA encodes latitude as `ddmm.mmmm` (degrees then decimal minutes)
//! with a `N`/`S` hemisphere field, and longitude as `dddmm.mmmm` with
//! `E`/`W`.

use crate::NmeaError;

/// Converts an NMEA latitude field + hemisphere to signed decimal degrees.
///
/// # Errors
///
/// Returns [`NmeaError::MalformedField`] for unparsable text or an
/// out-of-range result.
pub fn parse_lat(field: &str, hemi: &str) -> Result<f64, NmeaError> {
    let v = parse_ddmm(field, 2).ok_or_else(|| NmeaError::MalformedField {
        field: "latitude",
        value: format!("{field},{hemi}"),
    })?;
    let signed = match hemi {
        "N" => v,
        "S" => -v,
        _ => {
            return Err(NmeaError::MalformedField {
                field: "latitude hemisphere",
                value: hemi.to_string(),
            })
        }
    };
    if !(-90.0..=90.0).contains(&signed) {
        return Err(NmeaError::MalformedField {
            field: "latitude",
            value: field.to_string(),
        });
    }
    Ok(signed)
}

/// Converts an NMEA longitude field + hemisphere to signed decimal degrees.
///
/// # Errors
///
/// Returns [`NmeaError::MalformedField`] for unparsable text or an
/// out-of-range result.
pub fn parse_lon(field: &str, hemi: &str) -> Result<f64, NmeaError> {
    let v = parse_ddmm(field, 3).ok_or_else(|| NmeaError::MalformedField {
        field: "longitude",
        value: format!("{field},{hemi}"),
    })?;
    let signed = match hemi {
        "E" => v,
        "W" => -v,
        _ => {
            return Err(NmeaError::MalformedField {
                field: "longitude hemisphere",
                value: hemi.to_string(),
            })
        }
    };
    if !(-180.0..=180.0).contains(&signed) {
        return Err(NmeaError::MalformedField {
            field: "longitude",
            value: field.to_string(),
        });
    }
    Ok(signed)
}

fn parse_ddmm(field: &str, deg_digits: usize) -> Option<f64> {
    let dot = field.find('.')?;
    if dot < deg_digits + 1 {
        return None;
    }
    let deg_end = dot - 2; // minutes are always two integer digits
    if deg_end == 0 || deg_end > deg_digits {
        return None;
    }
    let degrees: f64 = field[..deg_end].parse().ok()?;
    let minutes: f64 = field[deg_end..].parse().ok()?;
    if minutes >= 60.0 {
        return None;
    }
    Some(degrees + minutes / 60.0)
}

/// Formats a signed latitude as `(ddmm.mmmm, hemisphere)` NMEA fields.
pub fn format_lat(lat_deg: f64) -> (String, char) {
    let hemi = if lat_deg < 0.0 { 'S' } else { 'N' };
    (format_ddmm(lat_deg.abs(), 2), hemi)
}

/// Formats a signed longitude as `(dddmm.mmmm, hemisphere)` NMEA fields.
pub fn format_lon(lon_deg: f64) -> (String, char) {
    let hemi = if lon_deg < 0.0 { 'W' } else { 'E' };
    (format_ddmm(lon_deg.abs(), 3), hemi)
}

fn format_ddmm(abs_deg: f64, deg_digits: usize) -> String {
    let degrees = abs_deg.floor();
    let mut minutes = (abs_deg - degrees) * 60.0;
    let mut degrees = degrees as u32;
    // Guard against 59.99999 rounding up to 60.0000.
    if minutes >= 59.99995 {
        minutes = 0.0;
        degrees += 1;
    }
    format!("{degrees:0width$}{minutes:07.4}", width = deg_digits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_latitude() {
        // 4807.038 N = 48° + 7.038' = 48.1173°.
        let v = parse_lat("4807.038", "N").unwrap();
        assert!((v - 48.1173).abs() < 1e-4);
        assert!((parse_lat("4807.038", "S").unwrap() + 48.1173).abs() < 1e-4);
    }

    #[test]
    fn parse_known_longitude() {
        let v = parse_lon("01131.000", "E").unwrap();
        assert!((v - 11.516_666).abs() < 1e-4);
        assert!((parse_lon("01131.000", "W").unwrap() + 11.516_666).abs() < 1e-4);
    }

    #[test]
    fn rejects_bad_hemisphere() {
        assert!(parse_lat("4807.038", "E").is_err());
        assert!(parse_lon("01131.000", "N").is_err());
        assert!(parse_lat("4807.038", "").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_lat("garbage", "N").is_err());
        assert!(parse_lat("48", "N").is_err()); // no dot
        assert!(parse_lat("4899.000", "N").is_err()); // minutes >= 60
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(parse_lat("9101.000", "N").is_err()); // 91.016°
        assert!(parse_lon("18101.000", "E").is_err());
    }

    #[test]
    fn format_known_values() {
        let (f, h) = format_lat(48.1173);
        assert_eq!(h, 'N');
        assert_eq!(f, "4807.0380");
        let (f, h) = format_lon(-88.2);
        assert_eq!(h, 'W');
        assert_eq!(f, "08812.0000");
    }

    #[test]
    fn format_parse_round_trip() {
        for lat in [-89.9, -45.123456, 0.0, 0.5, 40.0987, 89.9] {
            let (f, h) = format_lat(lat);
            let rt = parse_lat(&f, &h.to_string()).unwrap();
            assert!((rt - lat).abs() < 1e-5, "lat {lat} -> {f} -> {rt}");
        }
        for lon in [-179.9, -88.254, 0.0, 11.5167, 179.9] {
            let (f, h) = format_lon(lon);
            let rt = parse_lon(&f, &h.to_string()).unwrap();
            assert!((rt - lon).abs() < 1e-5, "lon {lon} -> {f} -> {rt}");
        }
    }

    #[test]
    fn rounding_edge_near_60_minutes() {
        // 39.9999999° would naively format as 3960.0000.
        let (f, _) = format_lat(39.999_999_9);
        let rt = parse_lat(&f, "N").unwrap();
        assert!((rt - 40.0).abs() < 1e-4, "{f} -> {rt}");
    }

    #[test]
    fn equator_and_meridian() {
        let (f, h) = format_lat(0.0);
        assert_eq!((f.as_str(), h), ("0000.0000", 'N'));
        let (f, h) = format_lon(0.0);
        assert_eq!((f.as_str(), h), ("00000.0000", 'E'));
    }
}
