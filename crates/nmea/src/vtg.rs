//! `$GPVTG` — Track Made Good and Ground Speed.
//!
//! The Adafruit receiver interleaves VTG with RMC/GGA; the Adapter can
//! use its ground speed without waiting for an RMC.

use std::fmt;
use std::str::FromStr;

use crate::sentence::{frame_sentence, split_sentence};
use crate::NmeaError;

/// A parsed `$GPVTG` sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Vtg {
    /// Course over ground, degrees true (if reported).
    pub course_true_deg: Option<f64>,
    /// Course over ground, degrees magnetic (if reported).
    pub course_mag_deg: Option<f64>,
    /// Speed over ground in knots.
    pub speed_knots: f64,
    /// Speed over ground in km/h.
    pub speed_kmh: f64,
}

impl Vtg {
    /// Speed over ground in meters per second (from the knots field).
    pub fn speed_mps(&self) -> f64 {
        self.speed_knots * 0.514_444
    }

    /// Encodes back into a framed `$GPVTG…*CS` line.
    pub fn to_sentence(&self) -> String {
        let t = self
            .course_true_deg
            .map(|c| format!("{c:05.1}"))
            .unwrap_or_default();
        let m = self
            .course_mag_deg
            .map(|c| format!("{c:05.1}"))
            .unwrap_or_default();
        let body = format!(
            "GPVTG,{t},T,{m},M,{:05.1},N,{:05.1},K,A",
            self.speed_knots, self.speed_kmh
        );
        frame_sentence(&body)
    }
}

impl FromStr for Vtg {
    type Err = NmeaError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let fields = split_sentence(line)?;
        let kind = fields.first().copied().unwrap_or("");
        if kind.len() != 5 || !kind.ends_with("VTG") {
            return Err(NmeaError::WrongSentenceType { found: kind.into() });
        }
        let get = |i: usize, name: &'static str| -> Result<&str, NmeaError> {
            fields.get(i).copied().ok_or(NmeaError::MissingField(name))
        };
        let opt_f64 = |s: &str, name: &'static str| -> Result<Option<f64>, NmeaError> {
            if s.is_empty() {
                return Ok(None);
            }
            s.parse().map(Some).map_err(|_| NmeaError::MalformedField {
                field: name,
                value: s.into(),
            })
        };
        let course_true_deg = opt_f64(get(1, "course true")?, "course true")?;
        let course_mag_deg = opt_f64(get(3, "course magnetic")?, "course magnetic")?;
        let speed_knots =
            get(5, "speed knots")?
                .parse()
                .map_err(|_| NmeaError::MalformedField {
                    field: "speed knots",
                    value: fields[5].into(),
                })?;
        let speed_kmh = get(7, "speed kmh")?
            .parse()
            .map_err(|_| NmeaError::MalformedField {
                field: "speed kmh",
                value: fields[7].into(),
            })?;
        Ok(Vtg {
            course_true_deg,
            course_mag_deg,
            speed_knots,
            speed_kmh,
        })
    }
}

impl fmt::Display for Vtg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VTG[{:.1} kn]", self.speed_knots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reference_sentence() {
        let line = crate::frame_sentence("GPVTG,054.7,T,034.4,M,005.5,N,010.2,K,A");
        let vtg: Vtg = line.parse().unwrap();
        assert_eq!(vtg.course_true_deg, Some(54.7));
        assert_eq!(vtg.course_mag_deg, Some(34.4));
        assert!((vtg.speed_knots - 5.5).abs() < 1e-9);
        assert!((vtg.speed_kmh - 10.2).abs() < 1e-9);
        assert!((vtg.speed_mps() - 5.5 * 0.514_444).abs() < 1e-9);
    }

    #[test]
    fn empty_courses_are_none() {
        let line = crate::frame_sentence("GPVTG,,T,,M,005.5,N,010.2,K,A");
        let vtg: Vtg = line.parse().unwrap();
        assert_eq!(vtg.course_true_deg, None);
        assert_eq!(vtg.course_mag_deg, None);
    }

    #[test]
    fn encode_parse_round_trip() {
        let orig = Vtg {
            course_true_deg: Some(271.3),
            course_mag_deg: None,
            speed_knots: 13.7,
            speed_kmh: 25.4,
        };
        let rt: Vtg = orig.to_sentence().parse().unwrap();
        assert_eq!(rt.course_true_deg, Some(271.3));
        assert_eq!(rt.course_mag_deg, None);
        assert!((rt.speed_knots - 13.7).abs() < 0.05);
    }

    #[test]
    fn rejects_wrong_type_and_garbage() {
        let rmc = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";
        assert!(matches!(
            rmc.parse::<Vtg>(),
            Err(NmeaError::WrongSentenceType { .. })
        ));
        let bad = crate::frame_sentence("GPVTG,054.7,T,034.4,M,xxx,N,010.2,K,A");
        assert!(bad.parse::<Vtg>().is_err());
    }
}
