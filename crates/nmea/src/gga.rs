//! `$GPGGA` — Global Positioning System Fix Data.
//!
//! RMC carries no altitude, so the 3-D extension (paper §VII-B1) needs
//! GGA; the simulated receiver emits both, like the real Adafruit module.

use std::fmt;
use std::str::FromStr;

use crate::coord::{format_lat, format_lon, parse_lat, parse_lon};
use crate::rmc::parse_utc;
use crate::sentence::{frame_sentence, split_sentence};
use crate::NmeaError;

/// GGA fix quality indicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixQuality {
    /// 0 — no fix available.
    Invalid,
    /// 1 — standard GPS fix.
    Gps,
    /// 2 — differential GPS fix.
    Dgps,
    /// Any other reported value (RTK, estimated, …).
    Other(u8),
}

impl FixQuality {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => FixQuality::Invalid,
            1 => FixQuality::Gps,
            2 => FixQuality::Dgps,
            other => FixQuality::Other(other),
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            FixQuality::Invalid => 0,
            FixQuality::Gps => 1,
            FixQuality::Dgps => 2,
            FixQuality::Other(v) => v,
        }
    }

    /// `true` when a usable fix is present.
    pub fn has_fix(self) -> bool {
        !matches!(self, FixQuality::Invalid)
    }
}

/// A parsed `$GPGGA` sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Gga {
    /// UTC time of day in seconds.
    pub utc_seconds: f64,
    /// Latitude in signed decimal degrees.
    pub lat_deg: f64,
    /// Longitude in signed decimal degrees.
    pub lon_deg: f64,
    /// Fix quality indicator.
    pub quality: FixQuality,
    /// Number of satellites in use.
    pub num_satellites: u8,
    /// Horizontal dilution of precision.
    pub hdop: f64,
    /// Antenna altitude above mean sea level, meters.
    pub altitude_m: f64,
}

impl Gga {
    /// Encodes back into a framed `$GPGGA…*CS` line.
    pub fn to_sentence(&self) -> String {
        let h = (self.utc_seconds / 3600.0).floor() as u32 % 24;
        let m = (self.utc_seconds / 60.0).floor() as u32 % 60;
        let s = self.utc_seconds % 60.0;
        let (lat, lat_h) = format_lat(self.lat_deg);
        let (lon, lon_h) = format_lon(self.lon_deg);
        let body = format!(
            "GPGGA,{h:02}{m:02}{s:06.3},{lat},{lat_h},{lon},{lon_h},{},{:02},{:.1},{:.1},M,0.0,M,,",
            self.quality.as_u8(),
            self.num_satellites,
            self.hdop,
            self.altitude_m,
        );
        frame_sentence(&body)
    }
}

impl FromStr for Gga {
    type Err = NmeaError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let fields = split_sentence(line)?;
        let kind = fields.first().copied().unwrap_or("");
        if kind.len() != 5 || !kind.ends_with("GGA") {
            return Err(NmeaError::WrongSentenceType { found: kind.into() });
        }
        let get = |i: usize, name: &'static str| -> Result<&str, NmeaError> {
            fields.get(i).copied().ok_or(NmeaError::MissingField(name))
        };
        let utc_seconds = parse_utc(get(1, "utc time")?)?;
        let lat_deg = parse_lat(get(2, "latitude")?, get(3, "latitude hemisphere")?)?;
        let lon_deg = parse_lon(get(4, "longitude")?, get(5, "longitude hemisphere")?)?;
        let quality_raw: u8 =
            get(6, "fix quality")?
                .parse()
                .map_err(|_| NmeaError::MalformedField {
                    field: "fix quality",
                    value: fields[6].into(),
                })?;
        let num_satellites: u8 =
            get(7, "satellites")?
                .parse()
                .map_err(|_| NmeaError::MalformedField {
                    field: "satellites",
                    value: fields[7].into(),
                })?;
        let hdop: f64 = get(8, "hdop")?
            .parse()
            .map_err(|_| NmeaError::MalformedField {
                field: "hdop",
                value: fields[8].into(),
            })?;
        let altitude_m: f64 =
            get(9, "altitude")?
                .parse()
                .map_err(|_| NmeaError::MalformedField {
                    field: "altitude",
                    value: fields[9].into(),
                })?;
        Ok(Gga {
            utc_seconds,
            lat_deg,
            lon_deg,
            quality: FixQuality::from_u8(quality_raw),
            num_satellites,
            hdop,
            altitude_m,
        })
    }
}

impl fmt::Display for Gga {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GGA[({:.6}, {:.6}) alt {:.1} m, {} sats]",
            self.lat_deg, self.lon_deg, self.altitude_m, self.num_satellites
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";

    #[test]
    fn parses_reference_sentence() {
        let gga: Gga = SAMPLE.parse().unwrap();
        assert_eq!(gga.quality, FixQuality::Gps);
        assert!(gga.quality.has_fix());
        assert_eq!(gga.num_satellites, 8);
        assert!((gga.hdop - 0.9).abs() < 1e-9);
        assert!((gga.altitude_m - 545.4).abs() < 1e-9);
        assert!((gga.lat_deg - 48.1173).abs() < 1e-4);
    }

    #[test]
    fn encode_parse_round_trip() {
        let orig = Gga {
            utc_seconds: 3_723.5,
            lat_deg: 40.1,
            lon_deg: -88.2,
            quality: FixQuality::Dgps,
            num_satellites: 11,
            hdop: 1.2,
            altitude_m: 228.3,
        };
        let rt: Gga = orig.to_sentence().parse().unwrap();
        assert!((rt.lat_deg - orig.lat_deg).abs() < 1e-5);
        assert!((rt.lon_deg - orig.lon_deg).abs() < 1e-5);
        assert_eq!(rt.quality, orig.quality);
        assert_eq!(rt.num_satellites, orig.num_satellites);
        assert!((rt.altitude_m - orig.altitude_m).abs() < 0.05);
    }

    #[test]
    fn no_fix_quality() {
        let body = "GPGGA,123519,4807.038,N,01131.000,E,0,00,99.9,0.0,M,0.0,M,,";
        let line = crate::frame_sentence(body);
        let gga: Gga = line.parse().unwrap();
        assert_eq!(gga.quality, FixQuality::Invalid);
        assert!(!gga.quality.has_fix());
    }

    #[test]
    fn other_quality_values_preserved() {
        let body = "GPGGA,123519,4807.038,N,01131.000,E,4,08,0.9,545.4,M,46.9,M,,";
        let line = crate::frame_sentence(body);
        let gga: Gga = line.parse().unwrap();
        assert_eq!(gga.quality, FixQuality::Other(4));
        assert!(gga.quality.has_fix());
        let rt: Gga = gga.to_sentence().parse().unwrap();
        assert_eq!(rt.quality, FixQuality::Other(4));
    }

    #[test]
    fn rejects_wrong_type() {
        let rmc = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";
        assert!(matches!(
            rmc.parse::<Gga>(),
            Err(NmeaError::WrongSentenceType { .. })
        ));
    }

    #[test]
    fn rejects_malformed_fields() {
        let body = "GPGGA,123519,4807.038,N,01131.000,E,X,08,0.9,545.4,M,46.9,M,,";
        let line = crate::frame_sentence(body);
        assert!(line.parse::<Gga>().is_err());
    }
}
