//! Sentence framing and checksums.

use crate::NmeaError;

/// The NMEA checksum: XOR of every byte strictly between `$` and `*`.
pub fn checksum(body: &str) -> u8 {
    body.bytes().fold(0, |acc, b| acc ^ b)
}

/// Wraps a sentence body (e.g. `"GPRMC,123519,A,…"`) into a full framed
/// line `$body*CS` (without a trailing CRLF — callers append line endings
/// as their transport requires).
pub fn frame_sentence(body: &str) -> String {
    format!("${body}*{:02X}", checksum(body))
}

/// Validates framing + checksum and splits the body into fields.
///
/// Returns the fields (the first is the sentence type, e.g. `"GPRMC"`).
/// Trailing `\r\n` is tolerated.
///
/// # Errors
///
/// Returns a [`NmeaError`] describing the first framing problem found.
pub fn split_sentence(line: &str) -> Result<Vec<&str>, NmeaError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let rest = line.strip_prefix('$').ok_or(NmeaError::MissingStart)?;
    let star = rest.rfind('*').ok_or(NmeaError::MissingChecksum)?;
    let (body, cs_text) = rest.split_at(star);
    let cs_text = &cs_text[1..];
    if cs_text.len() != 2 {
        return Err(NmeaError::MalformedChecksum);
    }
    let stated = u8::from_str_radix(cs_text, 16).map_err(|_| NmeaError::MalformedChecksum)?;
    let computed = checksum(body);
    if stated != computed {
        return Err(NmeaError::ChecksumMismatch { computed, stated });
    }
    Ok(body.split(',').collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const RMC: &str = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";

    #[test]
    fn checksum_known_value() {
        assert_eq!(
            checksum("GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W"),
            0x6A
        );
    }

    #[test]
    fn frame_round_trip() {
        let body = "GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,";
        let framed = frame_sentence(body);
        let fields = split_sentence(&framed).unwrap();
        assert_eq!(fields[0], "GPGGA");
        assert_eq!(fields.len(), body.split(',').count());
    }

    #[test]
    fn split_valid_sentence() {
        let fields = split_sentence(RMC).unwrap();
        assert_eq!(fields[0], "GPRMC");
        assert_eq!(fields[1], "123519");
        assert_eq!(fields[2], "A");
    }

    #[test]
    fn tolerates_crlf() {
        let with_crlf = format!("{RMC}\r\n");
        assert!(split_sentence(&with_crlf).is_ok());
    }

    #[test]
    fn rejects_missing_dollar() {
        assert_eq!(split_sentence(&RMC[1..]), Err(NmeaError::MissingStart));
    }

    #[test]
    fn rejects_missing_star() {
        let no_star = RMC.replace('*', "");
        assert_eq!(split_sentence(&no_star), Err(NmeaError::MissingChecksum));
    }

    #[test]
    fn rejects_bad_checksum() {
        let bad = RMC.replace("*6A", "*6B");
        assert_eq!(
            split_sentence(&bad),
            Err(NmeaError::ChecksumMismatch {
                computed: 0x6A,
                stated: 0x6B
            })
        );
    }

    #[test]
    fn rejects_malformed_checksum() {
        let bad = RMC.replace("*6A", "*6");
        assert_eq!(split_sentence(&bad), Err(NmeaError::MalformedChecksum));
        let bad2 = RMC.replace("*6A", "*ZZ");
        assert_eq!(split_sentence(&bad2), Err(NmeaError::MalformedChecksum));
    }

    #[test]
    fn corrupted_body_detected() {
        // Flip one character in the body: checksum must catch it.
        let corrupted = RMC.replace("4807.038", "4807.039");
        assert!(matches!(
            split_sentence(&corrupted),
            Err(NmeaError::ChecksumMismatch { .. })
        ));
    }
}
