//! NMEA 0183 sentence parsing and encoding.
//!
//! The AliDrone prototype reads an Adafruit Ultimate GPS breakout over
//! UART; the receiver emits NMEA 0183 sentences and the secure-world GPS
//! driver parses the `$GPRMC` messages into `(lat, lon, timestamp)`
//! tuples using libnmea (paper §V-B). This crate is the Rust equivalent
//! of that parsing layer, plus the *encoding* direction needed by the
//! simulated receiver:
//!
//! * [`split_sentence`] / [`frame_sentence`] — framing and checksums.
//! * [`Rmc`] — recommended minimum data (position, speed, course, date).
//! * [`Gga`] — fix data (position, fix quality, satellites, altitude).
//! * [`coord`] — the `ddmm.mmmm` coordinate format.
//!
//! # Example
//!
//! ```
//! use alidrone_nmea::Rmc;
//!
//! let line = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";
//! let rmc: Rmc = line.parse()?;
//! assert!(rmc.is_active());
//! assert!((rmc.lat_deg - 48.1173).abs() < 1e-4);
//! assert!((rmc.lon_deg - 11.5166).abs() < 1e-4);
//! # Ok::<(), alidrone_nmea::NmeaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
mod error;
mod gga;
mod gsa;
mod rmc;
mod sentence;
mod vtg;

pub use error::NmeaError;
pub use gga::{FixQuality, Gga};
pub use gsa::{FixMode, Gsa};
pub use rmc::Rmc;
pub use sentence::{checksum, frame_sentence, split_sentence};
pub use vtg::Vtg;
