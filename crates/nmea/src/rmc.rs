//! `$GPRMC` — Recommended Minimum data, the sentence AliDrone's GPS
//! driver extracts position and timestamps from (paper §V-B).

use std::fmt;
use std::str::FromStr;

use crate::coord::{format_lat, format_lon, parse_lat, parse_lon};
use crate::sentence::{frame_sentence, split_sentence};
use crate::NmeaError;

/// A parsed `$GPRMC` sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Rmc {
    /// UTC time of day in seconds (0 .. 86400, fractional).
    pub utc_seconds: f64,
    /// Receiver status: `true` = `A` (active/valid fix), `false` = `V`.
    pub active: bool,
    /// Latitude in signed decimal degrees.
    pub lat_deg: f64,
    /// Longitude in signed decimal degrees.
    pub lon_deg: f64,
    /// Speed over ground in knots.
    pub speed_knots: f64,
    /// Course over ground in degrees true, if reported.
    pub course_deg: Option<f64>,
    /// Date as (day, month, two-digit year).
    pub date: (u8, u8, u8),
}

impl Rmc {
    /// `true` when the fix is valid (`A` status).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Speed over ground in meters per second.
    pub fn speed_mps(&self) -> f64 {
        self.speed_knots * 0.514_444
    }

    /// Encodes back into a framed `$GPRMC…*CS` line.
    pub fn to_sentence(&self) -> String {
        let h = (self.utc_seconds / 3600.0).floor() as u32 % 24;
        let m = (self.utc_seconds / 60.0).floor() as u32 % 60;
        let s = self.utc_seconds % 60.0;
        let (lat, lat_h) = format_lat(self.lat_deg);
        let (lon, lon_h) = format_lon(self.lon_deg);
        let status = if self.active { 'A' } else { 'V' };
        let course = self
            .course_deg
            .map(|c| format!("{c:05.1}"))
            .unwrap_or_default();
        let (dd, mm, yy) = self.date;
        let body = format!(
            "GPRMC,{h:02}{m:02}{s:06.3},{status},{lat},{lat_h},{lon},{lon_h},{:05.1},{course},{dd:02}{mm:02}{yy:02},,,A",
            self.speed_knots,
        );
        frame_sentence(&body)
    }
}

impl FromStr for Rmc {
    type Err = NmeaError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let fields = split_sentence(line)?;
        let kind = fields.first().copied().unwrap_or("");
        // Accept any talker id (GP, GN, GL, …) with RMC type.
        if kind.len() != 5 || !kind.ends_with("RMC") {
            return Err(NmeaError::WrongSentenceType { found: kind.into() });
        }
        let get = |i: usize, name: &'static str| -> Result<&str, NmeaError> {
            fields.get(i).copied().ok_or(NmeaError::MissingField(name))
        };

        let utc_seconds = parse_utc(get(1, "utc time")?)?;
        let active = match get(2, "status")? {
            "A" => true,
            "V" => false,
            other => {
                return Err(NmeaError::MalformedField {
                    field: "status",
                    value: other.into(),
                })
            }
        };
        let lat_deg = parse_lat(get(3, "latitude")?, get(4, "latitude hemisphere")?)?;
        let lon_deg = parse_lon(get(5, "longitude")?, get(6, "longitude hemisphere")?)?;
        let speed_knots = parse_f64(get(7, "speed")?, "speed")?;
        let course_field = get(8, "course")?;
        let course_deg = if course_field.is_empty() {
            None
        } else {
            Some(parse_f64(course_field, "course")?)
        };
        let date = parse_date(get(9, "date")?)?;
        Ok(Rmc {
            utc_seconds,
            active,
            lat_deg,
            lon_deg,
            speed_knots,
            course_deg,
            date,
        })
    }
}

impl fmt::Display for Rmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RMC[{} ({:.6}, {:.6}) {:.1} kn @ {:.1}s]",
            if self.active { "A" } else { "V" },
            self.lat_deg,
            self.lon_deg,
            self.speed_knots,
            self.utc_seconds
        )
    }
}

pub(crate) fn parse_utc(field: &str) -> Result<f64, NmeaError> {
    if field.len() < 6 {
        return Err(NmeaError::MalformedField {
            field: "utc time",
            value: field.into(),
        });
    }
    let bad = || NmeaError::MalformedField {
        field: "utc time",
        value: field.into(),
    };
    let h: f64 = field[0..2].parse().map_err(|_| bad())?;
    let m: f64 = field[2..4].parse().map_err(|_| bad())?;
    let s: f64 = field[4..].parse().map_err(|_| bad())?;
    if h >= 24.0 || m >= 60.0 || s >= 61.0 {
        return Err(bad());
    }
    Ok(h * 3600.0 + m * 60.0 + s)
}

fn parse_f64(field: &str, name: &'static str) -> Result<f64, NmeaError> {
    field.parse().map_err(|_| NmeaError::MalformedField {
        field: name,
        value: field.into(),
    })
}

fn parse_date(field: &str) -> Result<(u8, u8, u8), NmeaError> {
    let bad = || NmeaError::MalformedField {
        field: "date",
        value: field.into(),
    };
    if field.len() != 6 {
        return Err(bad());
    }
    let dd: u8 = field[0..2].parse().map_err(|_| bad())?;
    let mm: u8 = field[2..4].parse().map_err(|_| bad())?;
    let yy: u8 = field[4..6].parse().map_err(|_| bad())?;
    if dd == 0 || dd > 31 || mm == 0 || mm > 12 {
        return Err(bad());
    }
    Ok((dd, mm, yy))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";

    #[test]
    fn parses_reference_sentence() {
        let rmc: Rmc = SAMPLE.parse().unwrap();
        assert!(rmc.is_active());
        assert!((rmc.utc_seconds - (12.0 * 3600.0 + 35.0 * 60.0 + 19.0)).abs() < 1e-9);
        assert!((rmc.lat_deg - 48.1173).abs() < 1e-4);
        assert!((rmc.lon_deg - 11.516_666).abs() < 1e-4);
        assert!((rmc.speed_knots - 22.4).abs() < 1e-9);
        assert_eq!(rmc.course_deg, Some(84.4));
        assert_eq!(rmc.date, (23, 3, 94));
    }

    #[test]
    fn speed_conversion() {
        let rmc: Rmc = SAMPLE.parse().unwrap();
        assert!((rmc.speed_mps() - 22.4 * 0.514_444).abs() < 1e-9);
    }

    #[test]
    fn void_status_parses_inactive() {
        let body = "GPRMC,123519,V,4807.038,N,01131.000,E,000.0,084.4,230394,,";
        let line = crate::frame_sentence(body);
        let rmc: Rmc = line.parse().unwrap();
        assert!(!rmc.is_active());
    }

    #[test]
    fn encode_parse_round_trip() {
        let orig = Rmc {
            utc_seconds: 45_296.25,
            active: true,
            lat_deg: 40.098_76,
            lon_deg: -88.254_32,
            speed_knots: 13.7,
            course_deg: Some(271.3),
            date: (6, 7, 26),
        };
        let line = orig.to_sentence();
        let rt: Rmc = line.parse().unwrap();
        assert!((rt.utc_seconds - orig.utc_seconds).abs() < 0.001);
        assert!((rt.lat_deg - orig.lat_deg).abs() < 1e-5);
        assert!((rt.lon_deg - orig.lon_deg).abs() < 1e-5);
        assert!((rt.speed_knots - orig.speed_knots).abs() < 0.05);
        assert_eq!(rt.date, orig.date);
        assert!(rt.active);
    }

    #[test]
    fn accepts_other_talkers() {
        let body = "GNRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,,";
        let line = crate::frame_sentence(body);
        assert!(line.parse::<Rmc>().is_ok());
    }

    #[test]
    fn rejects_wrong_type() {
        let body = "GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,";
        let line = crate::frame_sentence(body);
        assert!(matches!(
            line.parse::<Rmc>(),
            Err(NmeaError::WrongSentenceType { .. })
        ));
    }

    #[test]
    fn rejects_bad_status() {
        let body = "GPRMC,123519,X,4807.038,N,01131.000,E,022.4,084.4,230394,,";
        let line = crate::frame_sentence(body);
        assert!(matches!(
            line.parse::<Rmc>(),
            Err(NmeaError::MalformedField {
                field: "status",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_time_and_date() {
        for (time, date) in [
            ("993519", "230394"),
            ("123519", "320394"),
            ("123519", "231394"),
        ] {
            let body = format!("GPRMC,{time},A,4807.038,N,01131.000,E,022.4,084.4,{date},,");
            let line = crate::frame_sentence(&body);
            assert!(line.parse::<Rmc>().is_err(), "time={time} date={date}");
        }
    }

    #[test]
    fn missing_course_is_none() {
        let body = "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,,230394,,";
        let line = crate::frame_sentence(body);
        let rmc: Rmc = line.parse().unwrap();
        assert_eq!(rmc.course_deg, None);
    }

    #[test]
    fn fractional_seconds_supported() {
        let body = "GPRMC,123519.200,A,4807.038,N,01131.000,E,022.4,084.4,230394,,";
        let line = crate::frame_sentence(body);
        let rmc: Rmc = line.parse().unwrap();
        assert!((rmc.utc_seconds % 60.0 - 19.2).abs() < 1e-9);
    }
}
