//! Property-based tests for NMEA parsing and encoding.

use alidrone_nmea::{frame_sentence, split_sentence, Gga, NmeaError, Rmc};
use alidrone_nmea::coord::{format_lat, format_lon, parse_lat, parse_lon};
use proptest::prelude::*;

proptest! {
    /// Coordinate format round trip at GPS precision.
    #[test]
    fn lat_round_trip(lat in -89.9999..89.9999f64) {
        let (f, h) = format_lat(lat);
        let rt = parse_lat(&f, &h.to_string()).unwrap();
        prop_assert!((rt - lat).abs() < 1e-5, "{lat} -> {f}{h} -> {rt}");
    }

    #[test]
    fn lon_round_trip(lon in -179.9999..179.9999f64) {
        let (f, h) = format_lon(lon);
        let rt = parse_lon(&f, &h.to_string()).unwrap();
        prop_assert!((rt - lon).abs() < 1e-5);
    }

    /// RMC encode/parse round trip for arbitrary valid samples.
    #[test]
    fn rmc_round_trip(
        lat in -89.9..89.9f64,
        lon in -179.9..179.9f64,
        utc in 0.0..86_399.0f64,
        speed in 0.0..120.0f64,
        active in any::<bool>(),
        day in 1u8..=28, month in 1u8..=12, year in 0u8..=99,
    ) {
        let orig = Rmc {
            utc_seconds: utc,
            active,
            lat_deg: lat,
            lon_deg: lon,
            speed_knots: speed,
            course_deg: None,
            date: (day, month, year),
        };
        let line = orig.to_sentence();
        let rt: Rmc = line.parse().unwrap();
        prop_assert!((rt.lat_deg - lat).abs() < 1e-5);
        prop_assert!((rt.lon_deg - lon).abs() < 1e-5);
        prop_assert!((rt.utc_seconds - utc).abs() < 0.01);
        prop_assert!((rt.speed_knots - speed).abs() < 0.06);
        prop_assert_eq!(rt.active, active);
        prop_assert_eq!(rt.date, (day, month, year));
    }

    /// GGA encode/parse round trip including altitude.
    #[test]
    fn gga_round_trip(
        lat in -89.9..89.9f64,
        lon in -179.9..179.9f64,
        utc in 0.0..86_399.0f64,
        alt in -100.0..9_000.0f64,
        sats in 0u8..24,
    ) {
        let orig = Gga {
            utc_seconds: utc,
            lat_deg: lat,
            lon_deg: lon,
            quality: alidrone_nmea::FixQuality::Gps,
            num_satellites: sats,
            hdop: 1.0,
            altitude_m: alt,
        };
        let rt: Gga = orig.to_sentence().parse().unwrap();
        prop_assert!((rt.lat_deg - lat).abs() < 1e-5);
        prop_assert!((rt.lon_deg - lon).abs() < 1e-5);
        prop_assert!((rt.altitude_m - alt).abs() < 0.06);
        prop_assert_eq!(rt.num_satellites, sats);
    }

    /// Any single-character corruption of the body is caught by the
    /// checksum (unless it collides, which XOR of one changed character
    /// cannot do).
    #[test]
    fn checksum_detects_single_corruption(
        idx in 0usize..50,
        replacement in b'0'..=b'9',
    ) {
        let body = "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W";
        let framed = frame_sentence(body);
        // Corrupt one body character (skip '$' at 0).
        let pos = 1 + idx % body.len();
        let mut bytes = framed.clone().into_bytes();
        if bytes[pos] == replacement {
            return Ok(()); // no-op corruption
        }
        bytes[pos] = replacement;
        let corrupted = String::from_utf8(bytes).unwrap();
        match split_sentence(&corrupted) {
            Err(NmeaError::ChecksumMismatch { .. }) => {}
            Err(_) => {} // corrupting a comma etc. can break other framing
            Ok(_) => prop_assert!(false, "corruption undetected: {corrupted}"),
        }
    }

    /// Framing arbitrary field content round-trips through the splitter.
    #[test]
    fn frame_split_round_trip(fields in prop::collection::vec("[A-Za-z0-9.]{0,8}", 1..10)) {
        let body = fields.join(",");
        let framed = frame_sentence(&body);
        let split = split_sentence(&framed).unwrap();
        prop_assert_eq!(split.len(), fields.len());
        for (a, b) in split.iter().zip(fields.iter()) {
            prop_assert_eq!(*a, b.as_str());
        }
    }
}
