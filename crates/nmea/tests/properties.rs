//! Randomized tests for NMEA parsing and encoding.
//!
//! This crate is dependency-free (it sits below even `alidrone-crypto`
//! in the graph), so the test carries its own tiny xorshift64* instead
//! of pulling in the workspace RNG. Each case stream is seeded, so any
//! failure reproduces exactly.

use alidrone_nmea::coord::{format_lat, format_lon, parse_lat, parse_lon};
use alidrone_nmea::{frame_sentence, split_sentence, Gga, NmeaError, Rmc};

const CASES: usize = 256;

/// Minimal deterministic PRNG (xorshift64*), local to this test.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Coordinate format round trip at GPS precision.
#[test]
fn lat_round_trip() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let lat = rng.in_range(-89.9999, 89.9999);
        let (f, h) = format_lat(lat);
        let rt = parse_lat(&f, &h.to_string()).unwrap();
        assert!((rt - lat).abs() < 1e-5, "{lat} -> {f}{h} -> {rt}");
    }
}

#[test]
fn lon_round_trip() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let lon = rng.in_range(-179.9999, 179.9999);
        let (f, h) = format_lon(lon);
        let rt = parse_lon(&f, &h.to_string()).unwrap();
        assert!((rt - lon).abs() < 1e-5);
    }
}

/// RMC encode/parse round trip for arbitrary valid samples.
#[test]
fn rmc_round_trip() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let lat = rng.in_range(-89.9, 89.9);
        let lon = rng.in_range(-179.9, 179.9);
        let utc = rng.in_range(0.0, 86_399.0);
        let speed = rng.in_range(0.0, 120.0);
        let active = rng.next_u64() & 1 == 1;
        let date = (
            1 + rng.below(28) as u8,
            1 + rng.below(12) as u8,
            rng.below(100) as u8,
        );
        let orig = Rmc {
            utc_seconds: utc,
            active,
            lat_deg: lat,
            lon_deg: lon,
            speed_knots: speed,
            course_deg: None,
            date,
        };
        let line = orig.to_sentence();
        let rt: Rmc = line.parse().unwrap();
        assert!((rt.lat_deg - lat).abs() < 1e-5);
        assert!((rt.lon_deg - lon).abs() < 1e-5);
        assert!((rt.utc_seconds - utc).abs() < 0.01);
        assert!((rt.speed_knots - speed).abs() < 0.06);
        assert_eq!(rt.active, active);
        assert_eq!(rt.date, date);
    }
}

/// GGA encode/parse round trip including altitude.
#[test]
fn gga_round_trip() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let lat = rng.in_range(-89.9, 89.9);
        let lon = rng.in_range(-179.9, 179.9);
        let orig = Gga {
            utc_seconds: rng.in_range(0.0, 86_399.0),
            lat_deg: lat,
            lon_deg: lon,
            quality: alidrone_nmea::FixQuality::Gps,
            num_satellites: rng.below(24) as u8,
            hdop: 1.0,
            altitude_m: rng.in_range(-100.0, 9_000.0),
        };
        let rt: Gga = orig.to_sentence().parse().unwrap();
        assert!((rt.lat_deg - lat).abs() < 1e-5);
        assert!((rt.lon_deg - lon).abs() < 1e-5);
        assert!((rt.altitude_m - orig.altitude_m).abs() < 0.06);
        assert_eq!(rt.num_satellites, orig.num_satellites);
    }
}

/// Any single-character corruption of the body is caught by the
/// checksum (unless it collides, which XOR of one changed character
/// cannot do).
#[test]
fn checksum_detects_single_corruption() {
    let mut rng = Rng::new(5);
    let body = "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W";
    for _ in 0..CASES {
        let replacement = b'0' + rng.below(10) as u8;
        let framed = frame_sentence(body);
        // Corrupt one body character (skip '$' at 0).
        let pos = 1 + rng.below(body.len() as u64) as usize;
        let mut bytes = framed.into_bytes();
        if bytes[pos] == replacement {
            continue; // no-op corruption
        }
        bytes[pos] = replacement;
        let corrupted = String::from_utf8(bytes).unwrap();
        match split_sentence(&corrupted) {
            Err(NmeaError::ChecksumMismatch { .. }) => {}
            Err(_) => {} // corrupting a comma etc. can break other framing
            Ok(_) => panic!("corruption undetected: {corrupted}"),
        }
    }
}

/// Framing arbitrary field content round-trips through the splitter.
#[test]
fn frame_split_round_trip() {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789.";
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let nfields = 1 + rng.below(9) as usize;
        let fields: Vec<String> = (0..nfields)
            .map(|_| {
                let len = rng.below(9) as usize;
                (0..len)
                    .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
                    .collect()
            })
            .collect();
        let body = fields.join(",");
        let framed = frame_sentence(&body);
        let split = split_sentence(&framed).unwrap();
        assert_eq!(split.len(), fields.len());
        for (a, b) in split.iter().zip(fields.iter()) {
            assert_eq!(*a, b.as_str());
        }
    }
}
