//! Property-based tests for the protocol layer.
//!
//! Two classes of invariant:
//!
//! 1. **Parser robustness** — no byte string, however adversarial, may
//!    panic a decoder or round-trip into a different message.
//! 2. **Verification soundness** — a `Compliant` verdict must imply that
//!    no sample sits in any zone and every pair is sufficient, for
//!    arbitrary traces and zone layouts.

use std::sync::OnceLock;

use alidrone_core::wire::{Request, Response};
use alidrone_core::{
    Auditor, AuditorConfig, DroneId, PoaSubmission, ProofOfAlibi, Verdict, ZoneId,
};
use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone_geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp, FAA_MAX_SPEED};
use alidrone_tee::SignedSample;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tee_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x9097);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

fn auditor_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x9098);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

fn origin() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

prop_compose! {
    /// A physically plausible signed trace: bounded speed, increasing
    /// timestamps.
    fn arb_trace()(
        n in 2usize..20,
        speed in 0.0..40.0f64,
        dt in 0.2..20.0f64,
        bearing in 0.0..360.0f64,
    ) -> Vec<SignedSample> {
        (0..n)
            .map(|i| {
                let s = GpsSample::new(
                    origin().destination(bearing, Distance::from_meters(speed * dt * i as f64)),
                    Timestamp::from_secs(dt * i as f64),
                );
                let sig = tee_key().sign(&s.to_bytes(), HashAlg::Sha1).unwrap();
                SignedSample::from_parts(s, sig, HashAlg::Sha1)
            })
            .collect()
    }
}

prop_compose! {
    fn arb_zones()(
        specs in prop::collection::vec((0.0..360.0f64, 10.0..5_000.0f64, 5.0..200.0f64), 0..8)
    ) -> Vec<NoFlyZone> {
        specs
            .iter()
            .map(|&(b, d, r)| {
                NoFlyZone::new(
                    origin().destination(b, Distance::from_meters(d)),
                    Distance::from_meters(r),
                )
            })
            .collect()
    }
}

proptest! {
    // RSA signing in debug builds makes trace generation expensive;
    // 64 cases keeps the suite fast while still exploring the space.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compliant verdicts are sound: no sample in any zone, every pair
    /// sufficient, timestamps monotone.
    #[test]
    fn compliant_verdict_is_sound(trace in arb_trace(), zones in arb_zones()) {
        let mut auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let drone = auditor.register_drone(
            tee_key().public_key().clone(),
            tee_key().public_key().clone(),
        );
        for z in &zones {
            auditor.register_zone(*z);
        }
        let first = trace.first().unwrap().sample().time();
        let last = trace.last().unwrap().sample().time();
        let submission = PoaSubmission {
            drone_id: drone,
            window_start: first,
            window_end: last,
            poa: ProofOfAlibi::from_entries(trace.clone()),
        };
        let report = auditor
            .verify_submission(&submission, Timestamp::from_secs(0.0))
            .unwrap();
        if report.is_compliant() {
            let alibi: Vec<GpsSample> = trace.iter().map(|e| *e.sample()).collect();
            prop_assert!(alidrone_geo::check_monotonic(&alibi).is_ok());
            for s in &alibi {
                for z in &zones {
                    prop_assert!(!z.contains(&s.point()));
                }
            }
            let zone_set: alidrone_geo::ZoneSet = zones.iter().copied().collect();
            let suff = alidrone_geo::sufficiency::check_alibi(
                &alibi,
                &zone_set,
                FAA_MAX_SPEED,
                alidrone_geo::sufficiency::Criterion::Paper,
            );
            prop_assert!(suff.is_sufficient());
        }
    }

    /// Verification is deterministic: submitting the same PoA twice
    /// yields the same verdict.
    #[test]
    fn verification_is_deterministic(trace in arb_trace(), zones in arb_zones()) {
        let mut auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let drone = auditor.register_drone(
            tee_key().public_key().clone(),
            tee_key().public_key().clone(),
        );
        for z in &zones {
            auditor.register_zone(*z);
        }
        let submission = PoaSubmission {
            drone_id: drone,
            window_start: trace.first().unwrap().sample().time(),
            window_end: trace.last().unwrap().sample().time(),
            poa: ProofOfAlibi::from_entries(trace),
        };
        let a = auditor.verify_submission(&submission, Timestamp::EPOCH).unwrap();
        let b = auditor.verify_submission(&submission, Timestamp::EPOCH).unwrap();
        prop_assert_eq!(a.verdict, b.verdict);
    }

    /// PoA wire format round-trips for arbitrary well-formed traces.
    #[test]
    fn poa_wire_round_trip(trace in arb_trace()) {
        let poa = ProofOfAlibi::from_entries(trace);
        let rt = ProofOfAlibi::from_bytes(&poa.to_bytes()).unwrap();
        prop_assert_eq!(poa, rt);
    }

    /// Arbitrary bytes never panic the PoA / SignedSample parsers.
    #[test]
    fn poa_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = ProofOfAlibi::from_bytes(&bytes);
        let _ = SignedSample::from_bytes(&bytes);
    }

    /// Arbitrary bytes never panic the wire decoders.
    #[test]
    fn wire_parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
    }

    /// Wire round trip for submit requests with arbitrary payloads.
    #[test]
    fn wire_submit_round_trip(
        id in 0u64..1_000_000,
        ws in -1.0e6..1.0e6f64,
        dur in 0.0..1.0e5f64,
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(id),
            window_start: Timestamp::from_secs(ws),
            window_end: Timestamp::from_secs(ws + dur),
            poa: payload,
        };
        prop_assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    /// Verdict wire encoding round-trips for arbitrary index payloads.
    #[test]
    fn wire_verdict_round_trip(
        index in 0usize..1_000_000,
        zone in 0u64..1_000_000,
        pairs in prop::collection::vec(0usize..1_000_000, 0..20),
    ) {
        for v in [
            Verdict::Compliant,
            Verdict::EmptyPoa,
            Verdict::WindowNotCovered,
            Verdict::BadSignature { index },
            Verdict::NonMonotonic { index },
            Verdict::ImpossibleTrace { index },
            Verdict::InsideZone { index, zone: ZoneId::new(zone) },
            Verdict::InsufficientAlibi { pair_indices: pairs.clone() },
        ] {
            let resp = Response::Verdict(v.clone());
            prop_assert_eq!(Response::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
    }

    /// Corrupting any single byte of a serialized request never yields a
    /// *different valid request of the same variant with same payload* —
    /// i.e. decode either fails or differs.
    #[test]
    fn wire_corruption_never_silent(
        id in 0u64..1_000,
        flip_pos in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(id),
            window_start: Timestamp::from_secs(1.0),
            window_end: Timestamp::from_secs(2.0),
            poa: vec![1, 2, 3],
        };
        let mut bytes = req.to_bytes();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        match Request::from_bytes(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, req),
        }
    }
}
