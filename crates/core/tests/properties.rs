//! Randomized tests for the protocol layer.
//!
//! Two classes of invariant:
//!
//! 1. **Parser robustness** — no byte string, however adversarial, may
//!    panic a decoder or round-trip into a different message.
//! 2. **Verification soundness** — a `Compliant` verdict must imply that
//!    no sample sits in any zone and every pair is sufficient, for
//!    arbitrary traces and zone layouts.
//!
//! Inputs come from a seeded deterministic stream (no `proptest` — the
//! offline build has no crates.io), so failures reproduce exactly.
//! RSA signing in debug builds makes trace generation expensive; 64
//! cases keeps the suite fast while still exploring the space.

use std::sync::OnceLock;

use alidrone_core::wire::{
    encode_enveloped, split_envelope, Request, Response, WireTraceContext, ENVELOPE_MAGIC,
};
use alidrone_core::{
    Auditor, AuditorConfig, DroneId, PoaSubmission, ProofOfAlibi, Submission, Verdict, ZoneId,
};
use alidrone_crypto::rng::{Rng, XorShift64};
use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone_geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp, FAA_MAX_SPEED};
use alidrone_tee::SignedSample;

const CASES: usize = 64;

fn tee_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(0x9097);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

fn auditor_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(0x9098);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

fn origin() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

fn in_range(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.gen_f64() * (hi - lo)
}

fn arb_bytes(rng: &mut XorShift64, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range_u64(max_len as u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// A physically plausible signed trace: bounded speed, increasing
/// timestamps.
fn arb_trace(rng: &mut XorShift64) -> Vec<SignedSample> {
    let n = 2 + rng.gen_range_u64(18) as usize;
    let speed = in_range(rng, 0.0, 40.0);
    let dt = in_range(rng, 0.2, 20.0);
    let bearing = in_range(rng, 0.0, 360.0);
    (0..n)
        .map(|i| {
            let s = GpsSample::new(
                origin().destination(bearing, Distance::from_meters(speed * dt * i as f64)),
                Timestamp::from_secs(dt * i as f64),
            );
            let sig = tee_key().sign(&s.to_bytes(), HashAlg::Sha1).unwrap();
            SignedSample::from_parts(s, sig, HashAlg::Sha1)
        })
        .collect()
}

fn arb_zones(rng: &mut XorShift64) -> Vec<NoFlyZone> {
    let n = rng.gen_range_u64(8) as usize;
    (0..n)
        .map(|_| {
            NoFlyZone::new(
                origin().destination(
                    in_range(rng, 0.0, 360.0),
                    Distance::from_meters(in_range(rng, 10.0, 5_000.0)),
                ),
                Distance::from_meters(in_range(rng, 5.0, 200.0)),
            )
        })
        .collect()
}

/// Compliant verdicts are sound: no sample in any zone, every pair
/// sufficient, timestamps monotone.
#[test]
fn compliant_verdict_is_sound() {
    let mut rng = XorShift64::seed_from_u64(401);
    for _ in 0..CASES {
        let trace = arb_trace(&mut rng);
        let zones = arb_zones(&mut rng);
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let drone = auditor.register_drone(
            tee_key().public_key().clone(),
            tee_key().public_key().clone(),
        );
        for z in &zones {
            auditor.register_zone(*z);
        }
        let first = trace.first().unwrap().sample().time();
        let last = trace.last().unwrap().sample().time();
        let submission = Submission::plain(PoaSubmission {
            drone_id: drone,
            window_start: first,
            window_end: last,
            poa: ProofOfAlibi::from_entries(trace.clone()),
        });
        let report = auditor
            .verify(&submission, Timestamp::from_secs(0.0))
            .unwrap();
        if report.is_compliant() {
            let alibi: Vec<GpsSample> = trace.iter().map(|e| *e.sample()).collect();
            assert!(alidrone_geo::check_monotonic(&alibi).is_ok());
            for s in &alibi {
                for z in &zones {
                    assert!(!z.contains(&s.point()));
                }
            }
            let zone_set: alidrone_geo::ZoneSet = zones.iter().copied().collect();
            let suff = alidrone_geo::sufficiency::check_alibi(
                &alibi,
                &zone_set,
                FAA_MAX_SPEED,
                alidrone_geo::sufficiency::Criterion::Paper,
            );
            assert!(suff.is_sufficient());
        }
    }
}

/// Verification is deterministic: submitting the same PoA twice
/// yields the same verdict.
#[test]
fn verification_is_deterministic() {
    let mut rng = XorShift64::seed_from_u64(402);
    for _ in 0..CASES / 4 {
        let trace = arb_trace(&mut rng);
        let zones = arb_zones(&mut rng);
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let drone = auditor.register_drone(
            tee_key().public_key().clone(),
            tee_key().public_key().clone(),
        );
        for z in &zones {
            auditor.register_zone(*z);
        }
        let submission = Submission::plain(PoaSubmission {
            drone_id: drone,
            window_start: trace.first().unwrap().sample().time(),
            window_end: trace.last().unwrap().sample().time(),
            poa: ProofOfAlibi::from_entries(trace),
        });
        let a = auditor.verify(&submission, Timestamp::EPOCH).unwrap();
        let b = auditor.verify(&submission, Timestamp::EPOCH).unwrap();
        assert_eq!(a.verdict, b.verdict);
    }
}

/// PoA wire format round-trips for arbitrary well-formed traces.
#[test]
fn poa_wire_round_trip() {
    let mut rng = XorShift64::seed_from_u64(403);
    for _ in 0..CASES / 4 {
        let poa = ProofOfAlibi::from_entries(arb_trace(&mut rng));
        let rt = ProofOfAlibi::from_bytes(&poa.to_bytes()).unwrap();
        assert_eq!(poa, rt);
    }
}

/// Arbitrary bytes never panic the PoA / SignedSample parsers.
#[test]
fn poa_parser_never_panics() {
    let mut rng = XorShift64::seed_from_u64(404);
    for _ in 0..CASES * 4 {
        let bytes = arb_bytes(&mut rng, 400);
        let _ = ProofOfAlibi::from_bytes(&bytes);
        let _ = SignedSample::from_bytes(&bytes);
    }
}

/// Arbitrary bytes never panic the wire decoders.
#[test]
fn wire_parsers_never_panic() {
    let mut rng = XorShift64::seed_from_u64(405);
    for _ in 0..CASES * 4 {
        let bytes = arb_bytes(&mut rng, 400);
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
    }
}

/// Wire round trip for submit requests with arbitrary payloads.
#[test]
fn wire_submit_round_trip() {
    let mut rng = XorShift64::seed_from_u64(406);
    for _ in 0..CASES {
        let ws = in_range(&mut rng, -1.0e6, 1.0e6);
        let dur = in_range(&mut rng, 0.0, 1.0e5);
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(rng.gen_range_u64(1_000_000)),
            window_start: Timestamp::from_secs(ws),
            window_end: Timestamp::from_secs(ws + dur),
            poa: arb_bytes(&mut rng, 200),
        };
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
    }
}

/// Verdict wire encoding round-trips for arbitrary index payloads.
#[test]
fn wire_verdict_round_trip() {
    let mut rng = XorShift64::seed_from_u64(407);
    for _ in 0..CASES {
        let index = rng.gen_range_u64(1_000_000) as usize;
        let zone = rng.gen_range_u64(1_000_000);
        let npairs = rng.gen_range_u64(20) as usize;
        let pairs: Vec<usize> = (0..npairs)
            .map(|_| rng.gen_range_u64(1_000_000) as usize)
            .collect();
        for v in [
            Verdict::Compliant,
            Verdict::EmptyPoa,
            Verdict::WindowNotCovered,
            Verdict::BadSignature { index },
            Verdict::NonMonotonic { index },
            Verdict::ImpossibleTrace { index },
            Verdict::InsideZone {
                index,
                zone: ZoneId::new(zone),
            },
            Verdict::InsufficientAlibi {
                pair_indices: pairs.clone(),
            },
        ] {
            let resp = Response::Verdict(v.clone());
            assert_eq!(Response::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
    }
}

/// Backward compatibility of the trace envelope: every pre-envelope
/// frame (any byte string not starting with the envelope magic — which
/// includes every encoded request, whose tags live in 1..=6) passes
/// through `split_envelope` byte-identically with no trace context.
#[test]
fn envelope_bare_frames_decode_identically() {
    let mut rng = XorShift64::seed_from_u64(409);
    for _ in 0..CASES * 4 {
        let bytes = arb_bytes(&mut rng, 400);
        if bytes.first() == Some(&ENVELOPE_MAGIC) {
            continue; // enveloped by construction, covered below
        }
        let (ctx, payload) = split_envelope(&bytes).expect("bare frame must parse");
        assert_eq!(ctx, None);
        assert_eq!(payload, &bytes[..]);
    }
    // And specifically: every encoded request is such a frame.
    let req = Request::SubmitPoa {
        drone_id: DroneId::new(7),
        window_start: Timestamp::from_secs(1.0),
        window_end: Timestamp::from_secs(2.0),
        poa: vec![1, 2, 3],
    };
    let bytes = req.to_bytes();
    assert_ne!(bytes[0], ENVELOPE_MAGIC);
    let (ctx, payload) = split_envelope(&bytes).unwrap();
    assert_eq!(ctx, None);
    assert_eq!(Request::from_bytes(payload).unwrap(), req);
}

/// The envelope round-trips arbitrary trace ids and payloads.
#[test]
fn envelope_round_trips_trace_ids() {
    let mut rng = XorShift64::seed_from_u64(410);
    for _ in 0..CASES * 2 {
        let ctx = WireTraceContext {
            trace_id: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
            span_id: rng.next_u64(),
        };
        let payload = arb_bytes(&mut rng, 200);
        let frame = encode_enveloped(ctx, &payload);
        let (got_ctx, got_payload) = split_envelope(&frame).expect("envelope must parse");
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(got_payload, &payload[..]);
    }
}

/// Truncating an enveloped frame anywhere inside the header yields a
/// clean `ProtocolError`, never a panic; arbitrary bytes after the
/// magic never panic either.
#[test]
fn envelope_truncation_is_an_error_not_a_panic() {
    let mut rng = XorShift64::seed_from_u64(411);
    for _ in 0..CASES {
        let ctx = WireTraceContext {
            trace_id: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
            span_id: rng.next_u64(),
        };
        let frame = encode_enveloped(ctx, &arb_bytes(&mut rng, 50));
        // Any cut inside the 26-byte header must fail cleanly.
        for cut in 1..26.min(frame.len()) {
            assert!(
                split_envelope(&frame[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }
    for _ in 0..CASES * 2 {
        let mut bytes = arb_bytes(&mut rng, 60);
        bytes.insert(0, ENVELOPE_MAGIC);
        let _ = split_envelope(&bytes); // must not panic
    }
}

/// Corrupting any single byte of a serialized request never yields a
/// *different valid request of the same variant with same payload* —
/// i.e. decode either fails or differs.
#[test]
fn wire_corruption_never_silent() {
    let mut rng = XorShift64::seed_from_u64(408);
    for _ in 0..CASES * 2 {
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(rng.gen_range_u64(1_000)),
            window_start: Timestamp::from_secs(1.0),
            window_end: Timestamp::from_secs(2.0),
            poa: vec![1, 2, 3],
        };
        let mut bytes = req.to_bytes();
        let pos = rng.gen_range_u64(bytes.len() as u64) as usize;
        let bit = rng.gen_range_u64(8) as u8;
        bytes[pos] ^= 1 << bit;
        match Request::from_bytes(&bytes) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, req),
        }
    }
}
