//! Batch-vs-serial verdict equivalence for the verification pipeline.
//!
//! An auditor with a [`VerifyPool`] installed fans per-entry signature
//! checks across worker threads and aborts a batch early at the first
//! failure; an auditor without one checks entries serially. The two must
//! be observationally identical: same verdict, same failing index, for
//! honest traces and for every signature-forgery strategy. This campaign
//! drives both through 50 deterministic seeds, each seed picking a trace
//! shape and an adversarial mutation.

use std::sync::{Arc, OnceLock};

use alidrone_core::verify_pool::VerifyPool;
use alidrone_core::{Auditor, AuditorConfig, PoaSubmission, ProofOfAlibi, Submission};
use alidrone_crypto::rng::{Rng, XorShift64};
use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone_geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp};
use alidrone_obs::Obs;
use alidrone_tee::SignedSample;

const SEEDS: u64 = 50;

fn tee_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(0xBA7C);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

fn forger_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(0xBA7D);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

fn auditor_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(0xBA7E);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

fn origin() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

fn in_range(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.gen_f64() * (hi - lo)
}

/// A physically plausible honest trace, long enough that the pooled
/// auditor always takes the batched path (its floor is 4 entries).
fn arb_trace(rng: &mut XorShift64) -> Vec<SignedSample> {
    let n = 8 + rng.gen_range_u64(24) as usize;
    let speed = in_range(rng, 0.0, 40.0);
    let dt = in_range(rng, 0.2, 20.0);
    let bearing = in_range(rng, 0.0, 360.0);
    (0..n)
        .map(|i| {
            let s = GpsSample::new(
                origin().destination(bearing, Distance::from_meters(speed * dt * i as f64)),
                Timestamp::from_secs(dt * i as f64),
            );
            let sig = tee_key().sign(&s.to_bytes(), HashAlg::Sha1).unwrap();
            SignedSample::from_parts(s, sig, HashAlg::Sha1)
        })
        .collect()
}

/// The adversarial mutations a dishonest operator can apply without the
/// TEE key. `kind` cycles so the 50 seeds cover each several times.
fn mutate(trace: &mut [SignedSample], kind: u64, rng: &mut XorShift64) {
    let idx = rng.gen_range_u64(trace.len() as u64) as usize;
    let entry = &trace[idx];
    match kind {
        // Honest: leave the trace alone.
        0 => {}
        // Forge: re-sign one sample with a non-TEE key.
        1 => {
            let sig = forger_key()
                .sign(&entry.sample().to_bytes(), HashAlg::Sha1)
                .unwrap();
            trace[idx] = SignedSample::from_parts(*entry.sample(), sig, HashAlg::Sha1);
        }
        // Tamper: move a sample but keep its genuine signature.
        2 => {
            let moved = GpsSample::new(
                entry
                    .sample()
                    .point()
                    .destination(180.0, Distance::from_meters(250.0)),
                entry.sample().time(),
            );
            trace[idx] = SignedSample::from_parts(moved, entry.signature().to_vec(), HashAlg::Sha1);
        }
        // Corrupt: flip a byte of the signature itself.
        3 => {
            let mut sig = entry.signature().to_vec();
            let b = rng.gen_range_u64(sig.len() as u64) as usize;
            sig[b] ^= 0x40;
            trace[idx] = SignedSample::from_parts(*entry.sample(), sig, HashAlg::Sha1);
        }
        // Multi-forge: several bad entries — the reported index must be
        // the lowest one, exactly as the serial scan finds it.
        _ => {
            for _ in 0..3 {
                let i = rng.gen_range_u64(trace.len() as u64) as usize;
                let sig = forger_key()
                    .sign(&trace[i].sample().to_bytes(), HashAlg::Sha1)
                    .unwrap();
                trace[i] = SignedSample::from_parts(*trace[i].sample(), sig, HashAlg::Sha1);
            }
        }
    }
}

/// Builds a registered auditor, optionally with a verify pool installed.
fn auditor(pooled: bool) -> (Auditor, alidrone_core::DroneId) {
    let a = Auditor::new(AuditorConfig::default(), auditor_key().clone());
    if pooled {
        assert!(a.install_verify_pool(Arc::new(VerifyPool::new(4, &Obs::noop()))));
    }
    let id = a.register_drone(
        forger_key().public_key().clone(),
        tee_key().public_key().clone(),
    );
    a.register_zone(NoFlyZone::new(
        origin().destination(45.0, Distance::from_km(2.0)),
        Distance::from_meters(80.0),
    ));
    (a, id)
}

#[test]
fn batched_and_serial_verdicts_agree_across_seeds() {
    for seed in 0..SEEDS {
        let mut rng = XorShift64::seed_from_u64(0x50A1 ^ seed);
        let mut trace = arb_trace(&mut rng);
        mutate(&mut trace, seed % 5, &mut rng);
        let window_start = trace.first().unwrap().sample().time();
        let window_end = trace.last().unwrap().sample().time();

        let (serial, serial_id) = auditor(false);
        let (pooled, pooled_id) = auditor(true);
        assert_eq!(serial_id, pooled_id);

        let submission = |id| {
            Submission::plain(PoaSubmission {
                drone_id: id,
                window_start,
                window_end,
                poa: ProofOfAlibi::from_entries(trace.clone()),
            })
        };
        let a = serial
            .verify(&submission(serial_id), Timestamp::EPOCH)
            .unwrap();
        let b = pooled
            .verify(&submission(pooled_id), Timestamp::EPOCH)
            .unwrap();
        assert_eq!(
            a.verdict, b.verdict,
            "seed {seed}: batched verdict diverged from serial"
        );

        // Resubmission hits the pooled auditor's verify-result cache;
        // the verdict must not change.
        let c = pooled
            .verify(&submission(pooled_id), Timestamp::EPOCH)
            .unwrap();
        assert_eq!(b.verdict, c.verdict, "seed {seed}: cached verdict diverged");
    }
}
