//! A bounded worker pool for batched signature verification.
//!
//! The PoA hot path spends almost all of its time in RSA signature
//! checks (paper §V), and those checks are independent per entry — so a
//! submission's entries can fan out across cores. [`VerifyPool`] owns a
//! fixed set of worker threads shared by every in-flight request: one
//! pool per server, not per connection, so concurrent submissions share
//! the same bounded CPU budget instead of oversubscribing.
//!
//! # Batch semantics
//!
//! [`first_failure`](VerifyPool::first_failure) returns the **lowest**
//! index whose check fails, exactly like the serial
//! `for`-loop-with-early-return it replaces — verdicts are equivalent by
//! construction (proved across seeds in `tests/verify_pipeline.rs`).
//! Workers claim indices from a shared cursor in ascending order and
//! stop claiming once a failure below the cursor is known, so a forged
//! signature at the front aborts the batch about as fast as the serial
//! path would.
//!
//! The submitting thread participates in its own batch, which keeps the
//! pool deadlock-free under load: even with every worker busy on other
//! batches, a batch always makes progress on its caller's thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use alidrone_obs::{Counter, Histogram, Obs};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state for one batch: the claim cursor, the lowest failing
/// index seen so far, and a countdown of outstanding worker shares.
struct BatchState {
    cursor: AtomicUsize,
    /// `usize::MAX` = no failure yet. Only ever lowered (`fetch_min`).
    min_fail: AtomicUsize,
    pending: Mutex<usize>,
    done: Condvar,
}

impl BatchState {
    /// Drains the cursor: claims ascending indices, runs `check`, and
    /// records the lowest failure. Stops early once every index it could
    /// claim is above a known failure.
    fn run_share<T, F>(&self, items: &[T], check: &F)
    where
        F: Fn(usize, &T) -> bool,
    {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() || i > self.min_fail.load(Ordering::Relaxed) {
                // Indices only grow and min_fail only shrinks, so
                // nothing this share could still claim can matter.
                break;
            }
            if !check(i, &items[i]) {
                self.min_fail.fetch_min(i, Ordering::Relaxed);
            }
        }
    }

    fn finish_share(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Decrements the batch countdown even if a check panics, so the
/// submitting thread can never be left waiting forever.
struct ShareGuard<'a>(&'a BatchState);

impl Drop for ShareGuard<'_> {
    fn drop(&mut self) {
        self.0.finish_share();
    }
}

/// A fixed-size pool of verification workers shared across requests.
///
/// Dropping the pool closes the job channel and joins every worker;
/// in-flight batches complete first (the caller of each batch blocks
/// until its own batch is done, so a batch can never outlive its items).
pub struct VerifyPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    obs: Obs,
    batches: Arc<Counter>,
    entries: Arc<Counter>,
    early_aborts: Arc<Counter>,
    batch_size: Arc<Histogram>,
    batch_latency: Arc<Histogram>,
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl VerifyPool {
    /// Spawns `threads` workers (clamped to ≥ 1). Batch metrics —
    /// `auditor.verify_batch.{batches,entries,early_aborts}` counters,
    /// `auditor.verify_batch.{size,latency_us}` histograms and the
    /// per-batch `auditor.verify_batch` span — are registered on `obs`.
    pub fn new(threads: usize, obs: &Obs) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("verify-pool-{i}"))
                    .spawn(move || loop {
                        // Errors only when the sender is dropped: shutdown.
                        let job = {
                            let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
                            rx.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn verify worker")
            })
            .collect();
        VerifyPool {
            tx: Some(tx),
            workers,
            obs: obs.clone(),
            batches: obs.counter("auditor.verify_batch.batches"),
            entries: obs.counter("auditor.verify_batch.entries"),
            early_aborts: obs.counter("auditor.verify_batch.early_aborts"),
            batch_size: obs.histogram("auditor.verify_batch.size"),
            batch_latency: obs.histogram("auditor.verify_batch.latency_us"),
        }
    }

    /// Sizes a pool to the machine: one worker per available core
    /// (minimum 1).
    pub fn for_machine(obs: &Obs) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        VerifyPool::new(threads, obs)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `check` over every item, fanned across the pool plus the
    /// calling thread, and returns the lowest index for which it
    /// returned `false` — `None` when every check passed. Blocks until
    /// the batch is resolved.
    ///
    /// `items` and `check` are shared with worker threads by `Arc`, so
    /// the batch borrows nothing from the caller's stack.
    pub fn first_failure<T, F>(&self, items: Arc<Vec<T>>, check: Arc<F>) -> Option<usize>
    where
        T: Send + Sync + 'static,
        F: Fn(usize, &T) -> bool + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return None;
        }
        let span = self
            .obs
            .enter_span_recording("auditor.verify_batch", &self.batch_latency);
        self.batches.add(1);
        self.entries.add(n as u64);
        self.batch_size.record_micros(n as u64);
        // One share per worker plus one for this thread, never more
        // shares than items.
        let shares = (self.workers.len() + 1).min(n);
        let state = Arc::new(BatchState {
            cursor: AtomicUsize::new(0),
            min_fail: AtomicUsize::new(usize::MAX),
            pending: Mutex::new(shares),
            done: Condvar::new(),
        });
        if let Some(tx) = &self.tx {
            for _ in 1..shares {
                let job_state = Arc::clone(&state);
                let items = Arc::clone(&items);
                let check = Arc::clone(&check);
                let job: Job = Box::new(move || {
                    let _guard = ShareGuard(&job_state);
                    job_state.run_share(&items, &*check);
                });
                if tx.send(job).is_err() {
                    // Pool shutting down: the share was never queued, so
                    // retire it here and let the caller's share drain
                    // the whole batch.
                    state.finish_share();
                }
            }
        }
        {
            let _guard = ShareGuard(&state);
            state.run_share(&items, &*check);
        }
        let mut pending = state.pending.lock().unwrap_or_else(|p| p.into_inner());
        while *pending > 0 {
            pending = state.done.wait(pending).unwrap_or_else(|p| p.into_inner());
        }
        drop(span);
        let min_fail = state.min_fail.load(Ordering::Relaxed);
        if min_fail == usize::MAX {
            None
        } else {
            if state.cursor.load(Ordering::Relaxed) < n + shares {
                self.early_aborts.add(1);
            }
            Some(min_fail)
        }
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        // Closing the channel wakes every idle worker with RecvError.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(threads: usize) -> VerifyPool {
        VerifyPool::new(threads, &Obs::noop())
    }

    #[test]
    fn all_pass_returns_none() {
        let p = pool(4);
        let items: Arc<Vec<u32>> = Arc::new((0..100).collect());
        assert_eq!(p.first_failure(items, Arc::new(|_, _: &u32| true)), None);
    }

    #[test]
    fn lowest_failing_index_wins() {
        let p = pool(4);
        let items: Arc<Vec<u32>> = Arc::new((0..500).collect());
        // Multiple failures: the serial answer is the lowest.
        let result = p.first_failure(
            Arc::clone(&items),
            Arc::new(|i, _: &u32| !(i == 7 || i == 3 || i >= 100)),
        );
        assert_eq!(result, Some(3));
    }

    #[test]
    fn empty_batch_is_none() {
        let p = pool(2);
        assert_eq!(
            p.first_failure(Arc::new(Vec::<u32>::new()), Arc::new(|_, _: &u32| false)),
            None
        );
    }

    #[test]
    fn single_worker_matches_serial() {
        let p = pool(1);
        let items: Arc<Vec<u32>> = Arc::new((0..20).collect());
        assert_eq!(
            p.first_failure(items, Arc::new(|_, v: &u32| *v != 11)),
            Some(11)
        );
    }

    #[test]
    fn metrics_count_batches_and_entries() {
        let obs = Obs::noop();
        let p = VerifyPool::new(2, &obs);
        let items: Arc<Vec<u32>> = Arc::new((0..10).collect());
        p.first_failure(Arc::clone(&items), Arc::new(|_, _: &u32| true));
        p.first_failure(items, Arc::new(|_, _: &u32| true));
        let snap = obs.snapshot();
        assert_eq!(snap.counter("auditor.verify_batch.batches"), 2);
        assert_eq!(snap.counter("auditor.verify_batch.entries"), 20);
    }

    #[test]
    fn pool_survives_many_concurrent_batches() {
        let p = Arc::new(pool(3));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for round in 0..10 {
                        let fail_at = (t * 10 + round) % 13;
                        let items: Arc<Vec<usize>> = Arc::new((0..50).collect());
                        let got =
                            p.first_failure(items, Arc::new(move |i, _: &usize| i != fail_at));
                        assert_eq!(got, Some(fail_at));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
