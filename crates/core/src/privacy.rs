//! Privacy-preserving verification (paper §VII-B3).
//!
//! A curious auditor could use PoAs to track every commercial drone. The
//! extension: the operator encrypts each signed sample with a *one-time
//! key* before upload. The auditor stores only ciphertexts. When a zone
//! owner reports an incident, the operator reveals the keys for the two
//! samples bracketing the accused time — the auditor decrypts exactly
//! those, verifies the TEE signatures, and decides the accusation while
//! learning only that fragment of the trajectory.

use alidrone_crypto::chacha20::{chacha20_decrypt, chacha20_encrypt};
use alidrone_crypto::rng::Rng;
use alidrone_crypto::rsa::RsaPublicKey;
use alidrone_geo::{NoFlyZone, Speed, Timestamp};
use alidrone_tee::SignedSample;

use crate::auditor::AccusationOutcome;
use crate::poa::ProofOfAlibi;
use crate::ProtocolError;

/// One sealed PoA entry as stored by the auditor: ciphertext plus the
/// (cleartext) timestamp used to locate bracketing samples.
///
/// Revealing timestamps leaks *when* the drone flew but not *where*; the
/// paper's sketch has the operator identify the two relevant samples,
/// which requires some index agreed with the auditor — the timestamp is
/// the minimal such index.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedEntry {
    /// Sample timestamp (cleartext index).
    pub time: Timestamp,
    /// ChaCha20 nonce for this entry.
    pub nonce: [u8; 12],
    /// Encrypted [`SignedSample`] wire bytes.
    pub ciphertext: Vec<u8>,
}

/// The auditor's view: sealed entries only.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SealedPoa {
    entries: Vec<SealedEntry>,
}

impl SealedPoa {
    /// Number of sealed samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sealed entries.
    pub fn entries(&self) -> &[SealedEntry] {
        &self.entries
    }

    /// Indices of the two entries bracketing `time`, if the time falls
    /// within the trace.
    pub fn bracketing_indices(&self, time: Timestamp) -> Option<(usize, usize)> {
        let ts = time.secs();
        for i in 0..self.entries.len().saturating_sub(1) {
            if self.entries[i].time.secs() <= ts && ts <= self.entries[i + 1].time.secs() {
                return Some((i, i + 1));
            }
        }
        None
    }
}

/// A revealed one-time key for one sealed entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyReveal {
    /// Which sealed entry this opens.
    pub index: usize,
    /// The one-time ChaCha20 key.
    pub key: [u8; 32],
}

/// The operator's side: the sealed PoA plus the key list (which never
/// leaves the operator unless revealed).
#[derive(Debug, Clone)]
pub struct PrivatePoa {
    sealed: SealedPoa,
    keys: Vec<[u8; 32]>,
}

impl PrivatePoa {
    /// Seals every entry of `poa` under fresh one-time keys.
    pub fn seal<R: Rng + ?Sized>(poa: &ProofOfAlibi, rng: &mut R) -> Self {
        let mut keys = Vec::with_capacity(poa.len());
        let mut entries = Vec::with_capacity(poa.len());
        for entry in poa.entries() {
            let mut key = [0u8; 32];
            rng.fill_bytes(&mut key);
            let mut nonce = [0u8; 12];
            rng.fill_bytes(&mut nonce);
            let ciphertext = chacha20_encrypt(&key, &nonce, &entry.to_bytes());
            entries.push(SealedEntry {
                time: entry.sample().time(),
                nonce,
                ciphertext,
            });
            keys.push(key);
        }
        PrivatePoa {
            sealed: SealedPoa { entries },
            keys,
        }
    }

    /// The auditor-visible part (what gets uploaded).
    pub fn sealed(&self) -> &SealedPoa {
        &self.sealed
    }

    /// Reveals the keys for the given entry indices (in response to an
    /// accusation).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] for out-of-range indices.
    pub fn reveal(&self, indices: &[usize]) -> Result<Vec<KeyReveal>, ProtocolError> {
        indices
            .iter()
            .map(|&i| {
                self.keys
                    .get(i)
                    .map(|&key| KeyReveal { index: i, key })
                    .ok_or(ProtocolError::Malformed("reveal index out of range"))
            })
            .collect()
    }
}

/// Auditor-side: opens one sealed entry with a revealed key.
///
/// # Errors
///
/// Returns [`ProtocolError::RevealInvalid`] when the key does not produce
/// a well-formed signed sample whose timestamp matches the sealed index.
pub fn open_entry(sealed: &SealedPoa, reveal: &KeyReveal) -> Result<SignedSample, ProtocolError> {
    let entry = sealed
        .entries
        .get(reveal.index)
        .ok_or(ProtocolError::Malformed("reveal index out of range"))?;
    let plain = chacha20_decrypt(&reveal.key, &entry.nonce, &entry.ciphertext);
    let sample = SignedSample::from_bytes(&plain).map_err(|_| ProtocolError::RevealInvalid)?;
    if (sample.sample().time().secs() - entry.time.secs()).abs() > 1e-9 {
        return Err(ProtocolError::RevealInvalid);
    }
    Ok(sample)
}

/// Auditor-side accusation check over a sealed PoA: opens the two
/// bracketing entries with the operator's revealed keys, verifies the TEE
/// signatures, and decides whether the pair exonerates the drone from the
/// accused zone at the accused time.
///
/// # Errors
///
/// Returns [`ProtocolError::TimeNotCovered`] when the accusation time is
/// outside the sealed trace, [`ProtocolError::RevealInvalid`] for keys
/// that do not open the right entries, and signature errors bubble up as
/// upheld accusations (a bad signature is not exoneration).
pub fn check_sealed_accusation(
    sealed: &SealedPoa,
    reveals: &[KeyReveal],
    tee_public: &RsaPublicKey,
    zone: &NoFlyZone,
    accused_time: Timestamp,
    v_max: Speed,
) -> Result<AccusationOutcome, ProtocolError> {
    let (i, j) = sealed
        .bracketing_indices(accused_time)
        .ok_or(ProtocolError::TimeNotCovered)?;
    let find = |idx: usize| reveals.iter().find(|r| r.index == idx);
    let (Some(ri), Some(rj)) = (find(i), find(j)) else {
        return Err(ProtocolError::Malformed(
            "missing reveal for bracketing pair",
        ));
    };
    let si = open_entry(sealed, ri)?;
    let sj = open_entry(sealed, rj)?;
    if si.verify(tee_public).is_err() || sj.verify(tee_public).is_err() {
        return Ok(AccusationOutcome::Upheld {
            reason: "revealed samples carry invalid TEE signatures".into(),
        });
    }
    if zone.contains(&si.sample().point()) || zone.contains(&sj.sample().point()) {
        return Ok(AccusationOutcome::Upheld {
            reason: "revealed sample lies inside the zone".into(),
        });
    }
    let ok = alidrone_geo::sufficiency::pair_is_sufficient(si.sample(), sj.sample(), zone, v_max);
    if ok {
        Ok(AccusationOutcome::Refuted)
    } else {
        Ok(AccusationOutcome::Upheld {
            reason: "revealed pair does not prove alibi for the zone".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{origin, signed_samples, tee_key};
    use alidrone_crypto::rng::XorShift64;
    use alidrone_geo::{Distance, FAA_MAX_SPEED};

    fn far_zone() -> NoFlyZone {
        NoFlyZone::new(
            origin().destination(0.0, Distance::from_km(50.0)),
            Distance::from_meters(100.0),
        )
    }

    fn sealed_fixture(n: usize) -> (PrivatePoa, ProofOfAlibi) {
        let poa = ProofOfAlibi::from_entries(signed_samples(n));
        let mut rng = XorShift64::seed_from_u64(61);
        (PrivatePoa::seal(&poa, &mut rng), poa)
    }

    #[test]
    fn seal_produces_one_entry_per_sample() {
        let (private, poa) = sealed_fixture(6);
        assert_eq!(private.sealed().len(), poa.len());
        assert!(!private.sealed().is_empty());
    }

    #[test]
    fn ciphertexts_hide_plaintext() {
        let (private, poa) = sealed_fixture(3);
        for (entry, signed) in private.sealed().entries().iter().zip(poa.entries()) {
            assert_ne!(entry.ciphertext, signed.to_bytes());
        }
    }

    #[test]
    fn open_entry_round_trip() {
        let (private, poa) = sealed_fixture(4);
        let reveals = private.reveal(&[2]).unwrap();
        let opened = open_entry(private.sealed(), &reveals[0]).unwrap();
        assert_eq!(&opened, &poa.entries()[2]);
        opened.verify(tee_key().public_key()).unwrap();
    }

    #[test]
    fn wrong_key_fails_to_open() {
        let (private, _) = sealed_fixture(4);
        let bad = KeyReveal {
            index: 1,
            key: [0xEE; 32],
        };
        assert!(open_entry(private.sealed(), &bad).is_err());
    }

    #[test]
    fn reveal_out_of_range_rejected() {
        let (private, _) = sealed_fixture(2);
        assert!(private.reveal(&[5]).is_err());
    }

    #[test]
    fn bracketing_indices_found() {
        let (private, _) = sealed_fixture(5); // samples at t = 0..4 s
        assert_eq!(
            private
                .sealed()
                .bracketing_indices(Timestamp::from_secs(2.5)),
            Some((2, 3))
        );
        assert_eq!(
            private
                .sealed()
                .bracketing_indices(Timestamp::from_secs(99.0)),
            None
        );
    }

    #[test]
    fn accusation_refuted_with_partial_disclosure() {
        let (private, _) = sealed_fixture(6);
        let (i, j) = private
            .sealed()
            .bracketing_indices(Timestamp::from_secs(2.4))
            .unwrap();
        let reveals = private.reveal(&[i, j]).unwrap();
        let outcome = check_sealed_accusation(
            private.sealed(),
            &reveals,
            tee_key().public_key(),
            &far_zone(),
            Timestamp::from_secs(2.4),
            FAA_MAX_SPEED,
        )
        .unwrap();
        assert_eq!(outcome, AccusationOutcome::Refuted);
    }

    #[test]
    fn accusation_upheld_near_zone() {
        // Zone so close the revealed pair cannot exonerate.
        let zone = NoFlyZone::new(
            origin().destination(0.0, Distance::from_meters(20.0)),
            Distance::from_meters(10.0),
        );
        let (private, _) = sealed_fixture(6);
        let reveals = private.reveal(&[1, 2]).unwrap();
        let outcome = check_sealed_accusation(
            private.sealed(),
            &reveals,
            tee_key().public_key(),
            &zone,
            Timestamp::from_secs(1.5),
            FAA_MAX_SPEED,
        )
        .unwrap();
        assert!(matches!(outcome, AccusationOutcome::Upheld { .. }));
    }

    #[test]
    fn uncovered_time_is_error() {
        let (private, _) = sealed_fixture(3);
        let reveals = private.reveal(&[0, 1]).unwrap();
        assert_eq!(
            check_sealed_accusation(
                private.sealed(),
                &reveals,
                tee_key().public_key(),
                &far_zone(),
                Timestamp::from_secs(1_000.0),
                FAA_MAX_SPEED,
            ),
            Err(ProtocolError::TimeNotCovered)
        );
    }

    #[test]
    fn missing_reveal_is_error() {
        let (private, _) = sealed_fixture(5);
        let reveals = private.reveal(&[0]).unwrap(); // only one of the pair
        assert!(check_sealed_accusation(
            private.sealed(),
            &reveals,
            tee_key().public_key(),
            &far_zone(),
            Timestamp::from_secs(0.5),
            FAA_MAX_SPEED,
        )
        .is_err());
    }

    #[test]
    fn auditor_learns_only_revealed_fragment() {
        // Structural privacy check: the sealed view exposes timestamps
        // but no coordinates; only revealed indices decrypt.
        let (private, poa) = sealed_fixture(6);
        let reveals = private.reveal(&[2, 3]).unwrap();
        for idx in [0usize, 1, 4, 5] {
            // Without a reveal for idx, the auditor cannot produce the
            // plaintext: decrypting with another index's key fails.
            let wrong = KeyReveal {
                index: idx,
                key: reveals[0].key,
            };
            match open_entry(private.sealed(), &wrong) {
                Err(_) => {}
                Ok(opened) => assert_ne!(&opened, &poa.entries()[idx]),
            }
        }
    }
}
