//! The Proof-of-Alibi container.

use std::fmt;

use alidrone_crypto::rng::Rng;
use alidrone_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use alidrone_geo::sufficiency::GapWindow;
use alidrone_geo::{GpsSample, Timestamp};
use alidrone_tee::{SignedGapMarker, SignedSample};

use crate::ProtocolError;

/// A Proof-of-Alibi: the ordered sequence of TEE-signed GPS samples
/// recorded during one flight (paper §IV-C2):
///
/// ```text
/// PoA = {(S₀, Sig(S₀, T⁻)), (S₁, Sig(S₁, T⁻)), …}
/// ```
///
/// A degraded-mode flight additionally carries *signed gap markers*:
/// TEE-attested declarations of GPS-outage windows. Gaps are admissions
/// against interest — they can only ever weaken the alibi — so the
/// container keeps them alongside the samples and the auditor accounts
/// for them during sufficiency checking.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProofOfAlibi {
    entries: Vec<SignedSample>,
    gaps: Vec<SignedGapMarker>,
}

impl ProofOfAlibi {
    /// Creates an empty PoA.
    pub fn new() -> Self {
        ProofOfAlibi::default()
    }

    /// Creates a PoA from recorded entries.
    pub fn from_entries(entries: Vec<SignedSample>) -> Self {
        ProofOfAlibi {
            entries,
            gaps: Vec::new(),
        }
    }

    /// Appends an authenticated sample.
    pub fn push(&mut self, entry: SignedSample) {
        self.entries.push(entry);
    }

    /// Appends a signed GPS-outage declaration (degraded mode).
    pub fn push_gap(&mut self, gap: SignedGapMarker) {
        self.gaps.push(gap);
    }

    /// The signed entries.
    pub fn entries(&self) -> &[SignedSample] {
        &self.entries
    }

    /// The signed gap markers declared for this flight.
    pub fn gaps(&self) -> &[SignedGapMarker] {
        &self.gaps
    }

    /// The declared outage windows, stripped of signatures — the shape
    /// [`alidrone_geo::sufficiency::check_alibi_with_gaps`] consumes.
    pub fn gap_windows(&self) -> Vec<GapWindow> {
        self.gaps
            .iter()
            .map(|g| GapWindow {
                start: g.start(),
                end: g.end(),
            })
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The *alibi* — the bare GPS trace without signatures (paper §IV-C1:
    /// `alibi := {S₀, S₁, …, Sₙ}`).
    pub fn alibi(&self) -> Vec<GpsSample> {
        self.entries.iter().map(|e| *e.sample()).collect()
    }

    /// Timestamp of the first sample, if any.
    pub fn first_time(&self) -> Option<Timestamp> {
        self.entries.first().map(|e| e.sample().time())
    }

    /// Timestamp of the last sample, if any.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.entries.last().map(|e| e.sample().time())
    }

    /// Serialises to a length-prefixed wire format:
    /// `[count: u32 BE] ([entry_len: u32 BE][entry])*`, followed — only
    /// when gaps were declared — by a gap section
    /// `[gap_count: u32 BE] ([gap_len: u32 BE][gap])*`. Gapless PoAs
    /// keep the original byte layout, so pre-gap images parse unchanged.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for e in &self.entries {
            let b = e.to_bytes();
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(&b);
        }
        if !self.gaps.is_empty() {
            out.extend_from_slice(&(self.gaps.len() as u32).to_be_bytes());
            for g in &self.gaps {
                let b = g.to_bytes();
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(&b);
            }
        }
        out
    }

    /// Parses the wire format of [`to_bytes`](Self::to_bytes). An image
    /// that ends right after the sample entries (the pre-gap layout)
    /// parses as a PoA with no declared gaps.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] on truncation or invalid
    /// entries.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut cursor = bytes;
        let count = read_u32(&mut cursor).ok_or(ProtocolError::Malformed("poa count"))? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let len =
                read_u32(&mut cursor).ok_or(ProtocolError::Malformed("poa entry length"))? as usize;
            if cursor.len() < len {
                return Err(ProtocolError::Malformed("poa entry truncated"));
            }
            let (entry, rest) = cursor.split_at(len);
            entries.push(
                SignedSample::from_bytes(entry)
                    .map_err(|_| ProtocolError::Malformed("poa entry"))?,
            );
            cursor = rest;
        }
        let mut gaps = Vec::new();
        if !cursor.is_empty() {
            let gap_count =
                read_u32(&mut cursor).ok_or(ProtocolError::Malformed("poa gap count"))? as usize;
            gaps.reserve(gap_count.min(1 << 16));
            for _ in 0..gap_count {
                let len = read_u32(&mut cursor).ok_or(ProtocolError::Malformed("poa gap length"))?
                    as usize;
                if cursor.len() < len {
                    return Err(ProtocolError::Malformed("poa gap truncated"));
                }
                let (gap, rest) = cursor.split_at(len);
                gaps.push(
                    SignedGapMarker::from_bytes(gap)
                        .map_err(|_| ProtocolError::Malformed("poa gap"))?,
                );
                cursor = rest;
            }
        }
        if !cursor.is_empty() {
            return Err(ProtocolError::Malformed("poa trailing bytes"));
        }
        Ok(ProofOfAlibi { entries, gaps })
    }

    /// Encrypts the PoA for the auditor with `RSAES_PKCS1_v1_5` under the
    /// auditor's public encryption key (paper §IV-C2: the Adapter "is
    /// responsible for encrypting the PoA with the public encryption key
    /// of the AliDrone Server", §V-C).
    ///
    /// RSA encrypts at most `k − 11` bytes per operation, so the wire
    /// bytes are chunked; each chunk becomes one RSA ciphertext block.
    ///
    /// # Errors
    ///
    /// Propagates RSA failures (e.g. an invalid key).
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        auditor_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<EncryptedPoa, ProtocolError> {
        let plain = self.to_bytes();
        let chunk_size = auditor_key.modulus_len() - 11;
        let mut blocks = Vec::with_capacity(plain.len() / chunk_size + 1);
        for chunk in plain.chunks(chunk_size) {
            blocks.push(auditor_key.encrypt(chunk, rng)?);
        }
        Ok(EncryptedPoa { blocks })
    }
}

impl fmt::Display for ProofOfAlibi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PoA[{} samples", self.len())?;
        if let (Some(a), Some(b)) = (self.first_time(), self.last_time()) {
            write!(f, ", {} → {}", a, b)?;
        }
        if !self.gaps.is_empty() {
            write!(f, ", {} gaps", self.gaps.len())?;
        }
        write!(f, "]")
    }
}

impl FromIterator<SignedSample> for ProofOfAlibi {
    fn from_iter<I: IntoIterator<Item = SignedSample>>(iter: I) -> Self {
        ProofOfAlibi {
            entries: iter.into_iter().collect(),
            gaps: Vec::new(),
        }
    }
}

impl Extend<SignedSample> for ProofOfAlibi {
    fn extend<I: IntoIterator<Item = SignedSample>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

fn read_u32(cursor: &mut &[u8]) -> Option<u32> {
    if cursor.len() < 4 {
        return None;
    }
    let (head, rest) = cursor.split_at(4);
    *cursor = rest;
    Some(u32::from_be_bytes(head.try_into().expect("4 bytes")))
}

/// A PoA encrypted for the auditor: a sequence of RSAES-PKCS1-v1.5
/// blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptedPoa {
    blocks: Vec<Vec<u8>>,
}

impl EncryptedPoa {
    /// Reassembles an encrypted PoA from raw ciphertext blocks (e.g.
    /// received over the wire).
    pub fn from_blocks(blocks: Vec<Vec<u8>>) -> Self {
        EncryptedPoa { blocks }
    }

    /// The raw ciphertext blocks.
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Number of RSA blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total ciphertext size in bytes.
    pub fn ciphertext_len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Decrypts with the auditor's private key and reassembles the PoA.
    ///
    /// # Errors
    ///
    /// Returns a crypto error for undecryptable blocks or a
    /// [`ProtocolError::Malformed`] for a corrupted payload.
    pub fn decrypt(&self, auditor_key: &RsaPrivateKey) -> Result<ProofOfAlibi, ProtocolError> {
        let mut plain = Vec::new();
        for block in &self.blocks {
            plain.extend_from_slice(&auditor_key.decrypt(block)?);
        }
        ProofOfAlibi::from_bytes(&plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{auditor_key, signed_samples};

    #[test]
    fn wire_round_trip() {
        let poa = ProofOfAlibi::from_entries(signed_samples(5));
        let rt = ProofOfAlibi::from_bytes(&poa.to_bytes()).unwrap();
        assert_eq!(poa, rt);
    }

    #[test]
    fn empty_poa_round_trip() {
        let poa = ProofOfAlibi::new();
        assert!(poa.is_empty());
        assert!(poa.first_time().is_none());
        let rt = ProofOfAlibi::from_bytes(&poa.to_bytes()).unwrap();
        assert!(rt.is_empty());
    }

    #[test]
    fn from_bytes_rejects_truncation_and_garbage() {
        let poa = ProofOfAlibi::from_entries(signed_samples(3));
        let bytes = poa.to_bytes();
        assert!(ProofOfAlibi::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(ProofOfAlibi::from_bytes(&[1, 2, 3]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ProofOfAlibi::from_bytes(&trailing).is_err());
    }

    #[test]
    fn gap_markers_round_trip_and_stay_backward_compatible() {
        use crate::test_support::signed_gap;
        let mut poa = ProofOfAlibi::from_entries(signed_samples(3));
        poa.push_gap(signed_gap(0.5, 1.5));
        poa.push_gap(signed_gap(1.8, 2.0));
        let rt = ProofOfAlibi::from_bytes(&poa.to_bytes()).unwrap();
        assert_eq!(rt, poa);
        assert_eq!(rt.gaps().len(), 2);
        let windows = rt.gap_windows();
        assert_eq!(windows[0].start.secs(), 0.5);
        assert_eq!(windows[1].end.secs(), 2.0);

        // A gapless PoA keeps the pre-gap byte layout, and those bytes
        // still parse (no gap section required).
        let gapless = ProofOfAlibi::from_entries(signed_samples(3));
        let old_layout = gapless.to_bytes();
        assert!(poa.to_bytes().len() > old_layout.len());
        let parsed = ProofOfAlibi::from_bytes(&old_layout).unwrap();
        assert!(parsed.gaps().is_empty());
    }

    #[test]
    fn truncated_gap_section_is_malformed() {
        use crate::test_support::signed_gap;
        let mut poa = ProofOfAlibi::from_entries(signed_samples(2));
        poa.push_gap(signed_gap(0.2, 0.9));
        let bytes = poa.to_bytes();
        assert!(ProofOfAlibi::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn alibi_strips_signatures() {
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        let alibi = poa.alibi();
        assert_eq!(alibi.len(), 4);
        assert!(alidrone_geo::check_monotonic(&alibi).is_ok());
    }

    #[test]
    fn times_are_first_and_last() {
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        assert!(poa.first_time().unwrap() < poa.last_time().unwrap());
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        use alidrone_crypto::rng::XorShift64;
        let mut rng = XorShift64::seed_from_u64(5);
        let poa = ProofOfAlibi::from_entries(signed_samples(6));
        let enc = poa.encrypt(auditor_key().public_key(), &mut rng).unwrap();
        assert!(enc.block_count() > 1, "multi-block for realistic sizes");
        assert!(enc.ciphertext_len() >= poa.to_bytes().len());
        let dec = enc.decrypt(auditor_key()).unwrap();
        assert_eq!(dec, poa);
    }

    #[test]
    fn decrypt_with_wrong_key_fails() {
        use alidrone_crypto::rng::XorShift64;
        let mut rng = XorShift64::seed_from_u64(6);
        let poa = ProofOfAlibi::from_entries(signed_samples(2));
        let enc = poa.encrypt(auditor_key().public_key(), &mut rng).unwrap();
        let other = alidrone_crypto::rsa::RsaPrivateKey::generate(512, &mut rng);
        assert!(enc.decrypt(&other).is_err());
    }

    #[test]
    fn collect_and_extend() {
        let mut poa: ProofOfAlibi = signed_samples(2).into_iter().collect();
        poa.extend(signed_samples(2));
        assert_eq!(poa.len(), 4);
    }
}
