//! Primary/follower replication for the auditor's write-ahead journal.
//!
//! One auditor process is both the scalability ceiling and a single
//! point of failure: a crash loses availability until restart, and the
//! paper's trust story assumes the auditor is always there to verify
//! PoAs. This module replicates the journal (see [`crate::journal`])
//! from a primary to N followers by **log shipping**: after every
//! durable mutation the primary reads the raw frame bytes each
//! follower still lacks ([`Journal::read_from`]) and ships them over a
//! [`ReplLink`]; the follower appends them to its own backend and acks
//! the logical offset it is now durable up to. Follower images are
//! therefore *byte-identical prefixes* of the primary's journal, so a
//! promoted follower recovers with the ordinary
//! [`Auditor::recover`](crate::Auditor::recover) replay — no second
//! on-disk format, no translation layer.
//!
//! # Ack policies
//!
//! [`ReplicationPolicy`] decides what "durable" means to callers:
//!
//! * **`Async`** — ship best-effort; failures only show up in the lag
//!   metrics. A primary crash can lose the records appended since the
//!   slowest follower's last ack.
//! * **`Quorum(k)`** — a mutation (and therefore the verdict response
//!   built on it) is acknowledged only once ≥ `k` followers hold it.
//!   A failed quorum surfaces as a typed error to the caller *before*
//!   any response is sent, so nothing acknowledged can be lost by a
//!   fail-stop primary crash.
//!
//! # Epoch fencing
//!
//! Every shipped frame carries the primary's leadership epoch.
//! Promotion fences the old epoch: the designated follower's epoch is
//! bumped first, the recovered auditor appends a
//! [`Record::Epoch`](crate::journal::Record::Epoch)
//! boundary (shipped to the remaining followers immediately), and from
//! then on any frame from the deposed primary is answered with
//! [`ReplAck::Stale`] — surfaced to it as [`ReplError::StaleEpoch`],
//! which fails its appends under *any* policy. With `Quorum(1)` this
//! guarantees zero acked-then-lost records for fail-stop crashes; a
//! *symmetric* partition (old primary still serving) additionally
//! needs a majority quorum, the classic overlap argument — see
//! DESIGN.md §13.
//!
//! # Catch-up
//!
//! A follower that fell behind (partition, slow disk) resumes
//! incrementally: the primary remembers its last acked offset and
//! ships the missing tail. When compaction has rebased the journal
//! past that offset, [`Journal::read_from`] yields
//! [`ShipSource::Rebased`] and the follower receives the whole fresh
//! image as a [`ReplFrame::Snapshot`] (replace, then tail as usual) —
//! byte-identical to a follower that never missed a frame.

use std::fmt;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use alidrone_obs::{Counter, Gauge, Histogram, Level, Obs};

use crate::audit::AuditChain;
use crate::journal::{crc32, Journal, MemBackend, Record};
use crate::journal::{
    JournalError, ShipSource, StorageBackend, FRAME_OVERHEAD, HEADER_LEN, JOURNAL_MAGIC,
    MAX_RECORD_LEN,
};
use crate::wire::codec::{Reader, Writer};
use crate::{Auditor, AuditorConfig, ProtocolError};
use alidrone_crypto::rsa::RsaPrivateKey;

/// Cap on a single replication frame body (a full journal image plus
/// framing slack) — guards the TCP decoder against hostile lengths.
const MAX_REPL_FRAME: usize = 64 * 1024 * 1024;

/// Ship/ack round-trip timeout for the TCP link.
const TCP_REPL_TIMEOUT: Duration = Duration::from_secs(5);

// ------------------------------------------------------------------ errors

/// Typed replication failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// The follower has seen a newer leadership epoch: this primary was
    /// deposed and must stop acknowledging writes.
    StaleEpoch {
        /// The epoch this primary shipped under.
        epoch: u64,
        /// The newer epoch the follower reported.
        current: u64,
    },
    /// Fewer followers acked than the `Quorum(k)` policy requires.
    QuorumLost {
        /// Followers durable through the current end.
        acked: usize,
        /// The policy's requirement.
        needed: usize,
    },
    /// The link to a follower failed (connect, send, or ack receive).
    Transport(String),
    /// A storage failure on either side of the link.
    Storage(String),
    /// A frame or ack that does not decode, or a shipping exchange that
    /// violated the offset protocol.
    Malformed(&'static str),
    /// The shipped bytes diverge from the audit chain this follower
    /// recomputed (see [`crate::audit`]): a corrupt frame, an
    /// undecodable record, or a Merkle checkpoint whose root does not
    /// match the history before it. The follower refused the frame
    /// *before* persisting anything — a forked primary cannot spread
    /// its fork.
    ChainDivergence {
        /// Audit tree size at which the divergence was detected.
        size: u64,
        /// What diverged.
        reason: &'static str,
    },
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::StaleEpoch { epoch, current } => {
                write!(f, "stale epoch {epoch}: follower is at epoch {current}")
            }
            ReplError::QuorumLost { acked, needed } => {
                write!(
                    f,
                    "replication quorum lost: {acked} of {needed} followers acked"
                )
            }
            ReplError::Transport(what) => write!(f, "replication transport failure: {what}"),
            ReplError::Storage(what) => write!(f, "replication storage failure: {what}"),
            ReplError::Malformed(what) => write!(f, "malformed replication frame: {what}"),
            ReplError::ChainDivergence { size, reason } => {
                write!(f, "audit chain divergence at tree size {size}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplError {}

impl From<JournalError> for ReplError {
    fn from(e: JournalError) -> Self {
        ReplError::Storage(e.to_string())
    }
}

impl From<ReplError> for ProtocolError {
    fn from(e: ReplError) -> Self {
        match e {
            ReplError::ChainDivergence { size, .. } => ProtocolError::AuditDivergence { size },
            other => ProtocolError::Storage(other.to_string()),
        }
    }
}

// ------------------------------------------------------------------ policy

/// When a durable mutation may be acknowledged to its caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationPolicy {
    /// Ship best-effort; never block or fail a response on follower
    /// durability. A primary crash loses at most the shipping lag.
    Async,
    /// Require at least this many followers durable through the record
    /// before acknowledging. `Quorum(0)` degenerates to `Async`
    /// semantics with synchronous shipping.
    Quorum(usize),
}

/// Shape of a replicated auditor cluster (see [`Cluster`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Follower count.
    pub followers: usize,
    /// Ack policy gating primary responses.
    pub policy: ReplicationPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            followers: 2,
            policy: ReplicationPolicy::Quorum(1),
        }
    }
}

// ------------------------------------------------------------------ frames

/// One message on the replication stream, primary → follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// Raw journal frame bytes starting at logical `offset` (the
    /// follower's acked end). Appending them reproduces the primary's
    /// image byte-for-byte.
    Append {
        /// Shipping primary's leadership epoch.
        epoch: u64,
        /// Logical offset of the first shipped byte.
        offset: u64,
        /// Raw journal bytes (whole frames; never a torn tail).
        bytes: Vec<u8>,
    },
    /// A whole journal image re-based at `base` — shipped when
    /// compaction reclaimed the follower's offset, or to force a
    /// divergent follower back onto this primary's log. The follower
    /// replaces its image wholesale.
    Snapshot {
        /// Shipping primary's leadership epoch.
        epoch: u64,
        /// Logical offset of the image's first byte.
        base: u64,
        /// The full journal image (header + frames).
        image: Vec<u8>,
    },
}

const FRAME_TAG_APPEND: u8 = 1;
const FRAME_TAG_SNAPSHOT: u8 = 2;

impl ReplFrame {
    /// The epoch this frame was shipped under.
    pub fn epoch(&self) -> u64 {
        match self {
            ReplFrame::Append { epoch, .. } | ReplFrame::Snapshot { epoch, .. } => *epoch,
        }
    }

    /// Encodes the frame body (length framing is the stream's job).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ReplFrame::Append {
                epoch,
                offset,
                bytes,
            } => {
                w.put_u8(FRAME_TAG_APPEND)
                    .put_u64(*epoch)
                    .put_u64(*offset)
                    .put_bytes(bytes);
            }
            ReplFrame::Snapshot { epoch, base, image } => {
                w.put_u8(FRAME_TAG_SNAPSHOT)
                    .put_u64(*epoch)
                    .put_u64(*base)
                    .put_bytes(image);
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`ReplError::Malformed`] for unknown tags or truncated bodies.
    pub fn from_bytes(bytes: &[u8]) -> Result<ReplFrame, ReplError> {
        let mut r = Reader::new(bytes);
        let mal = |_| ReplError::Malformed("truncated replication frame");
        let tag = r.get_u8().map_err(mal)?;
        let frame = match tag {
            FRAME_TAG_APPEND => ReplFrame::Append {
                epoch: r.get_u64().map_err(mal)?,
                offset: r.get_u64().map_err(mal)?,
                bytes: r.get_bytes().map_err(mal)?.to_vec(),
            },
            FRAME_TAG_SNAPSHOT => ReplFrame::Snapshot {
                epoch: r.get_u64().map_err(mal)?,
                base: r.get_u64().map_err(mal)?,
                image: r.get_bytes().map_err(mal)?.to_vec(),
            },
            _ => return Err(ReplError::Malformed("unknown replication frame tag")),
        };
        r.finish()
            .map_err(|_| ReplError::Malformed("trailing replication frame bytes"))?;
        Ok(frame)
    }
}

/// The follower's answer to one shipped frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplAck {
    /// Durable through `offset`; ship from there next.
    Acked {
        /// The follower's new durable end.
        offset: u64,
    },
    /// The shipped offset does not match the follower's end; re-ship
    /// from `expected` (the follower's actual durable end).
    Mismatch {
        /// Where the follower actually is.
        expected: u64,
    },
    /// The frame's epoch is older than one the follower has already
    /// seen: the shipper was deposed.
    Stale {
        /// The follower's current epoch.
        current: u64,
    },
}

const ACK_TAG_ACKED: u8 = 1;
const ACK_TAG_MISMATCH: u8 = 2;
const ACK_TAG_STALE: u8 = 3;

impl ReplAck {
    /// Encodes the ack body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ReplAck::Acked { offset } => w.put_u8(ACK_TAG_ACKED).put_u64(*offset),
            ReplAck::Mismatch { expected } => w.put_u8(ACK_TAG_MISMATCH).put_u64(*expected),
            ReplAck::Stale { current } => w.put_u8(ACK_TAG_STALE).put_u64(*current),
        };
        w.into_bytes()
    }

    /// Decodes an ack body.
    ///
    /// # Errors
    ///
    /// [`ReplError::Malformed`] for unknown tags or truncated bodies.
    pub fn from_bytes(bytes: &[u8]) -> Result<ReplAck, ReplError> {
        let mut r = Reader::new(bytes);
        let mal = |_| ReplError::Malformed("truncated replication ack");
        let tag = r.get_u8().map_err(mal)?;
        let ack = match tag {
            ACK_TAG_ACKED => ReplAck::Acked {
                offset: r.get_u64().map_err(mal)?,
            },
            ACK_TAG_MISMATCH => ReplAck::Mismatch {
                expected: r.get_u64().map_err(mal)?,
            },
            ACK_TAG_STALE => ReplAck::Stale {
                current: r.get_u64().map_err(mal)?,
            },
            _ => return Err(ReplError::Malformed("unknown replication ack tag")),
        };
        r.finish()
            .map_err(|_| ReplError::Malformed("trailing replication ack bytes"))?;
        Ok(ack)
    }
}

/// Records in a raw journal byte slice (whole frames only; a leading
/// file header is skipped). Used for the records-lag gauge.
fn count_records(mut slice: &[u8]) -> u64 {
    if slice.len() >= HEADER_LEN && slice[..4] == JOURNAL_MAGIC.to_be_bytes() {
        slice = &slice[HEADER_LEN..];
    }
    let mut n = 0;
    while slice.len() >= FRAME_OVERHEAD {
        let len = u32::from_be_bytes([slice[0], slice[1], slice[2], slice[3]]) as usize;
        if len == 0 || slice.len() < FRAME_OVERHEAD + len {
            break;
        }
        n += 1;
        slice = &slice[FRAME_OVERHEAD + len..];
    }
    n
}

/// Recomputes the audit chain across the raw journal bytes of one
/// shipped frame (a leading file header is skipped; a `Snapshot` record
/// re-seeds the chain from its audit section). Returns the extended
/// chain on success; any structural damage, CRC mismatch, or Merkle
/// checkpoint that contradicts the recomputed history is a
/// [`ReplError::ChainDivergence`].
fn verify_shipped(chain: &AuditChain, bytes: &[u8]) -> Result<AuditChain, ReplError> {
    let mut chain = chain.clone();
    let mut slice = bytes;
    if slice.len() >= HEADER_LEN && slice[..4] == JOURNAL_MAGIC.to_be_bytes() {
        slice = &slice[HEADER_LEN..];
    }
    while !slice.is_empty() {
        let at = chain.size();
        let diverged = |reason| ReplError::ChainDivergence { size: at, reason };
        if slice.len() < FRAME_OVERHEAD {
            return Err(diverged("torn shipped frame"));
        }
        let len = u32::from_be_bytes([slice[0], slice[1], slice[2], slice[3]]) as usize;
        if len == 0 || len > MAX_RECORD_LEN || slice.len() < FRAME_OVERHEAD + len {
            return Err(diverged("torn shipped frame"));
        }
        let crc = u32::from_be_bytes([slice[4], slice[5], slice[6], slice[7]]);
        let payload = &slice[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        if crc32(payload) != crc {
            return Err(diverged("frame crc mismatch"));
        }
        let record = Record::from_payload(payload).map_err(|_| diverged("undecodable record"))?;
        match &record {
            Record::AuditCheckpoint { size, root, .. } => {
                chain
                    .check_checkpoint(*size, root)
                    .map_err(|_| ReplError::ChainDivergence {
                        size: *size,
                        reason: "checkpoint root contradicts recomputed history",
                    })?;
            }
            Record::Snapshot(snap) => {
                let (restored, _) = crate::auditor::snapshot_audit_state(snap)
                    .map_err(|_| diverged("snapshot audit section undecodable"))?;
                chain = restored;
            }
            _ if record.is_audited() => chain.append(payload),
            _ => {}
        }
        slice = &slice[FRAME_OVERHEAD + len..];
    }
    Ok(chain)
}

// ---------------------------------------------------------------- follower

/// A replication follower: holds a byte-identical prefix of the
/// primary's journal in its own backend and acks durable offsets.
///
/// All methods take `&self`; applies serialize on an internal lock.
pub struct Follower {
    backend: Arc<dyn StorageBackend>,
    /// Serializes applies (one shipping primary at a time is the
    /// protocol, but a fencing race must still be atomic).
    lock: Mutex<()>,
    /// Newest leadership epoch seen (frames below it are stale).
    epoch: AtomicU64,
    /// Logical offset of the held image's first byte.
    base: AtomicU64,
    /// Logical durable end (== acked offset).
    end: AtomicU64,
    /// Whole records held (metrics/assertions only).
    records: AtomicU64,
    /// The audit chain recomputed over every applied record (see
    /// [`crate::audit`]): the follower's independent view of history,
    /// checked against shipped Merkle checkpoints *before* persisting.
    chain: Mutex<AuditChain>,
    /// `repl.chain_divergence` — bumped each time a shipped frame is
    /// refused for diverging from the recomputed chain.
    divergence: Arc<Counter>,
}

impl Follower {
    /// A fresh follower over an empty backend. Its first ack mismatch
    /// teaches the primary to ship from the start.
    pub fn new(backend: Arc<dyn StorageBackend>) -> Follower {
        Follower::with_obs(backend, &Obs::noop())
    }

    /// A follower whose chain-divergence refusals are counted on `obs`
    /// (`repl.chain_divergence`).
    pub fn with_obs(backend: Arc<dyn StorageBackend>, obs: &Obs) -> Follower {
        Follower {
            backend,
            lock: Mutex::new(()),
            epoch: AtomicU64::new(0),
            base: AtomicU64::new(0),
            end: AtomicU64::new(0),
            records: AtomicU64::new(0),
            chain: Mutex::new(AuditChain::new()),
            divergence: obs.counter("repl.chain_divergence"),
        }
    }

    /// Applies one shipped frame, returning the protocol answer.
    ///
    /// # Errors
    ///
    /// [`ReplError::Storage`] when the local backend fails — the
    /// offset stays put, so the primary's retry is safe.
    pub fn apply(&self, frame: &ReplFrame) -> Result<ReplAck, ReplError> {
        // Poisoned lock: applies are single writes on the backend's own
        // serialization; a panicked peer thread cannot have torn state.
        let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        let current = self.epoch.load(Ordering::Acquire);
        if frame.epoch() < current {
            return Ok(ReplAck::Stale { current });
        }
        self.epoch.store(frame.epoch(), Ordering::Release);
        match frame {
            ReplFrame::Append { offset, bytes, .. } => {
                let end = self.end.load(Ordering::Acquire);
                if *offset != end {
                    return Ok(ReplAck::Mismatch { expected: end });
                }
                if !bytes.is_empty() {
                    // Verify-before-persist: recompute the audit chain
                    // over the shipped records and refuse divergent
                    // history before a single byte lands in the backend.
                    let mut chain = self.chain.lock().unwrap_or_else(|p| p.into_inner());
                    let verified = verify_shipped(&chain, bytes).inspect_err(|_| {
                        self.divergence.inc();
                    })?;
                    self.backend
                        .append(bytes)
                        .map_err(|e| ReplError::Storage(e.to_string()))?;
                    *chain = verified;
                    self.end.store(end + bytes.len() as u64, Ordering::Release);
                    self.records
                        .fetch_add(count_records(bytes), Ordering::Relaxed);
                }
                Ok(ReplAck::Acked {
                    offset: self.end.load(Ordering::Acquire),
                })
            }
            ReplFrame::Snapshot { base, image, .. } => {
                let mut chain = self.chain.lock().unwrap_or_else(|p| p.into_inner());
                let verified = verify_shipped(&AuditChain::new(), image).inspect_err(|_| {
                    self.divergence.inc();
                })?;
                self.backend
                    .replace(image)
                    .map_err(|e| ReplError::Storage(e.to_string()))?;
                *chain = verified;
                self.base.store(*base, Ordering::Release);
                let end = base + image.len() as u64;
                self.end.store(end, Ordering::Release);
                self.records.store(count_records(image), Ordering::Relaxed);
                Ok(ReplAck::Acked { offset: end })
            }
        }
    }

    /// Raises this follower's epoch floor without touching its log —
    /// the first step of promotion, so a deposed primary's in-flight
    /// frames land as [`ReplAck::Stale`] instead of appending.
    pub fn fence(&self, epoch: u64) {
        let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The newest epoch this follower has seen.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The logical offset this follower is durable through.
    pub fn acked_offset(&self) -> u64 {
        self.end.load(Ordering::Acquire)
    }

    /// Whole records held.
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// The journal image held (for byte-identity assertions).
    ///
    /// # Errors
    ///
    /// Backend read failures.
    pub fn image(&self) -> Result<Vec<u8>, ReplError> {
        self.backend.read().map_err(ReplError::from)
    }

    /// The backend — hand it to
    /// [`Auditor::recover`](crate::Auditor::recover) to promote this
    /// follower.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }
}

impl fmt::Debug for Follower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Follower")
            .field("epoch", &self.current_epoch())
            .field("acked_offset", &self.acked_offset())
            .finish_non_exhaustive()
    }
}

// ------------------------------------------------------------------- links

/// Transport carrying [`ReplFrame`]s to one follower and its
/// [`ReplAck`]s back. Implementations must be usable from the
/// primary's request threads (`Send + Sync`).
pub trait ReplLink: Send + Sync {
    /// Ships one frame and waits for the follower's answer.
    ///
    /// # Errors
    ///
    /// [`ReplError::Transport`] for lost exchanges (shipping is
    /// offset-checked on the follower, so retries are idempotent),
    /// [`ReplError::Storage`] when the follower's backend failed.
    fn ship(&self, frame: &ReplFrame) -> Result<ReplAck, ReplError>;
}

/// A link to a follower in the same process (tests, examples, and the
/// simulated fleet).
#[derive(Debug, Clone)]
pub struct InProcessLink {
    follower: Arc<Follower>,
}

impl InProcessLink {
    /// A link to `follower`.
    pub fn new(follower: Arc<Follower>) -> InProcessLink {
        InProcessLink { follower }
    }
}

impl ReplLink for InProcessLink {
    fn ship(&self, frame: &ReplFrame) -> Result<ReplAck, ReplError> {
        self.follower.apply(frame)
    }
}

/// Writes one length-framed message (`len u32 BE | body`).
fn write_framed(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one length-framed message, bounding hostile lengths.
fn read_framed(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_REPL_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "replication frame too large",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// A length-framed TCP link to a remote follower (see
/// [`FollowerServer`]). Lazily connects; one reconnect-and-resend per
/// ship (safe: applies are offset-checked).
pub struct TcpReplLink {
    addr: SocketAddr,
    stream: Mutex<Option<TcpStream>>,
}

impl TcpReplLink {
    /// A link to the follower serving at `addr`.
    ///
    /// # Errors
    ///
    /// [`ReplError::Transport`] when `addr` does not resolve.
    pub fn new(addr: impl ToSocketAddrs) -> Result<TcpReplLink, ReplError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ReplError::Transport(e.to_string()))?
            .next()
            .ok_or(ReplError::Malformed(
                "replication address resolved to nothing",
            ))?;
        Ok(TcpReplLink {
            addr,
            stream: Mutex::new(None),
        })
    }

    fn exchange(&self, stream: &mut TcpStream, body: &[u8]) -> std::io::Result<Vec<u8>> {
        write_framed(stream, body)?;
        read_framed(stream)
    }
}

impl ReplLink for TcpReplLink {
    fn ship(&self, frame: &ReplFrame) -> Result<ReplAck, ReplError> {
        let body = frame.to_bytes();
        let mut guard = self.stream.lock().unwrap_or_else(|p| p.into_inner());
        let transport = |e: std::io::Error| ReplError::Transport(e.to_string());
        for attempt in 0..2 {
            if guard.is_none() {
                let stream = TcpStream::connect(self.addr).map_err(transport)?;
                stream
                    .set_read_timeout(Some(TCP_REPL_TIMEOUT))
                    .map_err(transport)?;
                stream
                    .set_write_timeout(Some(TCP_REPL_TIMEOUT))
                    .map_err(transport)?;
                *guard = Some(stream);
            }
            // Invariant: the slot was just filled above when empty.
            let stream = guard.as_mut().expect("stream present after connect");
            match self.exchange(stream, &body) {
                Ok(reply) => return ReplAck::from_bytes(&reply),
                Err(e) => {
                    // A dead connection from an earlier exchange: drop
                    // it and resend once on a fresh one.
                    *guard = None;
                    if attempt == 1 {
                        return Err(transport(e));
                    }
                }
            }
        }
        unreachable!("loop returns on success or second failure")
    }
}

impl fmt::Debug for TcpReplLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpReplLink")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Serves one [`Follower`] over length-framed TCP: reads frames,
/// applies them, writes acks. One connection at a time — a journal has
/// exactly one shipping primary; a new primary's connection is picked
/// up when the old one closes.
pub struct FollowerServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FollowerServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `follower` on a
    /// background thread until [`shutdown`](Self::shutdown).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(addr: impl ToSocketAddrs, follower: Arc<Follower>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let _ = stream.set_read_timeout(Some(TCP_REPL_TIMEOUT));
                let _ = stream.set_write_timeout(Some(TCP_REPL_TIMEOUT));
                loop {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(body) = read_framed(&mut stream) else {
                        break;
                    };
                    let Ok(frame) = ReplFrame::from_bytes(&body) else {
                        break;
                    };
                    // A local storage failure closes the connection:
                    // the primary surfaces it as a transport error and
                    // its retry finds the follower's true offset.
                    let Ok(ack) = follower.apply(&frame) else {
                        break;
                    };
                    if write_framed(&mut stream, &ack.to_bytes()).is_err() {
                        break;
                    }
                }
            }
        });
        Ok(FollowerServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (connect a [`TcpReplLink`] here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept (and any idle read) with a no-op
        // connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FollowerServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl fmt::Debug for FollowerServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FollowerServer")
            .field("addr", &self.addr)
            .finish()
    }
}

// --------------------------------------------------------------- replicator

struct Peer {
    name: String,
    link: Box<dyn ReplLink>,
    acked: AtomicU64,
    /// True once this replicator itself received an `Acked` from the
    /// peer. Only then do `Mismatch` offsets refer to bytes *we*
    /// shipped; before that the follower's physical prefix may
    /// diverge byte-for-byte from our journal (an adopted follower
    /// after failover), making offset-based resume unsafe.
    trusted: AtomicBool,
    /// The next frame must be a full-image replace (first-contact
    /// mismatch or a divergent suffix).
    force_snapshot: AtomicBool,
    acked_gauge: Arc<Gauge>,
    ship_failures: Arc<Counter>,
}

/// The primary-side log shipper: tracks per-follower acked offsets,
/// ships missing tails (or re-based snapshots) after every journal
/// append, and enforces the [`ReplicationPolicy`].
///
/// Metrics (all on the construction `Obs`): `repl.lag_bytes` /
/// `repl.lag_records` gauges (distance of the *slowest* follower from
/// the durable end — both exactly 0 on a quiesced, in-sync cluster),
/// `repl.acked_offset.<follower>` per-follower gauges, a `repl.epoch`
/// gauge, and `repl.ship_failures.<follower>`, `repl.records_shipped`,
/// `repl.snapshots_shipped` counters.
pub struct Replicator {
    obs: Obs,
    policy: ReplicationPolicy,
    peers: Vec<Peer>,
    epoch: AtomicU64,
    /// Non-zero once any follower reported a newer epoch: this primary
    /// is deposed and every subsequent replicate fails fast.
    fenced_by: AtomicU64,
    epoch_gauge: Arc<Gauge>,
    lag_bytes: Arc<Gauge>,
    lag_records: Arc<Gauge>,
    records_shipped: Arc<Counter>,
    snapshots_shipped: Arc<Counter>,
}

impl Replicator {
    /// A shipper with no followers yet; add them with
    /// [`with_follower`](Self::with_follower), then install on the
    /// primary via
    /// [`Auditor::set_replicator`](crate::Auditor::set_replicator).
    pub fn new(obs: &Obs, policy: ReplicationPolicy) -> Replicator {
        Replicator {
            obs: obs.clone(),
            policy,
            peers: Vec::new(),
            epoch: AtomicU64::new(0),
            fenced_by: AtomicU64::new(0),
            epoch_gauge: obs.gauge("repl.epoch"),
            lag_bytes: obs.gauge("repl.lag_bytes"),
            lag_records: obs.gauge("repl.lag_records"),
            records_shipped: obs.counter("repl.records_shipped"),
            snapshots_shipped: obs.counter("repl.snapshots_shipped"),
        }
    }

    /// Adds a follower reached over `link`. `name` labels its metrics
    /// (`repl.acked_offset.<name>`, `repl.ship_failures.<name>`).
    #[must_use]
    pub fn with_follower(mut self, name: impl Into<String>, link: impl ReplLink + 'static) -> Self {
        let name = name.into();
        self.peers.push(Peer {
            acked_gauge: self.obs.gauge(&format!("repl.acked_offset.{name}")),
            ship_failures: self.obs.counter(&format!("repl.ship_failures.{name}")),
            name,
            link: Box::new(link),
            acked: AtomicU64::new(0),
            trusted: AtomicBool::new(false),
            force_snapshot: AtomicBool::new(false),
        });
        self
    }

    /// Follower count.
    pub fn follower_count(&self) -> usize {
        self.peers.len()
    }

    /// `true` when the policy gates responses on follower acks.
    pub fn requires_quorum(&self) -> bool {
        matches!(self.policy, ReplicationPolicy::Quorum(k) if k > 0)
    }

    /// The policy in force.
    pub fn policy(&self) -> ReplicationPolicy {
        self.policy
    }

    /// Sets the epoch shipped with every frame (promotion bumps it via
    /// [`Auditor::begin_epoch`](crate::Auditor::begin_epoch)).
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.epoch_gauge
            .set(self.epoch.load(Ordering::Acquire) as i64);
    }

    /// The epoch frames are currently shipped under.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Per-follower acked offsets, in follower order.
    pub fn acked_offsets(&self) -> Vec<(String, u64)> {
        self.peers
            .iter()
            .map(|p| (p.name.clone(), p.acked.load(Ordering::Acquire)))
            .collect()
    }

    /// Brings every follower up to the journal's durable end and
    /// applies the ack policy. Called by the auditor after each
    /// journal append (under the journal slot lock, so frames ship in
    /// append order).
    ///
    /// # Errors
    ///
    /// [`ReplError::StaleEpoch`] under *any* policy once a follower
    /// reports a newer epoch (this primary is deposed);
    /// [`ReplError::QuorumLost`] when a `Quorum(k)` policy cannot be
    /// met. `Async` shipping failures are absorbed into the lag
    /// metrics.
    pub fn replicate(&self, journal: &Journal) -> Result<(), ReplError> {
        let fenced = self.fenced_by.load(Ordering::Acquire);
        if fenced != 0 {
            return Err(ReplError::StaleEpoch {
                epoch: self.epoch(),
                current: fenced,
            });
        }
        let epoch = self.epoch();
        let mut in_sync = 0usize;
        let mut stale: Option<ReplError> = None;
        for peer in &self.peers {
            match self.sync_peer(peer, journal, epoch) {
                Ok(()) => in_sync += 1,
                Err(e @ ReplError::StaleEpoch { current, .. }) => {
                    self.fenced_by.fetch_max(current, Ordering::AcqRel);
                    stale.get_or_insert(e);
                }
                Err(e) => {
                    peer.ship_failures.inc();
                    let (name, detail) = (peer.name.clone(), e.to_string());
                    self.obs.emit(Level::Warn, "repl", "ship failed", |f| {
                        f.field("follower", name.as_str());
                        f.field("error", detail.as_str());
                    });
                }
            }
        }
        self.update_lag(journal);
        if let Some(e) = stale {
            // Fencing overrides the policy: a deposed primary must not
            // acknowledge anything, even under Async.
            return Err(e);
        }
        match self.policy {
            ReplicationPolicy::Async => Ok(()),
            ReplicationPolicy::Quorum(needed) => {
                if in_sync >= needed {
                    Ok(())
                } else {
                    Err(ReplError::QuorumLost {
                        acked: in_sync,
                        needed,
                    })
                }
            }
        }
    }

    /// The whole journal as a replace-everything snapshot frame — the
    /// recovery hammer for followers whose bytes we cannot trust.
    fn full_image_frame(&self, journal: &Journal, epoch: u64) -> Result<ReplFrame, ReplError> {
        let base = journal.base_offset();
        let image = match journal.read_from(base)? {
            ShipSource::Tail(bytes) => bytes,
            ShipSource::Rebased { image, .. } => image,
        };
        self.snapshots_shipped.inc();
        Ok(ReplFrame::Snapshot { epoch, base, image })
    }

    /// Ships whatever `peer` is missing. Converges in a bounded number
    /// of rounds: an `Acked` advances, a `Mismatch` from a follower we
    /// previously acked teaches us its true offset, and anything we
    /// cannot resume byte-for-byte (first-contact mismatch, divergent
    /// suffix, compacted-past offset) replaces wholesale.
    fn sync_peer(&self, peer: &Peer, journal: &Journal, epoch: u64) -> Result<(), ReplError> {
        for _ in 0..4 {
            let from = peer.acked.load(Ordering::Acquire);
            if from == journal.end_offset() && !peer.force_snapshot.load(Ordering::Acquire) {
                return Ok(());
            }
            let frame = if peer.force_snapshot.load(Ordering::Acquire) {
                self.full_image_frame(journal, epoch)?
            } else {
                match journal.read_from(from) {
                    Ok(ShipSource::Tail(bytes)) if bytes.is_empty() => return Ok(()),
                    Ok(ShipSource::Tail(bytes)) => {
                        self.records_shipped.add(count_records(&bytes));
                        ReplFrame::Append {
                            epoch,
                            offset: from,
                            bytes,
                        }
                    }
                    Ok(ShipSource::Rebased { base, image }) => {
                        self.snapshots_shipped.inc();
                        ReplFrame::Snapshot { epoch, base, image }
                    }
                    // The follower claims an offset past our durable
                    // end — a divergent suffix written under a dead
                    // epoch. Force it back onto this log.
                    Err(JournalError::Malformed(_)) => self.full_image_frame(journal, epoch)?,
                    Err(e) => return Err(e.into()),
                }
            };
            match peer.link.ship(&frame)? {
                ReplAck::Acked { offset } => {
                    peer.acked.store(offset, Ordering::Release);
                    peer.acked_gauge.set(offset as i64);
                    peer.trusted.store(true, Ordering::Release);
                    peer.force_snapshot.store(false, Ordering::Release);
                }
                ReplAck::Mismatch { expected } => {
                    if peer.trusted.load(Ordering::Acquire) {
                        peer.acked.store(expected, Ordering::Release);
                        peer.acked_gauge.set(expected as i64);
                    } else {
                        // First contact with a follower whose history
                        // this replicator never shipped (adopted after
                        // a failover): its physical prefix may diverge
                        // from ours even when the logical state agrees,
                        // so resuming appends at its claimed offset
                        // could interleave two journals. Replace.
                        peer.force_snapshot.store(true, Ordering::Release);
                    }
                }
                ReplAck::Stale { current } => {
                    return Err(ReplError::StaleEpoch { epoch, current });
                }
            }
        }
        Err(ReplError::Malformed("follower offset failed to converge"))
    }

    /// Re-derives the lag gauges from the slowest follower: distance
    /// from the durable end in bytes, and whole records inside that
    /// distance. Exactly 0/0 once every follower acked the end.
    fn update_lag(&self, journal: &Journal) {
        let end = journal.end_offset();
        let min_acked = self
            .peers
            .iter()
            .map(|p| p.acked.load(Ordering::Acquire))
            .min()
            .unwrap_or(end);
        let lag_bytes = end.saturating_sub(min_acked);
        self.lag_bytes.set(lag_bytes as i64);
        let lag_records = if lag_bytes == 0 {
            0
        } else {
            match journal.read_from(min_acked) {
                Ok(ShipSource::Tail(bytes)) => count_records(&bytes),
                Ok(ShipSource::Rebased { image, .. }) => count_records(&image),
                Err(_) => 0,
            }
        };
        self.lag_records.set(lag_records as i64);
    }
}

impl fmt::Debug for Replicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replicator")
            .field("policy", &self.policy)
            .field("followers", &self.peers.len())
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

// ------------------------------------------------------------------ cluster

/// An in-process replicated auditor cluster: one primary shipping to
/// [`ClusterConfig::followers`] followers over [`InProcessLink`]s,
/// with deterministic kill-and-promote failover. The simulated fleet,
/// the chaos campaign, and `examples/failover.rs` all drive this; a
/// deployment would wire the same pieces over [`TcpReplLink`] /
/// [`FollowerServer`].
pub struct Cluster {
    auditor_config: AuditorConfig,
    key: RsaPrivateKey,
    obs: Obs,
    policy: ReplicationPolicy,
    primary: Arc<Auditor>,
    followers: Vec<(String, Arc<Follower>)>,
    failover_duration: Arc<Histogram>,
    failovers: Arc<Counter>,
}

impl Cluster {
    /// Boots a cluster at epoch 1: a journaled primary (fresh
    /// [`MemBackend`]) with a [`Replicator`] over fresh followers.
    ///
    /// # Errors
    ///
    /// Journal/replication failures while recording the first epoch.
    pub fn new(
        config: ClusterConfig,
        auditor_config: AuditorConfig,
        key: RsaPrivateKey,
        obs: &Obs,
    ) -> Result<Cluster, ProtocolError> {
        let followers: Vec<(String, Arc<Follower>)> = (0..config.followers)
            .map(|i| {
                let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
                (format!("f{i}"), Arc::new(Follower::new(backend)))
            })
            .collect();
        let (primary, _) = Auditor::recover_with_obs(
            Arc::new(MemBackend::new()),
            auditor_config.clone(),
            key.clone(),
            obs,
        )?;
        let mut cluster = Cluster {
            auditor_config,
            key,
            obs: obs.clone(),
            policy: config.policy,
            primary: Arc::new(primary),
            followers,
            failover_duration: obs.histogram("repl.failover_duration_us"),
            failovers: obs.counter("repl.failovers"),
        };
        cluster.arm_primary(1)?;
        Ok(cluster)
    }

    /// Installs a fresh replicator over the current follower set on
    /// the current primary and begins `epoch`.
    fn arm_primary(&mut self, epoch: u64) -> Result<(), ProtocolError> {
        // A quorum larger than the surviving follower set could never
        // be met; clamp so a shrinking cluster degrades instead of
        // bricking. Quorum(0) still ships synchronously.
        let policy = match self.policy {
            ReplicationPolicy::Quorum(k) => ReplicationPolicy::Quorum(k.min(self.followers.len())),
            ReplicationPolicy::Async => ReplicationPolicy::Async,
        };
        let mut replicator = Replicator::new(&self.obs, policy);
        for (name, follower) in &self.followers {
            replicator =
                replicator.with_follower(name.clone(), InProcessLink::new(follower.clone()));
        }
        self.primary.set_replicator(Arc::new(replicator));
        self.primary.begin_epoch(epoch)
    }

    /// The serving primary.
    pub fn primary(&self) -> &Arc<Auditor> {
        &self.primary
    }

    /// The follower set, as `(name, follower)` pairs.
    pub fn followers(&self) -> &[(String, Arc<Follower>)] {
        &self.followers
    }

    /// The current leadership epoch.
    pub fn epoch(&self) -> u64 {
        self.primary.current_epoch()
    }

    /// Kills the primary (fail-stop: its journal and unshipped tail
    /// die with it) and promotes the follower at `idx`: fence first,
    /// then finish replaying the shipped log via
    /// [`Auditor::recover`](crate::Auditor::recover), then begin the
    /// next epoch — fencing the deposed primary at every surviving
    /// follower. Records `repl.failover_duration_us` / `repl.failovers`.
    ///
    /// # Errors
    ///
    /// Recovery failures (damaged follower image) or replication
    /// failures while recording the new epoch.
    pub fn kill_and_promote(&mut self, idx: usize) -> Result<Arc<Auditor>, ProtocolError> {
        let t0 = std::time::Instant::now();
        let old_epoch = self.primary.current_epoch();
        let new_epoch = old_epoch + 1;
        let (name, promoted_follower) = self.followers.remove(idx);
        // Fence before replay: from this instant the deposed primary's
        // frames land as Stale, not as appends.
        promoted_follower.fence(new_epoch);
        let (promoted, report) = Auditor::recover_with_obs(
            Arc::clone(promoted_follower.backend()),
            self.auditor_config.clone(),
            self.key.clone(),
            &self.obs,
        )?;
        let (records, follower_name) = (report.records_applied, name);
        self.obs
            .emit(Level::Info, "repl", "follower promoted", |f| {
                f.field("follower", follower_name.as_str());
                f.field("records_replayed", records);
                f.field("epoch", new_epoch);
            });
        self.primary = Arc::new(promoted);
        self.arm_primary(new_epoch)?;
        self.failover_duration
            .record_micros(t0.elapsed().as_micros() as u64);
        self.failovers.inc();
        Ok(Arc::clone(&self.primary))
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("epoch", &self.epoch())
            .field("followers", &self.followers.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Record;
    use crate::test_support::auditor_key;
    use alidrone_geo::{Distance, GeoPoint, NoFlyZone};

    fn zone(i: u64) -> NoFlyZone {
        NoFlyZone::new(
            GeoPoint::new(40.0 + i as f64 * 0.01, -88.0).unwrap(),
            Distance::from_meters(100.0),
        )
    }

    fn journal_with(n: u64) -> (Journal, Arc<MemBackend>) {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        for i in 0..n {
            journal
                .append_record(&Record::RegisterZone {
                    id: i,
                    lat_deg: 40.0,
                    lon_deg: -88.0,
                    radius_m: 100.0,
                })
                .unwrap();
        }
        (journal, backend)
    }

    #[test]
    fn frames_and_acks_round_trip() {
        let frames = [
            ReplFrame::Append {
                epoch: 3,
                offset: 42,
                bytes: vec![1, 2, 3],
            },
            ReplFrame::Snapshot {
                epoch: 9,
                base: 1000,
                image: vec![0xAB; 17],
            },
        ];
        for f in &frames {
            assert_eq!(&ReplFrame::from_bytes(&f.to_bytes()).unwrap(), f);
        }
        let acks = [
            ReplAck::Acked { offset: 7 },
            ReplAck::Mismatch { expected: 0 },
            ReplAck::Stale { current: 4 },
        ];
        for a in &acks {
            assert_eq!(&ReplAck::from_bytes(&a.to_bytes()).unwrap(), a);
        }
        assert!(matches!(
            ReplFrame::from_bytes(&[99]),
            Err(ReplError::Malformed(_))
        ));
        assert!(matches!(
            ReplAck::from_bytes(&[]),
            Err(ReplError::Malformed(_))
        ));
    }

    #[test]
    fn shipping_keeps_follower_byte_identical() {
        let (journal, backend) = journal_with(0);
        let follower = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        let obs = Obs::noop();
        let replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1))
            .with_follower("f0", InProcessLink::new(follower.clone()));
        for i in 0..5 {
            journal.append_record(&Record::Epoch(i + 1)).unwrap();
            replicator.replicate(&journal).unwrap();
        }
        assert_eq!(follower.image().unwrap(), backend.bytes());
        assert_eq!(follower.acked_offset(), journal.end_offset());
        assert_eq!(follower.record_count(), 5);
        // Quiesced reconciliation: lag gauges read exactly zero.
        let snap = obs.snapshot();
        assert_eq!(snap.gauges["repl.lag_bytes"], 0);
        assert_eq!(snap.gauges["repl.lag_records"], 0);
        assert_eq!(
            snap.gauges["repl.acked_offset.f0"],
            journal.end_offset() as i64
        );
    }

    /// A link that can be partitioned (ships fail with a transport
    /// error while down).
    struct GateLink {
        inner: InProcessLink,
        up: AtomicBool,
    }

    impl GateLink {
        fn new(follower: Arc<Follower>) -> Arc<GateLink> {
            Arc::new(GateLink {
                inner: InProcessLink::new(follower),
                up: AtomicBool::new(true),
            })
        }
    }

    impl ReplLink for Arc<GateLink> {
        fn ship(&self, frame: &ReplFrame) -> Result<ReplAck, ReplError> {
            if !self.up.load(Ordering::Acquire) {
                return Err(ReplError::Transport("partitioned".into()));
            }
            self.inner.ship(frame)
        }
    }

    #[test]
    fn quorum_fails_typed_when_no_follower_reachable() {
        let (journal, _) = journal_with(1);
        let follower = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        let gate = GateLink::new(follower);
        let obs = Obs::noop();
        let replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1))
            .with_follower("f0", Arc::clone(&gate));
        gate.up.store(false, Ordering::Release);
        assert_eq!(
            replicator.replicate(&journal),
            Err(ReplError::QuorumLost {
                acked: 0,
                needed: 1
            })
        );
        // Lag is visible while the follower is dark.
        assert!(obs.snapshot().gauges["repl.lag_bytes"] > 0);
        // Heal: the same replicate converges and clears the lag.
        gate.up.store(true, Ordering::Release);
        replicator.replicate(&journal).unwrap();
        assert_eq!(obs.snapshot().gauges["repl.lag_bytes"], 0);
    }

    #[test]
    fn async_absorbs_partition_into_lag_metrics() {
        let (journal, _) = journal_with(2);
        let follower = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        let gate = GateLink::new(follower);
        let obs = Obs::noop();
        let replicator =
            Replicator::new(&obs, ReplicationPolicy::Async).with_follower("f0", Arc::clone(&gate));
        gate.up.store(false, Ordering::Release);
        replicator.replicate(&journal).unwrap();
        let snap = obs.snapshot();
        assert!(snap.gauges["repl.lag_bytes"] > 0);
        assert_eq!(snap.gauges["repl.lag_records"], 2);
        assert_eq!(snap.counter("repl.ship_failures.f0"), 1);
    }

    /// Satellite: compaction racing catch-up. A follower that missed a
    /// compaction resumes via snapshot-then-tail and ends byte-identical
    /// to one that never missed a frame.
    #[test]
    fn compaction_racing_catch_up_resumes_snapshot_then_tail() {
        let obs = Obs::noop();
        let key = auditor_key().clone();

        // Reference: a follower that sees every frame, uninterrupted.
        let steady = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        // Laggard: partitioned across the compaction.
        let laggard = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        let gate = GateLink::new(laggard.clone());

        let (auditor, _) = Auditor::recover_with_obs(
            Arc::new(MemBackend::new()),
            AuditorConfig::default(),
            key,
            &obs,
        )
        .unwrap();
        let replicator = Replicator::new(&obs, ReplicationPolicy::Async)
            .with_follower("steady", InProcessLink::new(steady.clone()))
            .with_follower("laggard", Arc::clone(&gate));
        auditor.set_replicator(Arc::new(replicator));
        auditor.begin_epoch(1).unwrap();

        auditor.register_zone(zone(0));
        auditor.register_zone(zone(1));
        // Partition the laggard, then mutate and compact past its
        // acked offset.
        gate.up.store(false, Ordering::Release);
        auditor.register_zone(zone(2));
        auditor.compact_journal().unwrap();
        auditor.register_zone(zone(3));
        assert_ne!(laggard.image().unwrap(), steady.image().unwrap());
        // Heal: the next mutation ships snapshot-then-tail.
        gate.up.store(true, Ordering::Release);
        auditor.register_zone(zone(4));
        assert_eq!(laggard.image().unwrap(), steady.image().unwrap());
        assert_eq!(laggard.acked_offset(), steady.acked_offset());

        // Both recover to the same auditor state as the primary.
        let (from_laggard, _) = Auditor::recover(
            Arc::clone(laggard.backend()),
            AuditorConfig::default(),
            auditor_key().clone(),
        )
        .unwrap();
        assert_eq!(from_laggard.snapshot(), auditor.snapshot());
        assert_eq!(from_laggard.current_epoch(), 1);
    }

    #[test]
    fn promotion_fences_the_deposed_primary() {
        let obs = Obs::noop();
        let mut cluster = Cluster::new(
            ClusterConfig::default(),
            AuditorConfig::default(),
            auditor_key().clone(),
            &obs,
        )
        .unwrap();
        let old_primary = Arc::clone(cluster.primary());
        old_primary.register_zone_durable(zone(0)).unwrap();
        assert_eq!(cluster.epoch(), 1);

        let promoted = cluster.kill_and_promote(0).unwrap();
        assert_eq!(promoted.current_epoch(), 2);
        // The promoted follower replayed the shipped log: the zone is
        // there and verdict-serving state matches the old primary's.
        assert_eq!(promoted.snapshot(), old_primary.snapshot());

        // The deposed primary is fenced at every surviving follower:
        // its next durable mutation fails with the typed stale-epoch
        // error (surfaced as ProtocolError::Storage at the API).
        let err = old_primary.register_zone_durable(zone(1)).unwrap_err();
        assert!(
            err.to_string().contains("stale epoch"),
            "expected stale-epoch fencing, got: {err}"
        );
        // ...and stays fenced on retry, even though the first failure
        // already marked the replicator.
        let err = old_primary.register_zone_durable(zone(2)).unwrap_err();
        assert!(err.to_string().contains("stale epoch"), "{err}");

        // The new primary keeps serving durable mutations.
        promoted.register_zone_durable(zone(3)).unwrap();
        assert_eq!(obs.snapshot().gauges["repl.epoch"], 2);
        assert_eq!(obs.snapshot().counter("repl.failovers"), 1);
    }

    #[test]
    fn divergent_follower_is_forced_back_with_a_replace() {
        // A follower holding MORE bytes than the primary's durable end
        // (a suffix from a dead epoch) must be truncated wholesale.
        let (journal, _) = journal_with(2);
        let follower = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        // Hand-feed the follower a longer, divergent (but well-formed —
        // the chain check refuses garbage outright) image from a dead
        // epoch's primary.
        let (longer, longer_backend) = journal_with(4);
        assert!(longer.end_offset() > journal.end_offset());
        follower
            .apply(&ReplFrame::Snapshot {
                epoch: 1,
                base: 0,
                image: longer_backend.bytes(),
            })
            .unwrap();
        assert!(follower.acked_offset() > journal.end_offset());
        let obs = Obs::noop();
        let replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1))
            .with_follower("f0", InProcessLink::new(follower.clone()));
        replicator.set_epoch(1);
        // The replicator learns the true (too-far) offset via Mismatch
        // on its first Append, then force-replaces.
        replicator.replicate(&journal).unwrap();
        assert_eq!(follower.acked_offset(), journal.end_offset());
        let ShipSource::Tail(image) = journal.read_from(journal.base_offset()).unwrap() else {
            panic!("tail expected");
        };
        assert_eq!(follower.image().unwrap(), image);
    }

    #[test]
    fn follower_refuses_tampered_shipped_frames() {
        // A journal of three zone records plus a correct Merkle
        // checkpoint ships cleanly...
        let (journal, backend) = journal_with(3);
        let mut chain = AuditChain::new();
        for i in 0..3 {
            chain.append(
                &Record::RegisterZone {
                    id: i,
                    lat_deg: 40.0,
                    lon_deg: -88.0,
                    radius_m: 100.0,
                }
                .to_payload(),
            );
        }
        journal
            .append_record(&Record::AuditCheckpoint {
                size: 3,
                root: chain.root(),
                sig: vec![7; 4],
                tee_sig: vec![],
            })
            .unwrap();
        let clean = backend.bytes();
        let honest = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        honest
            .apply(&ReplFrame::Append {
                epoch: 1,
                offset: 0,
                bytes: clean.clone(),
            })
            .unwrap();
        assert_eq!(honest.record_count(), 4);

        // ...but a CRC-intact payload rewrite of the second record is
        // refused at the checkpoint, persisting nothing.
        let mut tampered = clean.clone();
        let first_len = u32::from_be_bytes([
            tampered[HEADER_LEN],
            tampered[HEADER_LEN + 1],
            tampered[HEADER_LEN + 2],
            tampered[HEADER_LEN + 3],
        ]) as usize;
        let second = HEADER_LEN + FRAME_OVERHEAD + first_len;
        let len = u32::from_be_bytes([
            tampered[second],
            tampered[second + 1],
            tampered[second + 2],
            tampered[second + 3],
        ]) as usize;
        let payload_at = second + FRAME_OVERHEAD;
        tampered[payload_at + 2] ^= 0x01; // rewrite the zone id
        let fixed = crc32(&tampered[payload_at..payload_at + len]);
        tampered[second + 4..second + 8].copy_from_slice(&fixed.to_be_bytes());
        let obs = Obs::noop();
        let victim = Arc::new(Follower::with_obs(Arc::new(MemBackend::new()), &obs));
        let err = victim
            .apply(&ReplFrame::Append {
                epoch: 1,
                offset: 0,
                bytes: tampered.clone(),
            })
            .unwrap_err();
        assert!(
            matches!(err, ReplError::ChainDivergence { size: 3, .. }),
            "{err}"
        );
        assert_eq!(victim.acked_offset(), 0, "nothing persisted");
        assert_eq!(victim.image().unwrap(), Vec::<u8>::new());
        assert_eq!(obs.snapshot().counter("repl.chain_divergence"), 1);

        // A plain bit-flip (stale CRC) is refused too, before decode.
        let mut flipped = clean.clone();
        flipped[payload_at + 2] ^= 0x01;
        let err = victim
            .apply(&ReplFrame::Append {
                epoch: 1,
                offset: 0,
                bytes: flipped,
            })
            .unwrap_err();
        assert!(matches!(err, ReplError::ChainDivergence { .. }), "{err}");

        // The same tampering inside a full Snapshot image is refused.
        let err = victim
            .apply(&ReplFrame::Snapshot {
                epoch: 1,
                base: 0,
                image: tampered,
            })
            .unwrap_err();
        assert!(matches!(err, ReplError::ChainDivergence { .. }), "{err}");
        assert_eq!(obs.snapshot().counter("repl.chain_divergence"), 3);
    }

    #[test]
    fn tcp_link_ships_applies_and_survives_reconnect() {
        let follower = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        let server = FollowerServer::bind("127.0.0.1:0", follower.clone()).unwrap();
        let link = TcpReplLink::new(server.local_addr()).unwrap();
        let (journal, backend) = journal_with(3);
        let obs = Obs::noop();
        let replicator =
            Replicator::new(&obs, ReplicationPolicy::Quorum(1)).with_follower("tcp0", link);
        replicator.replicate(&journal).unwrap();
        assert_eq!(follower.image().unwrap(), backend.bytes());
        // Drop the connection server-side by shipping a frame the
        // decoder rejects... simplest: open a second replicate after
        // the server recycled the connection naturally.
        replicator.replicate(&journal).unwrap();
        server.shutdown();
    }

    #[test]
    fn quorum_of_two_needs_two_followers() {
        let (journal, _) = journal_with(1);
        let f0 = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        let f1 = Arc::new(Follower::new(Arc::new(MemBackend::new())));
        let gate = GateLink::new(f1);
        let obs = Obs::noop();
        let replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(2))
            .with_follower("f0", InProcessLink::new(f0))
            .with_follower("f1", Arc::clone(&gate));
        gate.up.store(false, Ordering::Release);
        assert_eq!(
            replicator.replicate(&journal),
            Err(ReplError::QuorumLost {
                acked: 1,
                needed: 2
            })
        );
        gate.up.store(true, Ordering::Release);
        replicator.replicate(&journal).unwrap();
    }
}
