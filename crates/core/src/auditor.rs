//! The Auditor: registration authority, zone directory, and PoA verifier.
//!
//! # Concurrency
//!
//! Every protocol entry point takes `&self`: the auditor's mutable state
//! is sharded behind interior locks (one lock per registry — drones,
//! zones, anti-replay nonces, the PoA log — plus atomic id counters), so
//! one instance can serve many threads through an
//! `Arc<AuditorServer>`. The expensive work — RSA signature checks,
//! reachable-set geometry — runs on snapshots taken under a read lock
//! and released before verification starts, so verification never
//! serialises behind registrations.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use alidrone_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use alidrone_geo::polygon::PolygonZone;
use alidrone_geo::sufficiency::{check_alibi_with_gaps, Criterion, SufficiencyReport};
use alidrone_geo::{
    check_monotonic, Duration, GeoError, NoFlyZone, ReachableSet, Speed, Timestamp, ZoneSet,
    FAA_MAX_SPEED,
};
use alidrone_obs::{Counter, Histogram, Level, Obs};
use alidrone_tee::SignedSample;

use crate::audit::{AuditChain, ConsistencyProof, InclusionProof, SignedTreeHead};
use crate::cache::{LruCache, VerifyResultCache};
use crate::identity::Registration;
use crate::journal::{Journal, JournalError, Record, StorageBackend};
use crate::messages::{Accusation, PoaSubmission, Submission, ZoneQuery, ZoneResponse};
use crate::poa::{EncryptedPoa, ProofOfAlibi};
use crate::repl::Replicator;
use crate::verify_pool::VerifyPool;
use crate::{DroneId, ProtocolError, ZoneId};

/// Fan a submission's entry checks across the [`VerifyPool`] only at or
/// above this size — below it, per-batch coordination costs more than
/// the parallelism recovers.
const MIN_BATCH: usize = 4;

/// Bound on cached signature-check outcomes (~100 B each).
const VERIFY_CACHE_CAP: usize = 4096;

/// Bound on cached zone-query rectangle results.
const ZONE_QUERY_CACHE_CAP: usize = 256;

/// Auditor policy knobs.
#[derive(Debug, Clone)]
pub struct AuditorConfig {
    /// Maximum drone speed used in reachable-set computations (the FAA's
    /// 100 mph by default, paper §IV-C1).
    pub v_max: Speed,
    /// Which sufficiency criterion verification applies.
    pub criterion: Criterion,
    /// How far the first/last sample may sit inside the claimed flight
    /// window before coverage is rejected.
    pub coverage_slack: Duration,
    /// How long verified PoAs are retained for later accusations
    /// ("a couple of days", paper §IV-C2).
    pub retention: Duration,
    /// How many audited records may accumulate between journaled
    /// Merkle checkpoints (see [`crate::audit`]). Smaller intervals
    /// tighten tamper detection at the cost of one RSA signature and
    /// one extra journal record per interval.
    pub checkpoint_interval: u64,
}

impl Default for AuditorConfig {
    fn default() -> Self {
        AuditorConfig {
            v_max: FAA_MAX_SPEED,
            criterion: Criterion::Paper,
            coverage_slack: Duration::from_secs(5.0),
            retention: Duration::from_secs(2.0 * 86_400.0),
            checkpoint_interval: 32,
        }
    }
}

/// Produces a TEE countersignature over a checkpoint's signing bytes,
/// or `None` when the enclave declines (see
/// [`Auditor::set_checkpoint_countersigner`]).
pub type CheckpointCountersigner = Arc<dyn Fn(&[u8]) -> Option<Vec<u8>> + Send + Sync>;

/// The tamper-evidence state (see [`crate::audit`]): the hash chain and
/// Merkle leaves over every audited record, plus proof-serving caches.
struct AuditState {
    chain: AuditChain,
    /// Tree size covered by the last journaled checkpoint.
    checkpoint_size: u64,
    /// Latest `PoaStored` leaf index per drone — what an inclusion
    /// proof for "my verdict" resolves to.
    verdict_leaves: BTreeMap<DroneId, u64>,
    /// Cached signed tree head (signing is RSA-priced); invalidated by
    /// size on every chain append.
    sth: Option<SignedTreeHead>,
}

impl AuditState {
    fn empty() -> AuditState {
        AuditState {
            chain: AuditChain::new(),
            checkpoint_size: 0,
            verdict_leaves: BTreeMap::new(),
            sth: None,
        }
    }
}

/// The verification outcome for one submission.
///
/// `Compliant` is the only accepting verdict; everything else causes the
/// auditor to "initiate punitive measures" (paper §III-A) — including an
/// insufficient alibi, because the burden of proof rests on the operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The PoA proves the drone stayed clear of every registered zone for
    /// the whole flight window.
    Compliant,
    /// The PoA contains no samples.
    EmptyPoa,
    /// A TEE signature failed to verify (forged or tampered sample).
    BadSignature {
        /// Index of the first offending entry.
        index: usize,
    },
    /// Sample timestamps are not strictly increasing (spliced or replayed
    /// trace).
    NonMonotonic {
        /// Index of the first offending entry.
        index: usize,
    },
    /// The PoA does not cover the claimed flight window.
    WindowNotCovered,
    /// A consecutive pair implies motion faster than `v_max` — the trace
    /// is physically impossible, indicating forgery or relay splicing.
    ImpossibleTrace {
        /// Index of the first sample of the impossible pair.
        index: usize,
    },
    /// A signed sample lies inside a registered zone — a proven privacy
    /// violation.
    InsideZone {
        /// Index of the offending sample.
        index: usize,
        /// Which zone was entered.
        zone: ZoneId,
    },
    /// Some pair fails eq. (1): the drone *may* have entered a zone.
    InsufficientAlibi {
        /// Indices of the first samples of the insufficient pairs.
        pair_indices: Vec<usize>,
    },
    /// A declared GPS-gap marker failed to verify under `T⁺` (forged or
    /// tampered outage declaration).
    BadGapMarker {
        /// Index of the first offending gap marker.
        index: usize,
    },
    /// A signed sample's timestamp lies strictly inside a declared
    /// outage window — the trace contradicts its own gap declaration.
    GapContradiction {
        /// Index of the offending sample.
        index: usize,
    },
}

impl Verdict {
    /// `true` only for [`Verdict::Compliant`].
    pub fn is_compliant(&self) -> bool {
        matches!(self, Verdict::Compliant)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Compliant => write!(f, "compliant"),
            Verdict::EmptyPoa => write!(f, "empty proof-of-alibi"),
            Verdict::BadSignature { index } => write!(f, "bad signature at sample {index}"),
            Verdict::NonMonotonic { index } => {
                write!(f, "non-monotonic timestamps at sample {index}")
            }
            Verdict::WindowNotCovered => write!(f, "flight window not covered"),
            Verdict::ImpossibleTrace { index } => {
                write!(f, "physically impossible pair at sample {index}")
            }
            Verdict::InsideZone { index, zone } => {
                write!(f, "sample {index} inside {zone}")
            }
            Verdict::InsufficientAlibi { pair_indices } => {
                write!(f, "{} insufficient pair(s)", pair_indices.len())
            }
            Verdict::BadGapMarker { index } => {
                write!(f, "bad signature on gap marker {index}")
            }
            Verdict::GapContradiction { index } => {
                write!(f, "sample {index} inside a declared GPS gap")
            }
        }
    }
}

/// Full verification output: the verdict plus the per-pair sufficiency
/// detail when the pipeline got that far.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// The final verdict.
    pub verdict: Verdict,
    /// Per-pair sufficiency detail (present when signatures, timestamps,
    /// coverage, and feasibility all passed).
    pub sufficiency: Option<SufficiencyReport>,
}

impl VerificationReport {
    /// `true` when the submission was accepted.
    pub fn is_compliant(&self) -> bool {
        self.verdict.is_compliant()
    }
}

/// A retained PoA, kept so that a later [`Accusation`] can be checked
/// against it.
#[derive(Debug, Clone)]
pub struct StoredPoa {
    /// Submitting drone.
    pub drone_id: DroneId,
    /// Claimed flight window.
    pub window: (Timestamp, Timestamp),
    /// The proof itself.
    pub poa: ProofOfAlibi,
    /// Verdict it received at submission time.
    pub verdict: Verdict,
    /// When it was stored (drives retention purging).
    pub stored_at: Timestamp,
}

/// The outcome of checking an accusation against stored evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum AccusationOutcome {
    /// The stored PoA proves the drone could not have been in the zone at
    /// the accused time.
    Refuted,
    /// The evidence does not exonerate the drone (insufficient pair, a
    /// sample inside the zone, or no coverage) — punitive measures follow.
    Upheld {
        /// Human-readable reason.
        reason: String,
    },
}

/// A shared, immutable view of the zone registry taken at one
/// generation; cloned out of the caches below without copying zones.
type ZoneSnapshot = Arc<Vec<(ZoneId, NoFlyZone)>>;

/// The AliDrone Server run by the auditor (paper §IV-C2).
///
/// Shareable: all methods take `&self` (see the module docs for the
/// locking layout), so wrap one in an `Arc` to drive it from many
/// threads.
pub struct Auditor {
    config: AuditorConfig,
    encryption_key: RsaPrivateKey,
    /// Records are `Arc`ed so verification can clone a handle out and
    /// release the registry lock before the RSA work starts; each holds
    /// the *prepared* verifiers (see [`Registration`]).
    drones: RwLock<BTreeMap<DroneId, Arc<Registration>>>,
    zones: RwLock<BTreeMap<ZoneId, NoFlyZone>>,
    used_nonces: Mutex<BTreeSet<(DroneId, [u8; 16])>>,
    stored: RwLock<Vec<StoredPoa>>,
    next_drone: AtomicU64,
    next_zone: AtomicU64,
    obs: Obs,
    verify_latency: Arc<Histogram>,
    decrypt_latency: Arc<Histogram>,
    /// Wall time spent in journal appends
    /// (`auditor.journal_append_latency_us`) — the one I/O-bound step
    /// on the verification path, so its tail is worth watching
    /// separately from verify CPU.
    journal_append_latency: Arc<Histogram>,
    /// Write-ahead journal for durable state mutations. `None` when the
    /// auditor runs in-memory only, or after an append failure disabled
    /// journaling (see [`journal_append`](Self::journal_append)).
    journal: Mutex<Option<Journal>>,
    /// The error that disabled journaling, if any.
    journal_error: Mutex<Option<JournalError>>,
    /// Leadership epoch this auditor writes under (0 = never part of a
    /// cluster). Replayed from [`Record::Epoch`] records; promotion
    /// bumps it via [`begin_epoch`](Self::begin_epoch).
    epoch: AtomicU64,
    /// Log shipper gating journal appends on follower durability, when
    /// this auditor is a cluster primary (see [`crate::repl`]).
    replicator: OnceLock<Arc<Replicator>>,
    /// The shared batch-verification pool, installed once (normally by
    /// the server builder). `None` = every check runs serially inline.
    verify_pool: OnceLock<Arc<VerifyPool>>,
    /// Bounded cache of signature-check outcomes; identical
    /// resubmissions skip the RSA exponentiation.
    verify_cache: Arc<VerifyResultCache>,
    /// Bumped on every zone-registry mutation (registration, journal
    /// replay, snapshot restore); generation-keyed caches below can
    /// then never serve a pre-mutation view.
    zone_generation: AtomicU64,
    /// Single-slot cache of the full zone snapshot verification runs
    /// against, keyed by generation.
    zone_snapshot: Mutex<Option<(u64, ZoneSnapshot)>>,
    /// LRU of zone-query rectangle results, keyed by (generation,
    /// corner coordinates).
    zone_query_cache: Mutex<LruCache<(u64, [u64; 4]), ZoneSnapshot>>,
    zone_cache_hits: Arc<Counter>,
    zone_cache_misses: Arc<Counter>,
    /// Tamper-evident audit chain over every durable mutation (see
    /// [`crate::audit`]). Advanced under the journal lock so chain
    /// order always matches journal append order.
    audit: Mutex<AuditState>,
    /// Optional TEE countersigner for Merkle checkpoints, installed
    /// once (normally by the server builder from an enclave client).
    checkpoint_countersigner: OnceLock<CheckpointCountersigner>,
}

/// What [`Auditor::recover`] found in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Journal records replayed (including the snapshot, when present).
    pub records_applied: usize,
    /// `true` when replay started from a compaction snapshot.
    pub snapshot_loaded: bool,
    /// `true` when a torn (partially written) final record was found and
    /// discarded — the expected signature of a crash mid-append.
    pub torn_tail: bool,
    /// Bytes of torn tail discarded.
    pub torn_bytes: usize,
}

impl Auditor {
    /// Creates an auditor with the given policy and its PoA-decryption
    /// keypair. Observability is a no-op; use
    /// [`with_obs`](Self::with_obs) to trace and time verification.
    pub fn new(config: AuditorConfig, encryption_key: RsaPrivateKey) -> Self {
        Auditor::with_obs(config, encryption_key, &Obs::noop())
    }

    /// Creates an auditor whose verification and decryption steps are
    /// recorded as spans (and latency histograms) on `obs`. Spans open
    /// under whatever span is current on the handle, so an
    /// [`AuditorServer`](crate::wire::server::AuditorServer) sharing the handle
    /// stitches `auditor.verify` under its own request span.
    pub fn with_obs(config: AuditorConfig, encryption_key: RsaPrivateKey, obs: &Obs) -> Self {
        Auditor {
            config,
            encryption_key,
            drones: RwLock::new(BTreeMap::new()),
            zones: RwLock::new(BTreeMap::new()),
            used_nonces: Mutex::new(BTreeSet::new()),
            stored: RwLock::new(Vec::new()),
            next_drone: AtomicU64::new(1),
            next_zone: AtomicU64::new(1),
            obs: obs.clone(),
            verify_latency: obs.histogram("auditor.verify_latency_us"),
            decrypt_latency: obs.histogram("auditor.decrypt_latency_us"),
            journal_append_latency: obs.histogram("auditor.journal_append_latency_us"),
            journal: Mutex::new(None),
            journal_error: Mutex::new(None),
            epoch: AtomicU64::new(0),
            replicator: OnceLock::new(),
            verify_pool: OnceLock::new(),
            verify_cache: Arc::new(VerifyResultCache::new(VERIFY_CACHE_CAP, obs)),
            zone_generation: AtomicU64::new(0),
            zone_snapshot: Mutex::new(None),
            zone_query_cache: Mutex::new(LruCache::new(ZONE_QUERY_CACHE_CAP)),
            zone_cache_hits: obs.counter("auditor.zone_query_cache.hits"),
            zone_cache_misses: obs.counter("auditor.zone_query_cache.misses"),
            audit: Mutex::new(AuditState::empty()),
            checkpoint_countersigner: OnceLock::new(),
        }
    }

    /// Installs the shared batch-verification pool. Returns `false`
    /// (leaving the existing pool in place) if one was already
    /// installed. Without a pool, signature checks run serially inline —
    /// verdicts are identical either way.
    pub fn install_verify_pool(&self, pool: Arc<VerifyPool>) -> bool {
        self.verify_pool.set(pool).is_ok()
    }

    /// The installed batch-verification pool, if any.
    pub fn verify_pool(&self) -> Option<&Arc<VerifyPool>> {
        self.verify_pool.get()
    }

    /// The signature-outcome cache (exposed for hit-rate assertions and
    /// chaos tests that prove verdicts are cache-independent).
    pub fn verify_cache(&self) -> &VerifyResultCache {
        &self.verify_cache
    }

    /// Invalidates every generation-keyed zone cache. Called on each
    /// zone mutation; also safe (and cheap) to call from chaos hooks.
    fn bump_zone_generation(&self) {
        self.zone_generation.fetch_add(1, Ordering::Release);
    }

    /// Recovers an auditor from a journal on `backend` and arms it to
    /// keep journaling. See [`recover_with_obs`](Self::recover_with_obs).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Storage`] for I/O failures or mid-journal
    /// corruption (a torn *tail* is tolerated and reported instead), and
    /// [`ProtocolError::Malformed`] when a replayed record decodes but
    /// cannot be applied.
    pub fn recover(
        backend: Arc<dyn StorageBackend>,
        config: AuditorConfig,
        encryption_key: RsaPrivateKey,
    ) -> Result<(Self, RecoveryReport), ProtocolError> {
        Auditor::recover_with_obs(backend, config, encryption_key, &Obs::noop())
    }

    /// Recovers an auditor by replaying the write-ahead journal on
    /// `backend`: a fresh backend yields an empty auditor, a journal
    /// whose final record was torn by a crash is truncated to its clean
    /// prefix (logged on `obs`), and the returned auditor appends every
    /// later durable mutation to the same journal.
    ///
    /// # Errors
    ///
    /// See [`recover`](Self::recover).
    pub fn recover_with_obs(
        backend: Arc<dyn StorageBackend>,
        config: AuditorConfig,
        encryption_key: RsaPrivateKey,
        obs: &Obs,
    ) -> Result<(Self, RecoveryReport), ProtocolError> {
        let (journal, records, replay) = Journal::open(backend)?;
        let mut report = RecoveryReport {
            records_applied: replay.records_applied,
            snapshot_loaded: false,
            torn_tail: replay.torn_tail,
            torn_bytes: replay.torn_bytes,
        };
        let mut auditor = Auditor::with_obs(config, encryption_key, obs);
        for record in &records {
            auditor.apply_record(record)?;
            if matches!(record, Record::Snapshot(_)) {
                report.snapshot_loaded = true;
            }
        }
        if replay.torn_tail {
            obs.emit(Level::Warn, "auditor.journal", "torn tail discarded", |f| {
                f.field("torn_bytes", replay.torn_bytes);
                f.field("records_applied", replay.records_applied);
            });
        }
        obs.emit(Level::Info, "auditor.journal", "recovered", |f| {
            f.field("records_applied", report.records_applied);
            f.field("snapshot_loaded", report.snapshot_loaded);
        });
        *auditor.journal.lock().unwrap_or_else(|p| p.into_inner()) = Some(journal);
        Ok((auditor, report))
    }

    /// Applies one replayed journal record to in-memory state *without*
    /// re-journaling it. Id counters advance past every replayed id so
    /// new registrations never collide with recovered ones.
    fn apply_record(&mut self, record: &Record) -> Result<(), ProtocolError> {
        use alidrone_crypto::bigint::BigUint;
        use alidrone_geo::{Distance, GeoPoint};
        if record.is_audited() {
            // Replay recomputes the same chain the live auditor built,
            // so the checkpoint arm below can catch rewritten history.
            self.audit_extend(record);
        }
        match record {
            Record::RegisterDrone {
                id,
                op_modulus,
                op_exponent,
                tee_modulus,
                tee_exponent,
            } => {
                let key = |n: &[u8], e: &[u8]| {
                    RsaPublicKey::new(BigUint::from_bytes_be(n), BigUint::from_bytes_be(e))
                        .map_err(ProtocolError::Crypto)
                };
                let record = Registration::new(
                    key(op_modulus, op_exponent)?,
                    key(tee_modulus, tee_exponent)?,
                );
                self.drones
                    .write()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(DroneId::new(*id), Arc::new(record));
                self.next_drone.fetch_max(id + 1, Ordering::Relaxed);
            }
            Record::RegisterZone {
                id,
                lat_deg,
                lon_deg,
                radius_m,
            } => {
                let center = GeoPoint::new(*lat_deg, *lon_deg).map_err(ProtocolError::Geo)?;
                let zone = NoFlyZone::try_new(center, Distance::from_meters(*radius_m))
                    .map_err(ProtocolError::Geo)?;
                self.zones
                    .write()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(ZoneId::new(*id), zone);
                self.bump_zone_generation();
                self.next_zone.fetch_max(id + 1, Ordering::Relaxed);
            }
            Record::NonceUsed { drone, nonce } => {
                self.used_nonces
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert((DroneId::new(*drone), *nonce));
            }
            Record::PoaStored {
                drone,
                window_start,
                window_end,
                poa,
                verdict,
                stored_at,
            } => {
                let poa = ProofOfAlibi::from_bytes(poa)?;
                let mut r = crate::wire::codec::Reader::new(verdict);
                let verdict = crate::wire::get_verdict(&mut r)?;
                r.finish()?;
                self.stored
                    .write()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(StoredPoa {
                        drone_id: DroneId::new(*drone),
                        window: (
                            Timestamp::from_secs(*window_start),
                            Timestamp::from_secs(*window_end),
                        ),
                        poa,
                        verdict,
                        stored_at: Timestamp::from_secs(*stored_at),
                    });
            }
            Record::Snapshot(bytes) => {
                // Replace wholesale from the compaction snapshot, keeping
                // this auditor's config/key/obs (the snapshot format
                // carries state only). The epoch survives: it rides in
                // its own records, not the snapshot.
                let restored =
                    Auditor::restore(bytes, self.config.clone(), self.encryption_key.clone())?;
                self.drones = restored.drones;
                self.zones = restored.zones;
                self.used_nonces = restored.used_nonces;
                self.stored = restored.stored;
                self.next_drone = restored.next_drone;
                self.next_zone = restored.next_zone;
                self.audit = restored.audit;
            }
            Record::Epoch(epoch) => {
                // Epochs only move forward; a replayed log may carry
                // several boundaries and the newest one wins.
                self.epoch.fetch_max(*epoch, Ordering::AcqRel);
            }
            Record::AuditCheckpoint { size, root, .. } => {
                // The recorded root must match the root this replay
                // recomputed from the preceding records — any rewrite,
                // drop, or reorder of chained history lands here.
                let mut audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
                audit
                    .chain
                    .check_checkpoint(*size, root)
                    .map_err(|_| ProtocolError::AuditDivergence { size: *size })?;
                audit.checkpoint_size = (*size).max(audit.checkpoint_size);
            }
        }
        Ok(())
    }

    /// Advances the audit chain by one audited record (live append and
    /// replay share this, so both build the identical chain).
    fn audit_extend(&self, record: &Record) {
        let mut audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        let index = audit.chain.size();
        audit.chain.append(&record.to_payload());
        audit.sth = None;
        if let Record::PoaStored { drone, .. } = record {
            audit.verdict_leaves.insert(DroneId::new(*drone), index);
        }
    }

    /// Builds a Merkle checkpoint record when the configured interval
    /// has elapsed since the last one. A signing failure skips the
    /// checkpoint (logged; the next audited append retries) rather than
    /// failing the mutation that triggered it.
    fn due_checkpoint(&self) -> Option<Record> {
        let mut audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        let size = audit.chain.size();
        if size.saturating_sub(audit.checkpoint_size) < self.config.checkpoint_interval.max(1) {
            return None;
        }
        match self.sign_tree_head(&mut audit) {
            Ok(sth) => {
                audit.checkpoint_size = size;
                Some(Record::AuditCheckpoint {
                    size: sth.size,
                    root: sth.root,
                    sig: sth.signature.clone(),
                    tee_sig: sth.tee_signature.clone(),
                })
            }
            Err(err) => {
                self.obs.emit(
                    Level::Error,
                    "auditor.audit",
                    "checkpoint signing failed; skipped",
                    |f| {
                        f.field("size", size);
                        f.field("error", err.to_string());
                    },
                );
                None
            }
        }
    }

    /// Signs (and caches) the tree head over the current chain state,
    /// countersigning through the installed TEE hook when present.
    fn sign_tree_head(&self, audit: &mut AuditState) -> Result<SignedTreeHead, ProtocolError> {
        let size = audit.chain.size();
        if let Some(sth) = &audit.sth {
            if sth.size == size {
                return Ok(sth.clone());
            }
        }
        let root = audit.chain.root();
        let head = audit.chain.head();
        let mut sth = SignedTreeHead::sign(size, root, head, &self.encryption_key)
            .map_err(ProtocolError::Crypto)?;
        if let Some(countersign) = self.checkpoint_countersigner.get() {
            let msg = SignedTreeHead::signing_bytes(size, &root, &head);
            if let Some(sig) = countersign(&msg) {
                sth.tee_signature = sig;
            }
        }
        audit.sth = Some(sth.clone());
        Ok(sth)
    }

    /// Installs the TEE checkpoint countersigner: every subsequent
    /// signed tree head (and journaled checkpoint) carries the
    /// enclave's signature alongside the auditor's. Returns `false`
    /// (leaving the existing hook) if one was already installed.
    pub fn set_checkpoint_countersigner(&self, hook: CheckpointCountersigner) -> bool {
        self.checkpoint_countersigner.set(hook).is_ok()
    }

    /// The signed tree head over the current audit chain: the auditor's
    /// commitment to its whole mutation history. Verifiable offline via
    /// [`SignedTreeHead::verify`] and the [`crate::audit`] proof
    /// functions.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Crypto`] when signing fails.
    pub fn signed_tree_head(&self) -> Result<SignedTreeHead, ProtocolError> {
        let mut audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        self.sign_tree_head(&mut audit)
    }

    /// Number of entries in the audit chain.
    pub fn audit_tree_size(&self) -> u64 {
        self.audit
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .chain
            .size()
    }

    /// Inclusion proof for `drone`'s latest stored verdict against the
    /// tree of `tree_size` entries (0 = the current size). Clients
    /// check it offline with [`crate::audit::verify_inclusion`] against
    /// a tree head they already hold.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::PoaNotFound`] when the drone has no stored
    /// verdict, [`ProtocolError::Malformed`] when the verdict lies
    /// outside the requested tree size.
    pub fn audit_inclusion_proof(
        &self,
        drone: DroneId,
        tree_size: u64,
    ) -> Result<InclusionProof, ProtocolError> {
        let audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        let index = *audit
            .verdict_leaves
            .get(&drone)
            .ok_or(ProtocolError::PoaNotFound)?;
        let size = if tree_size == 0 {
            audit.chain.size()
        } else {
            tree_size
        };
        audit
            .chain
            .prove_inclusion(index, size)
            .map_err(|_| ProtocolError::Malformed("audit proof range"))
    }

    /// Consistency proof between the trees of `old_size` and `new_size`
    /// entries (`new_size` 0 = the current size): evidence that the
    /// newer head extends the older one append-only. Checked offline
    /// with [`crate::audit::verify_consistency`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] for invalid ranges.
    pub fn audit_consistency_proof(
        &self,
        old_size: u64,
        new_size: u64,
    ) -> Result<ConsistencyProof, ProtocolError> {
        let audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        let new_size = if new_size == 0 {
            audit.chain.size()
        } else {
            new_size
        };
        audit
            .chain
            .prove_consistency(old_size, new_size)
            .map_err(|_| ProtocolError::Malformed("audit proof range"))
    }

    /// The leadership epoch this auditor last saw (0 when it has never
    /// been part of a replicated cluster).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Starts a new leadership epoch: records it durably (and ships it
    /// to followers, fencing any stale primary that still holds an
    /// older epoch). Called by promotion — see [`crate::repl`].
    ///
    /// # Errors
    ///
    /// Journal/replication failures, as for any durable mutation.
    pub fn begin_epoch(&self, epoch: u64) -> Result<(), ProtocolError> {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        if let Some(replicator) = self.replicator.get() {
            replicator.set_epoch(epoch);
        }
        self.journal_append(&Record::Epoch(epoch))
    }

    /// Installs the log shipper: every subsequent durable mutation is
    /// replicated to its followers before the caller's response is
    /// acknowledged (under `Quorum` policies). Returns `false` if one
    /// was already installed.
    pub fn set_replicator(&self, replicator: Arc<Replicator>) -> bool {
        replicator.set_epoch(self.current_epoch());
        self.replicator.set(replicator).is_ok()
    }

    /// The installed log shipper, if any.
    pub fn replicator(&self) -> Option<&Arc<Replicator>> {
        self.replicator.get()
    }

    /// Appends one record to the journal, if armed, then ships it to
    /// any installed [`Replicator`]. A failed append *disables* the
    /// journal (recorded via
    /// [`last_journal_error`](Self::last_journal_error) and the obs
    /// stream) rather than poisoning in-memory state: the auditor keeps
    /// serving, but durability is gone until an operator intervenes —
    /// better than silently diverging the journal from memory.
    ///
    /// # Errors
    ///
    /// Without a replicator this never fails — the pre-replication
    /// contract. Under
    /// [`ReplicationPolicy::Async`](crate::repl::ReplicationPolicy::Async)
    /// only epoch fencing errors (a deposed primary must stop
    /// acknowledging under *any* policy); shipping failures are
    /// absorbed into the lag metrics. Under a `Quorum` policy, an
    /// append or replication failure is returned so the caller's
    /// response is gated on durability instead of acknowledging what
    /// may be lost.
    fn journal_append(&self, record: &Record) -> Result<(), ProtocolError> {
        let mut slot = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        // The chain advances under the journal lock so chain order
        // always matches append order — and even with journaling
        // disabled, so an in-memory auditor still serves verifiable
        // tree heads and proofs.
        if record.is_audited() {
            self.audit_extend(record);
        }
        let Some(journal) = slot.as_ref() else {
            // No journal means nothing can replicate: under a quorum
            // policy acknowledging here would be an acked-then-lost
            // record waiting to happen, so the durability loss stays
            // a typed error until an operator intervenes.
            if self.replicator.get().is_some_and(|r| r.requires_quorum()) {
                let err = self
                    .last_journal_error()
                    .map(ProtocolError::from)
                    .unwrap_or(ProtocolError::Storage(
                        "quorum replication requires a journal".to_string(),
                    ));
                return Err(err);
            }
            return Ok(());
        };
        // A due Merkle checkpoint rides the same lock hold as the
        // record that triggered it, so the chained prefix it covers is
        // exactly the records physically before it in the journal.
        let checkpoint = if record.is_audited() {
            self.due_checkpoint()
        } else {
            None
        };
        for rec in std::iter::once(record).chain(checkpoint.as_ref()) {
            let t0 = std::time::Instant::now();
            let result = journal.append_record(rec);
            self.journal_append_latency
                .record_micros(t0.elapsed().as_micros() as u64);
            if let Err(err) = result {
                self.obs.emit(
                    Level::Error,
                    "auditor.journal",
                    "append failed; journaling disabled",
                    |f| {
                        f.field("error", err.to_string());
                    },
                );
                self.obs.counter("auditor.journal_append_failures").inc();
                let quorum = self.replicator.get().is_some_and(|r| r.requires_quorum());
                *self.journal_error.lock().unwrap_or_else(|p| p.into_inner()) = Some(err.clone());
                *slot = None;
                if quorum {
                    return Err(err.into());
                }
                return Ok(());
            }
        }
        if let Some(replicator) = self.replicator.get() {
            // Shipping under the journal lock serializes frames in
            // append order, so follower images are always a prefix of
            // the primary's. Quorum failures propagate; Async failures
            // were already absorbed into the lag metrics.
            replicator.replicate(journal).map_err(ProtocolError::from)?;
        }
        Ok(())
    }

    /// `true` while a journal is attached and healthy.
    pub fn journal_enabled(&self) -> bool {
        self.journal
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
    }

    /// The append error that disabled journaling, if one occurred.
    pub fn last_journal_error(&self) -> Option<JournalError> {
        self.journal_error
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Compacts the journal to a single snapshot record, bounding replay
    /// cost at the next [`recover`](Self::recover). No-op without a
    /// journal.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Storage`] when the atomic replace fails; the old
    /// journal image stays intact in that case.
    pub fn compact_journal(&self) -> Result<(), ProtocolError> {
        let snapshot = self.snapshot();
        let slot = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(journal) = slot.as_ref() {
            journal.compact(&snapshot)?;
            // The snapshot format carries state only; re-append the
            // epoch boundary so the fresh image still fences stale
            // primaries after a recovery from it.
            let epoch = self.epoch.load(Ordering::Acquire);
            if epoch > 0 {
                journal.append_record(&Record::Epoch(epoch))?;
            }
            self.obs
                .emit(Level::Info, "auditor.journal", "compacted", |f| {
                    f.field("snapshot_bytes", snapshot.len());
                });
            if let Some(replicator) = self.replicator.get() {
                // Push the re-based image promptly so followers don't
                // discover the rebase only on the next mutation.
                replicator.replicate(journal).map_err(ProtocolError::from)?;
            }
        }
        Ok(())
    }

    /// The policy in force.
    pub fn config(&self) -> &AuditorConfig {
        &self.config
    }

    /// The public key drones encrypt PoAs to.
    pub fn public_encryption_key(&self) -> &RsaPublicKey {
        self.encryption_key.public_key()
    }

    /// Step 0 — registers a drone: records `(id_drone, D⁺, T⁺)` and
    /// issues the id.
    ///
    /// Idempotent by construction: resending a registration whose
    /// response was lost issues a second id for the same key pair, and
    /// the orphaned record is inert — it never matches a query,
    /// submission, or accusation, so a retry can never corrupt state.
    pub fn register_drone(
        &self,
        operator_public: RsaPublicKey,
        tee_public: RsaPublicKey,
    ) -> DroneId {
        // Replication-agnostic contract: the id is issued even when a
        // Quorum policy could not replicate (visible via
        // `last_journal_error` / repl metrics). The wire server uses
        // [`register_drone_durable`](Self::register_drone_durable).
        self.register_drone_inner(operator_public, tee_public).0
    }

    /// [`register_drone`](Self::register_drone), but the response is
    /// gated on replication durability: under a `Quorum` policy the id
    /// is only returned once enough followers hold the record. The
    /// local registration still happened on error — retrying is
    /// idempotent by construction.
    ///
    /// # Errors
    ///
    /// Journal or replication failures under a `Quorum` policy.
    pub fn register_drone_durable(
        &self,
        operator_public: RsaPublicKey,
        tee_public: RsaPublicKey,
    ) -> Result<DroneId, ProtocolError> {
        let (id, durable) = self.register_drone_inner(operator_public, tee_public);
        durable.map(|()| id)
    }

    fn register_drone_inner(
        &self,
        operator_public: RsaPublicKey,
        tee_public: RsaPublicKey,
    ) -> (DroneId, Result<(), ProtocolError>) {
        let id = DroneId::new(self.next_drone.fetch_add(1, Ordering::Relaxed));
        let record = Record::RegisterDrone {
            id: id.value(),
            op_modulus: operator_public.modulus().to_bytes_be(),
            op_exponent: operator_public.exponent().to_bytes_be(),
            tee_modulus: tee_public.modulus().to_bytes_be(),
            tee_exponent: tee_public.exponent().to_bytes_be(),
        };
        // Single insert on one lock: a panic cannot leave the map
        // structurally broken, so a poisoned lock is still sound to read.
        self.drones
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, Arc::new(Registration::new(operator_public, tee_public)));
        (id, self.journal_append(&record))
    }

    /// Step 1 — registers a circular zone, issuing its id. Idempotent
    /// under retry for the same reason as
    /// [`register_drone`](Self::register_drone): a duplicate zone is a
    /// second id over identical geometry, which only *strengthens* what
    /// a PoA must prove.
    pub fn register_zone(&self, zone: NoFlyZone) -> ZoneId {
        // Same replication-agnostic contract as `register_drone`.
        self.register_zone_inner(zone).0
    }

    /// [`register_zone`](Self::register_zone) gated on replication
    /// durability, as [`register_drone_durable`](Self::register_drone_durable).
    ///
    /// # Errors
    ///
    /// Journal or replication failures under a `Quorum` policy.
    pub fn register_zone_durable(&self, zone: NoFlyZone) -> Result<ZoneId, ProtocolError> {
        let (id, durable) = self.register_zone_inner(zone);
        durable.map(|()| id)
    }

    fn register_zone_inner(&self, zone: NoFlyZone) -> (ZoneId, Result<(), ProtocolError>) {
        let id = ZoneId::new(self.next_zone.fetch_add(1, Ordering::Relaxed));
        // Single insert on one lock: poisoning cannot corrupt the map.
        self.zones
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, zone);
        self.bump_zone_generation();
        let durable = self.journal_append(&Record::RegisterZone {
            id: id.value(),
            lat_deg: zone.center().lat_deg(),
            lon_deg: zone.center().lon_deg(),
            radius_m: zone.radius().meters(),
        });
        (id, durable)
    }

    /// §VII-B2 — registers a polygonal zone by covering it with its
    /// smallest enclosing circle (computed once, here).
    ///
    /// # Errors
    ///
    /// Propagates degenerate-polygon errors.
    pub fn register_polygon_zone(&self, polygon: &PolygonZone) -> Result<ZoneId, GeoError> {
        Ok(self.register_zone(polygon.enclosing_zone()))
    }

    // Read-only accessors recover from a poisoned lock instead of
    // panicking: every write section is a single non-panicking BTreeMap
    // or Vec operation, so poisoning can only mean a *reader* panicked —
    // the data underneath is structurally sound.

    /// Look up a zone's geometry.
    pub fn zone(&self, id: ZoneId) -> Option<NoFlyZone> {
        self.zones
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .copied()
    }

    /// All registered zones as a set.
    pub fn zone_set(&self) -> ZoneSet {
        self.zones
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .copied()
            .collect()
    }

    /// Number of registered drones.
    pub fn drone_count(&self) -> usize {
        self.drones.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Number of registered zones.
    pub fn zone_count(&self) -> usize {
        self.zones.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// The registered TEE verification key for a drone.
    pub fn tee_public_key(&self, id: DroneId) -> Option<RsaPublicKey> {
        self.drones
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .map(|d| d.tee_public().clone())
    }

    /// Steps 2–3 — answers a zone query after verifying the signed nonce
    /// and its freshness.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownDrone`] for unregistered ids,
    /// [`ProtocolError::QuerySignatureInvalid`] for bad signatures,
    /// [`ProtocolError::NonceReplayed`] for nonce reuse, and
    /// [`ProtocolError::LockPoisoned`] if a registry lock was poisoned.
    pub fn handle_zone_query(&self, query: &ZoneQuery) -> Result<ZoneResponse, ProtocolError> {
        let record = self
            .drones
            .read()
            .map_err(|_| ProtocolError::LockPoisoned("drone registry"))?
            .get(&query.drone_id)
            .cloned()
            .ok_or(ProtocolError::UnknownDrone(query.drone_id))?;
        // Signature verification runs outside every lock, against the
        // prepared verifier held in the registration record.
        query.verify_with(record.operator())?;
        if !self
            .used_nonces
            .lock()
            .map_err(|_| ProtocolError::LockPoisoned("nonce set"))?
            .insert((query.drone_id, query.nonce))
        {
            return Err(ProtocolError::NonceReplayed);
        }
        self.journal_append(&Record::NonceUsed {
            drone: query.drone_id.value(),
            nonce: query.nonce,
        })?;
        let zones = self.zones_in_rect(&query.corner1, &query.corner2)?;
        Ok(ZoneResponse {
            zones: zones.as_ref().clone(),
        })
    }

    /// Zones whose centres fall inside the rectangle, through a
    /// generation-keyed LRU: the same navigation area queried twice
    /// against an unchanged registry is a map lookup, and any zone
    /// registration bumps the generation so stale results can never
    /// match again.
    fn zones_in_rect(
        &self,
        corner1: &alidrone_geo::GeoPoint,
        corner2: &alidrone_geo::GeoPoint,
    ) -> Result<ZoneSnapshot, ProtocolError> {
        let generation = self.zone_generation.load(Ordering::Acquire);
        let key = (
            generation,
            [
                corner1.lat_deg().to_bits(),
                corner1.lon_deg().to_bits(),
                corner2.lat_deg().to_bits(),
                corner2.lon_deg().to_bits(),
            ],
        );
        if let Some(hit) = self
            .zone_query_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            self.zone_cache_hits.add(1);
            return Ok(Arc::clone(hit));
        }
        self.zone_cache_misses.add(1);
        let result = {
            let zones = self
                .zones
                .read()
                .map_err(|_| ProtocolError::LockPoisoned("zone registry"))?;
            let all: ZoneSet = zones.values().copied().collect();
            let within = all.within_rect(corner1, corner2);
            Arc::new(
                zones
                    .iter()
                    .filter(|(_, z)| within.as_slice().contains(z))
                    .map(|(id, z)| (*id, *z))
                    .collect::<Vec<_>>(),
            )
        };
        self.zone_query_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, Arc::clone(&result));
        Ok(result)
    }

    /// The point-in-time zone snapshot verification runs against,
    /// cached per generation. Zones are append-only, so a snapshot
    /// built just after a concurrent registration but stored under the
    /// pre-registration generation is still sound — it only ever
    /// contains *more* zones, exactly as if the submission had arrived
    /// moments later.
    fn zones_snapshot(&self) -> Result<ZoneSnapshot, ProtocolError> {
        let generation = self.zone_generation.load(Ordering::Acquire);
        {
            let slot = self.zone_snapshot.lock().unwrap_or_else(|p| p.into_inner());
            if let Some((g, snap)) = &*slot {
                if *g == generation {
                    return Ok(Arc::clone(snap));
                }
            }
        }
        let snap: ZoneSnapshot = {
            let zones = self
                .zones
                .read()
                .map_err(|_| ProtocolError::LockPoisoned("zone registry"))?;
            Arc::new(zones.iter().map(|(id, z)| (*id, *z)).collect())
        };
        *self.zone_snapshot.lock().unwrap_or_else(|p| p.into_inner()) =
            Some((generation, Arc::clone(&snap)));
        Ok(snap)
    }

    /// Step 4 — the typed verification entry point: verifies a
    /// [`Submission`] (plaintext or encrypted) and retains it.
    ///
    /// This is the single funnel every transport lands in; the
    /// [`verify_submission`](Self::verify_submission) and
    /// [`verify_encrypted_submission`](Self::verify_encrypted_submission)
    /// wrappers delegate here.
    ///
    /// # Errors
    ///
    /// Transport-level problems only — unknown drone, or (for the
    /// encrypted arm) decryption failure; every judgement about the PoA
    /// itself is expressed in the returned [`VerificationReport`].
    pub fn verify(
        &self,
        submission: &Submission,
        now: Timestamp,
    ) -> Result<VerificationReport, ProtocolError> {
        match submission {
            Submission::Plain(sub) => self.verify_plain(sub, now),
            Submission::Encrypted {
                drone_id,
                window_start,
                window_end,
                poa,
            } => self.decrypt_then_verify(*drone_id, *window_start, *window_end, poa, now),
        }
    }

    /// Step 4 — verifies a plaintext submission and retains it. Thin
    /// wrapper over [`verify`](Self::verify).
    ///
    /// Idempotent by construction: verification is a pure function of
    /// the PoA and the zone registry, so a resubmission after a lost
    /// response receives the same verdict and appends a byte-identical
    /// [`StoredPoa`]; accusation handling scans for the *latest*
    /// covering proof, so duplicates cannot change any later outcome.
    ///
    /// # Errors
    ///
    /// Only transport-level problems (unknown drone) are errors; every
    /// judgement about the PoA itself is expressed in the returned
    /// [`VerificationReport`].
    pub fn verify_submission(
        &self,
        submission: &PoaSubmission,
        now: Timestamp,
    ) -> Result<VerificationReport, ProtocolError> {
        self.verify_plain(submission, now)
    }

    fn verify_plain(
        &self,
        submission: &PoaSubmission,
        now: Timestamp,
    ) -> Result<VerificationReport, ProtocolError> {
        let span = self
            .obs
            .enter_span_recording("auditor.verify", &self.verify_latency);
        let record = match self
            .drones
            .read()
            .map_err(|_| ProtocolError::LockPoisoned("drone registry"))?
            .get(&submission.drone_id)
            .cloned()
        {
            Some(record) => record,
            None => {
                drop(span);
                return Err(ProtocolError::UnknownDrone(submission.drone_id));
            }
        };
        // Verify against a point-in-time snapshot of the zone registry
        // (cached per generation): the locks are released before the
        // RSA/geometry work begins.
        let zones = self.zones_snapshot()?;
        let report = self.verify_poa_inner(&submission.poa, &record, submission, &zones);
        drop(span);
        self.stored
            .write()
            .map_err(|_| ProtocolError::LockPoisoned("poa log"))?
            .push(StoredPoa {
                drone_id: submission.drone_id,
                window: (submission.window_start, submission.window_end),
                poa: submission.poa.clone(),
                verdict: report.verdict.clone(),
                stored_at: now,
            });
        let verdict_bytes = {
            let mut w = crate::wire::codec::Writer::new();
            crate::wire::put_verdict(&mut w, &report.verdict);
            w.into_bytes()
        };
        // Under a `Quorum` replication policy this gates the verdict
        // response on follower durability — the caller never learns a
        // verdict that a failover could lose.
        self.journal_append(&Record::PoaStored {
            drone: submission.drone_id.value(),
            window_start: submission.window_start.secs(),
            window_end: submission.window_end.secs(),
            poa: submission.poa.to_bytes(),
            verdict: verdict_bytes,
            stored_at: now.secs(),
        })?;
        Ok(report)
    }

    /// Step 4, encrypted variant: decrypts with the auditor key first
    /// (paper §V-C — the Adapter persists the PoA encrypted under the
    /// server's public key). Thin wrapper over [`verify`](Self::verify).
    ///
    /// # Errors
    ///
    /// Adds decryption failures to the error set of
    /// [`verify_submission`](Self::verify_submission).
    pub fn verify_encrypted_submission(
        &self,
        drone_id: DroneId,
        window_start: Timestamp,
        window_end: Timestamp,
        encrypted: &EncryptedPoa,
        now: Timestamp,
    ) -> Result<VerificationReport, ProtocolError> {
        self.decrypt_then_verify(drone_id, window_start, window_end, encrypted, now)
    }

    fn decrypt_then_verify(
        &self,
        drone_id: DroneId,
        window_start: Timestamp,
        window_end: Timestamp,
        encrypted: &EncryptedPoa,
        now: Timestamp,
    ) -> Result<VerificationReport, ProtocolError> {
        let span = self
            .obs
            .enter_span_recording("auditor.decrypt", &self.decrypt_latency);
        let poa = encrypted.decrypt(&self.encryption_key);
        drop(span);
        let poa = poa?;
        self.verify_plain(
            &PoaSubmission {
                drone_id,
                window_start,
                window_end,
                poa,
            },
            now,
        )
    }

    /// The 7-step verification pipeline, run against a `zones` snapshot
    /// taken by the caller — no auditor lock is held while this executes.
    fn verify_poa_inner(
        &self,
        poa: &ProofOfAlibi,
        record: &Arc<Registration>,
        submission: &PoaSubmission,
        zones: &[(ZoneId, NoFlyZone)],
    ) -> VerificationReport {
        // 1. Non-empty.
        if poa.is_empty() {
            return VerificationReport {
                verdict: Verdict::EmptyPoa,
                sufficiency: None,
            };
        }
        // 2. Every signature verifies under the registered T⁺ — through
        // the verify-result cache, fanned across the shared pool for
        // batches worth the coordination. Reports the *lowest* failing
        // index either way, so the verdict is identical to the serial
        // loop this replaces.
        if let Some(i) = self.check_entry_signatures(poa, record) {
            return VerificationReport {
                verdict: Verdict::BadSignature { index: i },
                sufficiency: None,
            };
        }
        // 2b. Declared GPS gaps verify under the same key — degraded-mode
        // outage declarations are evidence too, and must be TEE-attested.
        // Gap lists are short (one per outage), so these stay serial but
        // still go through the prepared verifier and the cache.
        for (i, gap) in poa.gaps().iter().enumerate() {
            let msg = alidrone_tee::SignedGapMarker::signing_bytes(gap.start(), gap.end());
            if !self
                .verify_cache
                .check(record.tee(), &msg, gap.signature(), gap.hash_alg())
            {
                return VerificationReport {
                    verdict: Verdict::BadGapMarker { index: i },
                    sufficiency: None,
                };
            }
        }
        let alibi = poa.alibi();
        // 3. Strictly increasing timestamps.
        if let Err(GeoError::NonMonotonicTime { index }) = check_monotonic(&alibi) {
            return VerificationReport {
                verdict: Verdict::NonMonotonic { index },
                sufficiency: None,
            };
        }
        // 3b. No sample may sit strictly inside a declared outage: the
        // sampler attested it had no fix there, so such a trace
        // contradicts itself.
        let gap_windows = poa.gap_windows();
        for (i, s) in alibi.iter().enumerate() {
            if gap_windows.iter().any(|g| g.contains_strict(s.time())) {
                return VerificationReport {
                    verdict: Verdict::GapContradiction { index: i },
                    sufficiency: None,
                };
            }
        }
        // 4. Window coverage.
        let slack = self.config.coverage_slack;
        // Invariant: step 1 returned early on an empty PoA, so the alibi
        // has at least one sample here.
        let first = alibi.first().expect("non-empty").time();
        let last = alibi.last().expect("non-empty").time();
        if first.secs() > (submission.window_start + slack).secs()
            || last.secs() < (submission.window_end - slack).secs()
        {
            return VerificationReport {
                verdict: Verdict::WindowNotCovered,
                sufficiency: None,
            };
        }
        // 5. Physical feasibility of every pair.
        for (i, w) in alibi.windows(2).enumerate() {
            match ReachableSet::from_samples(&w[0], &w[1], self.config.v_max) {
                Some(e) if !e.is_empty() => {}
                _ => {
                    return VerificationReport {
                        verdict: Verdict::ImpossibleTrace { index: i },
                        sufficiency: None,
                    }
                }
            }
        }
        // 6. No sample inside any zone.
        for (i, s) in alibi.iter().enumerate() {
            for (zid, z) in zones {
                if z.contains(&s.point()) {
                    return VerificationReport {
                        verdict: Verdict::InsideZone {
                            index: i,
                            zone: *zid,
                        },
                        sufficiency: None,
                    };
                }
            }
        }
        // 7. Alibi sufficiency, eq. (1) — declared gaps inflate the
        // travel budget of overlapping pairs, so outages weaken the
        // alibi instead of disappearing.
        let zone_set: ZoneSet = zones.iter().map(|(_, z)| *z).collect();
        let suff = check_alibi_with_gaps(
            &alibi,
            &zone_set,
            self.config.v_max,
            self.config.criterion,
            &gap_windows,
        );
        let verdict = if suff.is_sufficient() {
            Verdict::Compliant
        } else {
            Verdict::InsufficientAlibi {
                pair_indices: suff.insufficient_indices(),
            }
        };
        VerificationReport {
            verdict,
            sufficiency: Some(suff),
        }
    }

    /// Step 2 of the pipeline: returns the lowest entry index whose TEE
    /// signature fails, or `None` when all verify. Every check goes
    /// through the verify-result cache; batches of [`MIN_BATCH`] or more
    /// fan out across the installed [`VerifyPool`].
    fn check_entry_signatures(
        &self,
        poa: &ProofOfAlibi,
        record: &Arc<Registration>,
    ) -> Option<usize> {
        let entries = poa.entries();
        match self.verify_pool.get() {
            Some(pool) if entries.len() >= MIN_BATCH => {
                // Entries are cloned into the batch so workers borrow
                // nothing request-scoped; the clones are sample structs
                // plus signature bytes — noise next to one RSA op.
                let items = Arc::new(entries.to_vec());
                let cache = Arc::clone(&self.verify_cache);
                let record = Arc::clone(record);
                pool.first_failure(
                    items,
                    Arc::new(move |_, entry: &SignedSample| {
                        cache.check(
                            record.tee(),
                            &entry.sample().to_bytes(),
                            entry.signature(),
                            entry.hash_alg(),
                        )
                    }),
                )
            }
            _ => entries.iter().position(|entry| {
                !self.verify_cache.check(
                    record.tee(),
                    &entry.sample().to_bytes(),
                    entry.signature(),
                    entry.hash_alg(),
                )
            }),
        }
    }

    /// Handles a zone owner's accusation against stored evidence
    /// (paper §III-A: the burden of proof is on the operator, so missing
    /// or non-exonerating evidence upholds the accusation).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownZone`] when the accused zone does
    /// not exist and [`ProtocolError::LockPoisoned`] if a registry lock
    /// was poisoned.
    pub fn handle_accusation(
        &self,
        accusation: &Accusation,
    ) -> Result<AccusationOutcome, ProtocolError> {
        let zone = self
            .zones
            .read()
            .map_err(|_| ProtocolError::LockPoisoned("zone registry"))?
            .get(&accusation.zone_id)
            .copied()
            .ok_or(ProtocolError::UnknownZone(accusation.zone_id))?;
        // Find a stored PoA from this drone whose window covers the time.
        let log = self
            .stored
            .read()
            .map_err(|_| ProtocolError::LockPoisoned("poa log"))?;
        let stored = log.iter().rev().find(|s| {
            s.drone_id == accusation.drone_id
                && s.window.0.secs() <= accusation.time.secs()
                && accusation.time.secs() <= s.window.1.secs()
        });
        let Some(stored) = stored else {
            return Ok(AccusationOutcome::Upheld {
                reason: "no stored proof-of-alibi covers the accused time".into(),
            });
        };
        if !stored.verdict.is_compliant() {
            return Ok(AccusationOutcome::Upheld {
                reason: format!("stored proof was already judged: {}", stored.verdict),
            });
        }
        // Find the sample pair bracketing the accused time.
        let alibi = stored.poa.alibi();
        let pair = alibi.windows(2).find(|w| {
            w[0].time().secs() <= accusation.time.secs()
                && accusation.time.secs() <= w[1].time().secs()
        });
        let Some(pair) = pair else {
            return Ok(AccusationOutcome::Upheld {
                reason: "accused time falls outside the recorded trace".into(),
            });
        };
        let sufficient = alidrone_geo::sufficiency::pair_is_sufficient(
            &pair[0],
            &pair[1],
            &zone,
            self.config.v_max,
        );
        if sufficient {
            Ok(AccusationOutcome::Refuted)
        } else {
            Ok(AccusationOutcome::Upheld {
                reason: "bracketing sample pair does not prove alibi for the zone".into(),
            })
        }
    }

    /// Number of retained PoAs.
    pub fn stored_poa_count(&self) -> usize {
        self.stored.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// The most recent stored PoA for a drone, if any (cloned out of the
    /// log, so no lock is held by the caller).
    pub fn latest_stored(&self, drone: DroneId) -> Option<StoredPoa> {
        self.stored
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .rev()
            .find(|s| s.drone_id == drone)
            .cloned()
    }

    /// Drops stored PoAs older than the retention window.
    ///
    /// Not journaled: retention is a pure function of `now` and the
    /// stored-at times, so replaying an unpurged journal merely restores
    /// entries the next purge drops again. Compact after purging to
    /// shrink the journal image.
    pub fn purge_expired(&self, now: Timestamp) {
        let retention = self.config.retention;
        self.stored
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|s| (now - s.stored_at).secs() <= retention.secs());
    }
}

impl fmt::Debug for Auditor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Auditor")
            .field("drones", &self.drone_count())
            .field("zones", &self.zone_count())
            .field("stored_poas", &self.stored_poa_count())
            .finish_non_exhaustive()
    }
}

// ------------------------------------------------------------- snapshots
//
// The AliDrone Server must survive restarts without losing its drone
// registry, zone database, anti-replay state, or retained PoAs (a lost
// nonce set would reopen query replay; lost PoAs would turn every
// pending accusation into a punishment). The snapshot format reuses the
// wire codec.

const SNAPSHOT_MAGIC: u32 = 0x414C_4432; // "ALD2" — v2 added the audit-chain section

/// Parses the audit-chain section of a snapshot (head, checkpoint
/// size, Merkle leaves, per-drone verdict leaf indexes). The reader
/// must be positioned just past the id counters.
#[allow(clippy::type_complexity)]
fn read_audit_section(
    r: &mut crate::wire::codec::Reader<'_>,
) -> Result<([u8; 32], u64, Vec<[u8; 32]>, BTreeMap<DroneId, u64>), ProtocolError> {
    let head: [u8; 32] = r.get_array()?;
    let checkpoint_size = r.get_u64()?;
    let n = r.get_u32()? as usize;
    if n > 1 << 26 {
        return Err(ProtocolError::Malformed("too many audit leaves"));
    }
    let mut leaves = Vec::with_capacity(n);
    for _ in 0..n {
        leaves.push(r.get_array()?);
    }
    let n = r.get_u32()? as usize;
    if n > 1 << 20 {
        return Err(ProtocolError::Malformed("too many verdict leaves"));
    }
    let mut verdict_leaves = BTreeMap::new();
    for _ in 0..n {
        let drone = DroneId::new(r.get_u64()?);
        verdict_leaves.insert(drone, r.get_u64()?);
    }
    Ok((head, checkpoint_size, leaves, verdict_leaves))
}

/// Recovers just the audit-chain state `(chain, checkpoint_size)` from
/// snapshot bytes, without decoding the registries behind it. Used by
/// replication followers to re-seed their verification chain when a
/// full image ships.
pub(crate) fn snapshot_audit_state(bytes: &[u8]) -> Result<(AuditChain, u64), ProtocolError> {
    let mut r = crate::wire::codec::Reader::new(bytes);
    if r.get_u32()? != SNAPSHOT_MAGIC {
        return Err(ProtocolError::Malformed("snapshot magic"));
    }
    let _next_drone = r.get_u64()?;
    let _next_zone = r.get_u64()?;
    let (head, checkpoint_size, leaves, _) = read_audit_section(&mut r)?;
    Ok((AuditChain::from_parts(head, leaves), checkpoint_size))
}

impl Auditor {
    /// Serialises the auditor's durable state: registries, anti-replay
    /// nonces, retained PoAs, and id counters. The encryption *private*
    /// key is deliberately **not** included — key storage is a separate
    /// concern (an HSM in deployment); [`Auditor::restore`] takes it as
    /// an argument.
    pub fn snapshot(&self) -> Vec<u8> {
        use crate::wire::codec::Writer;
        let mut w = Writer::new();
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u64(self.next_drone.load(Ordering::Relaxed));
        w.put_u64(self.next_zone.load(Ordering::Relaxed));

        // Audit-chain section first, so replication followers can
        // recover the chain state from an image prefix without decoding
        // the (much larger) registries behind it.
        let audit = self.audit.lock().unwrap_or_else(|p| p.into_inner());
        for b in audit.chain.head() {
            w.put_u8(b);
        }
        w.put_u64(audit.checkpoint_size);
        w.put_u32(audit.chain.size() as u32);
        for leaf in audit.chain.leaves() {
            for b in leaf {
                w.put_u8(*b);
            }
        }
        w.put_u32(audit.verdict_leaves.len() as u32);
        for (drone, index) in audit.verdict_leaves.iter() {
            w.put_u64(drone.value());
            w.put_u64(*index);
        }
        drop(audit);

        // Snapshots recover from poisoned locks (see the accessor note
        // above): a panicked reader must not block making a backup.
        let drones = self.drones.read().unwrap_or_else(|p| p.into_inner());
        w.put_u32(drones.len() as u32);
        for (id, rec) in drones.iter() {
            w.put_u64(id.value());
            w.put_bytes(&rec.operator_public().modulus().to_bytes_be());
            w.put_bytes(&rec.operator_public().exponent().to_bytes_be());
            w.put_bytes(&rec.tee_public().modulus().to_bytes_be());
            w.put_bytes(&rec.tee_public().exponent().to_bytes_be());
        }
        drop(drones);

        let zones = self.zones.read().unwrap_or_else(|p| p.into_inner());
        w.put_u32(zones.len() as u32);
        for (id, z) in zones.iter() {
            w.put_u64(id.value());
            w.put_f64(z.center().lat_deg());
            w.put_f64(z.center().lon_deg());
            w.put_f64(z.radius().meters());
        }
        drop(zones);

        let nonces = self.used_nonces.lock().unwrap_or_else(|p| p.into_inner());
        w.put_u32(nonces.len() as u32);
        for (drone, nonce) in nonces.iter() {
            w.put_u64(drone.value());
            for b in nonce {
                w.put_u8(*b);
            }
        }
        drop(nonces);

        let stored = self.stored.read().unwrap_or_else(|p| p.into_inner());
        w.put_u32(stored.len() as u32);
        for s in stored.iter() {
            w.put_u64(s.drone_id.value());
            w.put_f64(s.window.0.secs());
            w.put_f64(s.window.1.secs());
            w.put_bytes(&s.poa.to_bytes());
            crate::wire::put_verdict(&mut w, &s.verdict);
            w.put_f64(s.stored_at.secs());
        }
        w.into_bytes()
    }

    /// Rebuilds an auditor from a [`snapshot`](Auditor::snapshot), the
    /// (externally stored) encryption key, and the policy config.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] for corrupted snapshots.
    pub fn restore(
        bytes: &[u8],
        config: AuditorConfig,
        encryption_key: RsaPrivateKey,
    ) -> Result<Self, ProtocolError> {
        use crate::wire::codec::Reader;
        use alidrone_crypto::bigint::BigUint;
        use alidrone_geo::GeoPoint;

        let mut r = Reader::new(bytes);
        if r.get_u32()? != SNAPSHOT_MAGIC {
            return Err(ProtocolError::Malformed("snapshot magic"));
        }
        let next_drone = r.get_u64()?;
        let next_zone = r.get_u64()?;
        let (audit_head, audit_checkpoint_size, audit_leaves, verdict_leaves) =
            read_audit_section(&mut r)?;

        let read_key = |r: &mut Reader<'_>| -> Result<RsaPublicKey, ProtocolError> {
            let n = BigUint::from_bytes_be(r.get_bytes()?);
            let e = BigUint::from_bytes_be(r.get_bytes()?);
            RsaPublicKey::new(n, e).map_err(ProtocolError::Crypto)
        };

        let n = r.get_u32()? as usize;
        if n > 1 << 20 {
            return Err(ProtocolError::Malformed("too many drones"));
        }
        let mut drones = BTreeMap::new();
        for _ in 0..n {
            let id = DroneId::new(r.get_u64()?);
            let operator_public = read_key(&mut r)?;
            let tee_public = read_key(&mut r)?;
            drones.insert(id, Arc::new(Registration::new(operator_public, tee_public)));
        }

        let n = r.get_u32()? as usize;
        if n > 1 << 24 {
            return Err(ProtocolError::Malformed("too many zones"));
        }
        let mut zones = BTreeMap::new();
        for _ in 0..n {
            let id = ZoneId::new(r.get_u64()?);
            let lat = r.get_f64()?;
            let lon = r.get_f64()?;
            let radius = r.get_f64()?;
            let center = GeoPoint::new(lat, lon).map_err(ProtocolError::Geo)?;
            zones.insert(
                id,
                NoFlyZone::try_new(center, alidrone_geo::Distance::from_meters(radius))
                    .map_err(ProtocolError::Geo)?,
            );
        }

        let n = r.get_u32()? as usize;
        if n > 1 << 24 {
            return Err(ProtocolError::Malformed("too many nonces"));
        }
        let mut used_nonces = BTreeSet::new();
        for _ in 0..n {
            let drone = DroneId::new(r.get_u64()?);
            let nonce: [u8; 16] = r.get_array()?;
            used_nonces.insert((drone, nonce));
        }

        let n = r.get_u32()? as usize;
        if n > 1 << 20 {
            return Err(ProtocolError::Malformed("too many stored poas"));
        }
        let mut stored = Vec::with_capacity(n);
        for _ in 0..n {
            let drone_id = DroneId::new(r.get_u64()?);
            let ws = Timestamp::from_secs(r.get_f64()?);
            let we = Timestamp::from_secs(r.get_f64()?);
            let poa = ProofOfAlibi::from_bytes(r.get_bytes()?)?;
            let verdict = crate::wire::get_verdict(&mut r)?;
            let stored_at = Timestamp::from_secs(r.get_f64()?);
            stored.push(StoredPoa {
                drone_id,
                window: (ws, we),
                poa,
                verdict,
                stored_at,
            });
        }
        r.finish()?;

        // Observability handles are process-local, not durable state: a
        // restored auditor starts with a no-op handle (re-attach via
        // `with_obs` at construction of the replacement process).
        let obs = Obs::noop();
        let verify_latency = obs.histogram("auditor.verify_latency_us");
        let decrypt_latency = obs.histogram("auditor.decrypt_latency_us");
        let journal_append_latency = obs.histogram("auditor.journal_append_latency_us");
        Ok(Auditor {
            config,
            encryption_key,
            drones: RwLock::new(drones),
            zones: RwLock::new(zones),
            used_nonces: Mutex::new(used_nonces),
            stored: RwLock::new(stored),
            next_drone: AtomicU64::new(next_drone),
            next_zone: AtomicU64::new(next_zone),
            verify_latency,
            decrypt_latency,
            journal_append_latency,
            journal: Mutex::new(None),
            journal_error: Mutex::new(None),
            epoch: AtomicU64::new(0),
            replicator: OnceLock::new(),
            verify_pool: OnceLock::new(),
            verify_cache: Arc::new(VerifyResultCache::new(VERIFY_CACHE_CAP, &obs)),
            zone_generation: AtomicU64::new(0),
            zone_snapshot: Mutex::new(None),
            zone_query_cache: Mutex::new(LruCache::new(ZONE_QUERY_CACHE_CAP)),
            zone_cache_hits: obs.counter("auditor.zone_query_cache.hits"),
            zone_cache_misses: obs.counter("auditor.zone_query_cache.misses"),
            obs,
            audit: Mutex::new(AuditState {
                chain: AuditChain::from_parts(audit_head, audit_leaves),
                checkpoint_size: audit_checkpoint_size,
                verdict_leaves,
                sth: None,
            }),
            checkpoint_countersigner: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{auditor_key, operator_key, origin, signed_samples, tee_key};
    use alidrone_crypto::rsa::HashAlg;
    use alidrone_geo::{Distance, GeoPoint, GpsSample};
    use alidrone_tee::SignedSample;

    fn auditor() -> Auditor {
        Auditor::new(AuditorConfig::default(), auditor_key().clone())
    }

    fn registered(auditor: &Auditor) -> DroneId {
        auditor.register_drone(
            operator_key().public_key().clone(),
            tee_key().public_key().clone(),
        )
    }

    fn far_zone() -> NoFlyZone {
        NoFlyZone::new(
            origin().destination(0.0, Distance::from_km(50.0)),
            Distance::from_meters(100.0),
        )
    }

    fn submission(drone_id: DroneId, n: usize) -> PoaSubmission {
        PoaSubmission {
            drone_id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs((n - 1) as f64),
            poa: ProofOfAlibi::from_entries(signed_samples(n)),
        }
    }

    #[test]
    fn registration_issues_sequential_ids() {
        let a = auditor();
        let d1 = registered(&a);
        let d2 = registered(&a);
        assert_ne!(d1, d2);
        assert_eq!(a.drone_count(), 2);
        let z1 = a.register_zone(far_zone());
        let z2 = a.register_zone(far_zone());
        assert_ne!(z1, z2);
        assert!(a.zone(z1).is_some());
        assert!(a.zone(ZoneId::new(999)).is_none());
    }

    #[test]
    fn compliant_flight_accepted_and_stored() {
        let a = auditor();
        let d = registered(&a);
        a.register_zone(far_zone());
        let rep = a
            .verify_submission(&submission(d, 10), Timestamp::from_secs(100.0))
            .unwrap();
        assert!(rep.is_compliant(), "verdict: {}", rep.verdict);
        assert!(rep.sufficiency.is_some());
        assert_eq!(a.stored_poa_count(), 1);
        assert!(a.latest_stored(d).is_some());
    }

    #[test]
    fn unknown_drone_is_error() {
        let a = auditor();
        let err = a
            .verify_submission(&submission(DroneId::new(9), 3), Timestamp::EPOCH)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownDrone(_)));
    }

    #[test]
    fn empty_poa_rejected() {
        let a = auditor();
        let d = registered(&a);
        let s = PoaSubmission {
            drone_id: d,
            window_start: Timestamp::EPOCH,
            window_end: Timestamp::from_secs(1.0),
            poa: ProofOfAlibi::new(),
        };
        let rep = a.verify_submission(&s, Timestamp::EPOCH).unwrap();
        assert_eq!(rep.verdict, Verdict::EmptyPoa);
    }

    #[test]
    fn forged_signature_detected() {
        let a = auditor();
        let d = registered(&a);
        let mut entries = signed_samples(5);
        // Attacker swaps in a different position, keeping the signature.
        let forged = GpsSample::new(
            GeoPoint::new(41.0, -88.2).unwrap(),
            entries[2].sample().time(),
        );
        entries[2] = SignedSample::from_parts(
            forged,
            entries[2].signature().to_vec(),
            entries[2].hash_alg(),
        );
        let s = PoaSubmission {
            drone_id: d,
            window_start: Timestamp::EPOCH,
            window_end: Timestamp::from_secs(4.0),
            poa: ProofOfAlibi::from_entries(entries),
        };
        let rep = a.verify_submission(&s, Timestamp::EPOCH).unwrap();
        assert_eq!(rep.verdict, Verdict::BadSignature { index: 2 });
    }

    #[test]
    fn relay_attack_detected() {
        // PoA signed by a *different* drone's TEE: signatures valid under
        // the wrong key.
        let a = auditor();
        let other_tee = {
            use alidrone_crypto::rng::XorShift64;
            let mut rng = XorShift64::seed_from_u64(0xE1E);
            alidrone_crypto::rsa::RsaPrivateKey::generate(512, &mut rng)
        };
        let d = a.register_drone(
            operator_key().public_key().clone(),
            other_tee.public_key().clone(),
        );
        // signed_samples() signs with tee_key(), not other_tee.
        let rep = a
            .verify_submission(&submission(d, 3), Timestamp::EPOCH)
            .unwrap();
        assert_eq!(rep.verdict, Verdict::BadSignature { index: 0 });
    }

    #[test]
    fn replayed_trace_nonmonotonic_detected() {
        let a = auditor();
        let d = registered(&a);
        let mut entries = signed_samples(4);
        let replayed = entries[1].clone();
        entries.push(replayed); // appending an old signed sample
        let s = PoaSubmission {
            drone_id: d,
            window_start: Timestamp::EPOCH,
            window_end: Timestamp::from_secs(3.0),
            poa: ProofOfAlibi::from_entries(entries),
        };
        let rep = a.verify_submission(&s, Timestamp::EPOCH).unwrap();
        assert_eq!(rep.verdict, Verdict::NonMonotonic { index: 4 });
    }

    #[test]
    fn window_coverage_enforced() {
        let a = auditor();
        let d = registered(&a);
        // Claim a window that extends far beyond the trace.
        let s = PoaSubmission {
            drone_id: d,
            window_start: Timestamp::EPOCH,
            window_end: Timestamp::from_secs(1_000.0),
            poa: ProofOfAlibi::from_entries(signed_samples(5)),
        };
        let rep = a.verify_submission(&s, Timestamp::EPOCH).unwrap();
        assert_eq!(rep.verdict, Verdict::WindowNotCovered);
        // Window starting before the first sample likewise.
        let s2 = PoaSubmission {
            drone_id: d,
            window_start: Timestamp::from_secs(-100.0),
            window_end: Timestamp::from_secs(4.0),
            poa: ProofOfAlibi::from_entries(signed_samples(5)),
        };
        let rep2 = a.verify_submission(&s2, Timestamp::EPOCH).unwrap();
        assert_eq!(rep2.verdict, Verdict::WindowNotCovered);
    }

    #[test]
    fn impossible_trace_detected() {
        let a = auditor();
        let d = registered(&a);
        // Two samples 0.5 s apart but 5 km apart in space, individually
        // well-signed: a spliced/forged trace.
        let s1 = GpsSample::new(origin(), Timestamp::from_secs(0.0));
        let s2 = GpsSample::new(
            origin().destination(90.0, Distance::from_km(5.0)),
            Timestamp::from_secs(0.5),
        );
        let entries: Vec<SignedSample> = [s1, s2]
            .into_iter()
            .map(|smp| {
                let sig = tee_key().sign(&smp.to_bytes(), HashAlg::Sha1).unwrap();
                SignedSample::from_parts(smp, sig, HashAlg::Sha1)
            })
            .collect();
        let s = PoaSubmission {
            drone_id: d,
            window_start: Timestamp::EPOCH,
            window_end: Timestamp::from_secs(0.5),
            poa: ProofOfAlibi::from_entries(entries),
        };
        let rep = a.verify_submission(&s, Timestamp::EPOCH).unwrap();
        assert_eq!(rep.verdict, Verdict::ImpossibleTrace { index: 0 });
    }

    #[test]
    fn violation_inside_zone_detected() {
        let a = auditor();
        let d = registered(&a);
        // Zone sits right on the trace.
        let zid = a.register_zone(NoFlyZone::new(
            origin().destination(90.0, Distance::from_meters(20.0)),
            Distance::from_meters(15.0),
        ));
        let rep = a
            .verify_submission(&submission(d, 5), Timestamp::EPOCH)
            .unwrap();
        match rep.verdict {
            Verdict::InsideZone { zone, .. } => assert_eq!(zone, zid),
            other => panic!("expected InsideZone, got {other}"),
        }
    }

    #[test]
    fn insufficient_alibi_detected() {
        let a = auditor();
        let d = registered(&a);
        // Zone near the path but not containing any sample; samples 1 s
        // apart → budget ~44.7 m; zone boundary within reach.
        a.register_zone(NoFlyZone::new(
            origin().destination(0.0, Distance::from_meters(25.0)),
            Distance::from_meters(10.0),
        ));
        let rep = a
            .verify_submission(&submission(d, 5), Timestamp::EPOCH)
            .unwrap();
        match &rep.verdict {
            Verdict::InsufficientAlibi { pair_indices } => {
                assert!(!pair_indices.is_empty());
            }
            other => panic!("expected InsufficientAlibi, got {other}"),
        }
        assert!(rep.sufficiency.is_some());
    }

    #[test]
    fn zone_query_flow() {
        let a = auditor();
        let d = registered(&a);
        let near = a.register_zone(NoFlyZone::new(
            origin().destination(45.0, Distance::from_km(2.0)),
            Distance::from_meters(100.0),
        ));
        let _far = a.register_zone(NoFlyZone::new(
            origin().destination(45.0, Distance::from_km(500.0)),
            Distance::from_meters(100.0),
        ));
        let q = ZoneQuery::new_signed(
            d,
            origin().destination(225.0, Distance::from_km(5.0)),
            origin().destination(45.0, Distance::from_km(5.0)),
            [1u8; 16],
            operator_key(),
        )
        .unwrap();
        let resp = a.handle_zone_query(&q).unwrap();
        assert_eq!(resp.zones.len(), 1);
        assert_eq!(resp.zones[0].0, near);
    }

    #[test]
    fn zone_query_nonce_replay_rejected() {
        let a = auditor();
        let d = registered(&a);
        let q = ZoneQuery::new_signed(d, origin(), origin(), [2u8; 16], operator_key()).unwrap();
        a.handle_zone_query(&q).unwrap();
        assert_eq!(a.handle_zone_query(&q), Err(ProtocolError::NonceReplayed));
    }

    #[test]
    fn zone_query_bad_signature_rejected() {
        let a = auditor();
        let d = registered(&a);
        let mut q =
            ZoneQuery::new_signed(d, origin(), origin(), [3u8; 16], operator_key()).unwrap();
        q.signature[0] ^= 1;
        assert_eq!(
            a.handle_zone_query(&q),
            Err(ProtocolError::QuerySignatureInvalid)
        );
    }

    #[test]
    fn zone_query_unknown_drone_rejected() {
        let a = auditor();
        let q = ZoneQuery::new_signed(
            DroneId::new(77),
            origin(),
            origin(),
            [4u8; 16],
            operator_key(),
        )
        .unwrap();
        assert!(matches!(
            a.handle_zone_query(&q),
            Err(ProtocolError::UnknownDrone(_))
        ));
    }

    #[test]
    fn encrypted_submission_round_trip() {
        use alidrone_crypto::rng::XorShift64;
        let mut rng = XorShift64::seed_from_u64(31);
        let a = auditor();
        let d = registered(&a);
        a.register_zone(far_zone());
        let poa = ProofOfAlibi::from_entries(signed_samples(6));
        let enc = poa.encrypt(a.public_encryption_key(), &mut rng).unwrap();
        let rep = a
            .verify_encrypted_submission(
                d,
                Timestamp::EPOCH,
                Timestamp::from_secs(5.0),
                &enc,
                Timestamp::EPOCH,
            )
            .unwrap();
        assert!(rep.is_compliant());
    }

    #[test]
    fn accusation_refuted_by_good_alibi() {
        let a = auditor();
        let d = registered(&a);
        let zid = a.register_zone(far_zone());
        a.verify_submission(&submission(d, 10), Timestamp::EPOCH)
            .unwrap();
        let outcome = a
            .handle_accusation(&Accusation {
                zone_id: zid,
                drone_id: d,
                time: Timestamp::from_secs(4.5),
            })
            .unwrap();
        assert_eq!(outcome, AccusationOutcome::Refuted);
    }

    #[test]
    fn accusation_upheld_without_stored_poa() {
        let a = auditor();
        let d = registered(&a);
        let zid = a.register_zone(far_zone());
        let outcome = a
            .handle_accusation(&Accusation {
                zone_id: zid,
                drone_id: d,
                time: Timestamp::from_secs(4.5),
            })
            .unwrap();
        assert!(matches!(outcome, AccusationOutcome::Upheld { .. }));
    }

    #[test]
    fn accusation_on_unknown_zone_is_error() {
        let a = auditor();
        assert!(matches!(
            a.handle_accusation(&Accusation {
                zone_id: ZoneId::new(404),
                drone_id: DroneId::new(1),
                time: Timestamp::EPOCH,
            }),
            Err(ProtocolError::UnknownZone(_))
        ));
    }

    #[test]
    fn accusation_upheld_when_pair_cannot_exonerate() {
        let a = auditor();
        let d = registered(&a);
        // Register a zone close enough that 1 s pairs cannot prove alibi,
        // but which contains no sample (so submission verdict is
        // InsufficientAlibi → stored as judged).
        let zid = a.register_zone(NoFlyZone::new(
            origin().destination(0.0, Distance::from_meters(25.0)),
            Distance::from_meters(10.0),
        ));
        a.verify_submission(&submission(d, 10), Timestamp::EPOCH)
            .unwrap();
        let outcome = a
            .handle_accusation(&Accusation {
                zone_id: zid,
                drone_id: d,
                time: Timestamp::from_secs(3.2),
            })
            .unwrap();
        assert!(matches!(outcome, AccusationOutcome::Upheld { .. }));
    }

    #[test]
    fn retention_purges_old_poas() {
        let a = auditor();
        let d = registered(&a);
        a.verify_submission(&submission(d, 3), Timestamp::from_secs(0.0))
            .unwrap();
        a.verify_submission(&submission(d, 3), Timestamp::from_secs(86_400.0))
            .unwrap();
        assert_eq!(a.stored_poa_count(), 2);
        // Three days later, only the second survives the 2-day retention.
        a.purge_expired(Timestamp::from_secs(3.0 * 86_400.0));
        assert_eq!(a.stored_poa_count(), 1);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let a = auditor();
        let d = registered(&a);
        let z = a.register_zone(far_zone());
        // One completed flight + one consumed nonce.
        a.verify_submission(&submission(d, 5), Timestamp::from_secs(7.0))
            .unwrap();
        let q = ZoneQuery::new_signed(d, origin(), origin(), [8u8; 16], operator_key()).unwrap();
        a.handle_zone_query(&q).unwrap();

        let bytes = a.snapshot();
        let restored =
            Auditor::restore(&bytes, AuditorConfig::default(), auditor_key().clone()).unwrap();

        // Registries intact.
        assert_eq!(restored.drone_count(), 1);
        assert_eq!(restored.zone(z), a.zone(z));
        assert_eq!(restored.stored_poa_count(), 1);
        // Anti-replay state survives: the old nonce is still burned.
        assert_eq!(
            restored.handle_zone_query(&q),
            Err(ProtocolError::NonceReplayed)
        );
        // Id counters continue, not restart.
        let d2 = registered(&restored);
        assert!(d2 > d);
        // Stored PoA still answers accusations.
        let outcome = restored
            .handle_accusation(&crate::Accusation {
                zone_id: z,
                drone_id: d,
                time: Timestamp::from_secs(2.0),
            })
            .unwrap();
        assert_eq!(outcome, AccusationOutcome::Refuted);
    }

    #[test]
    fn snapshot_restore_rejects_corruption() {
        let a = auditor();
        registered(&a);
        a.register_zone(far_zone());
        let bytes = a.snapshot();
        // Magic corruption.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Auditor::restore(&bad, AuditorConfig::default(), auditor_key().clone()).is_err());
        // Truncation.
        assert!(Auditor::restore(
            &bytes[..bytes.len() - 3],
            AuditorConfig::default(),
            auditor_key().clone()
        )
        .is_err());
        // Trailing garbage.
        let mut trailing = bytes;
        trailing.push(0);
        assert!(
            Auditor::restore(&trailing, AuditorConfig::default(), auditor_key().clone()).is_err()
        );
    }

    #[test]
    fn snapshot_excludes_private_key_material() {
        let a = auditor();
        registered(&a);
        let bytes = a.snapshot();
        // The private exponent/primes must not appear in the snapshot.
        // (The public modulus legitimately does.) We can't read the
        // private fields here, so check a proxy: restoring with a
        // *different* encryption key still works — the key is external.
        use alidrone_crypto::rng::XorShift64;
        let mut rng = XorShift64::seed_from_u64(0x5EC);
        let other = alidrone_crypto::rsa::RsaPrivateKey::generate(512, &mut rng);
        let restored = Auditor::restore(&bytes, AuditorConfig::default(), other.clone()).unwrap();
        assert_eq!(
            restored.public_encryption_key().modulus(),
            other.public_key().modulus()
        );
    }

    #[test]
    fn exact_criterion_accepts_more_than_paper() {
        // Same marginal geometry under both criteria: exact must accept
        // at least whenever paper accepts.
        let zone = NoFlyZone::new(
            origin().destination(0.0, Distance::from_meters(40.0)),
            Distance::from_meters(12.0),
        );
        for criterion in [Criterion::Paper, Criterion::Exact] {
            let a = Auditor::new(
                AuditorConfig {
                    criterion,
                    ..AuditorConfig::default()
                },
                auditor_key().clone(),
            );
            let d = registered(&a);
            a.register_zone(zone);
            let rep = a
                .verify_submission(&submission(d, 5), Timestamp::EPOCH)
                .unwrap();
            if criterion == Criterion::Exact {
                // If paper accepted, exact must too — checked by running
                // paper first and remembering; here we simply require the
                // exact run not to be *stricter*.
                let paper_rep = {
                    let ap = Auditor::new(AuditorConfig::default(), auditor_key().clone());
                    let dp = registered(&ap);
                    ap.register_zone(zone);
                    ap.verify_submission(&submission(dp, 5), Timestamp::EPOCH)
                        .unwrap()
                };
                if paper_rep.is_compliant() {
                    assert!(rep.is_compliant());
                }
            }
        }
    }

    // --------------------------------------------------- journal recovery

    use crate::journal::MemBackend;

    fn recovered(backend: Arc<MemBackend>) -> (Auditor, RecoveryReport) {
        Auditor::recover(backend, AuditorConfig::default(), auditor_key().clone()).unwrap()
    }

    #[test]
    fn journal_recovery_round_trips_state() {
        let backend = Arc::new(MemBackend::new());
        let (a, rep) = recovered(Arc::clone(&backend));
        assert_eq!(rep.records_applied, 0);
        assert!(a.journal_enabled());
        let d = registered(&a);
        let z = a.register_zone(far_zone());
        a.verify_submission(&submission(d, 5), Timestamp::from_secs(50.0))
            .unwrap();

        let (b, rep) = recovered(backend);
        assert_eq!(rep.records_applied, 3);
        assert!(!rep.torn_tail);
        assert!(!rep.snapshot_loaded);
        assert_eq!(b.snapshot(), a.snapshot());
        assert!(b.zone(z).is_some());
        assert_eq!(b.stored_poa_count(), 1);
        // Fresh registrations continue past every recovered id.
        let d2 = registered(&b);
        assert!(d2.value() > d.value());
    }

    #[test]
    fn nonce_replay_still_rejected_after_recovery() {
        use crate::messages::ZoneQuery;
        let backend = Arc::new(MemBackend::new());
        let (a, _) = recovered(Arc::clone(&backend));
        let d = registered(&a);
        let corner1 = GeoPoint::new(39.0, -89.0).unwrap();
        let corner2 = GeoPoint::new(41.0, -87.0).unwrap();
        let query = ZoneQuery::new_signed(d, corner1, corner2, [7; 16], operator_key()).unwrap();
        a.handle_zone_query(&query).unwrap();

        // The consumed nonce must survive the crash.
        let (b, _) = recovered(backend);
        let err = b.handle_zone_query(&query).unwrap_err();
        assert!(matches!(err, ProtocolError::NonceReplayed));
    }

    #[test]
    fn compaction_bounds_replay_and_preserves_state() {
        let backend = Arc::new(MemBackend::new());
        let (a, _) = recovered(Arc::clone(&backend));
        let d = registered(&a);
        a.register_zone(far_zone());
        a.verify_submission(&submission(d, 5), Timestamp::from_secs(10.0))
            .unwrap();
        let before = backend.len();
        a.compact_journal().unwrap();
        // Post-compaction appends still land after the snapshot record.
        let z2 = a.register_zone(far_zone());

        let (b, rep) = recovered(backend);
        assert!(rep.snapshot_loaded);
        assert_eq!(rep.records_applied, 2, "snapshot + one zone");
        assert_eq!(b.snapshot(), a.snapshot());
        assert!(b.zone(z2).is_some());
        let _ = before; // journal size depends on key sizes; equivalence is what matters
    }

    #[test]
    fn torn_tail_is_discarded_and_prefix_recovered() {
        let backend = Arc::new(MemBackend::new());
        let (a, _) = recovered(Arc::clone(&backend));
        let d = registered(&a);
        a.register_zone(far_zone());
        drop(a);
        // Crash mid-append: shear a few bytes off the final record.
        let len = backend.len();
        backend.truncate(len - 3);

        let (b, rep) = recovered(backend);
        assert!(rep.torn_tail);
        assert_eq!(rep.records_applied, 1);
        assert_eq!(b.drone_count(), 1);
        assert_eq!(b.zone_count(), 0, "torn zone record must not apply");
        // The drone record survived intact.
        assert!(b.tee_public_key(d).is_some());
    }

    #[test]
    fn mid_journal_corruption_is_typed_storage_error() {
        let backend = Arc::new(MemBackend::new());
        let (a, _) = recovered(Arc::clone(&backend));
        registered(&a);
        a.register_zone(far_zone());
        drop(a);
        // Flip a bit inside the *first* record's payload: not a torn
        // tail, so recovery must refuse with a typed error.
        backend.flip_bits(16, 0x01);
        let err =
            Auditor::recover(backend, AuditorConfig::default(), auditor_key().clone()).unwrap_err();
        assert!(matches!(err, ProtocolError::Storage(_)), "got {err}");
    }

    #[test]
    fn failed_append_disables_journal_but_keeps_serving() {
        let backend = Arc::new(MemBackend::new());
        let (a, _) = recovered(Arc::clone(&backend));
        registered(&a);
        backend.fail_next_append();
        let z = a.register_zone(far_zone());
        assert!(a.zone(z).is_some(), "in-memory state must not be poisoned");
        assert!(!a.journal_enabled());
        assert!(a.last_journal_error().is_some());
        // Replay sees only what was durably appended before the fault.
        let (b, rep) = recovered(backend);
        assert_eq!(rep.records_applied, 1);
        assert_eq!(b.zone_count(), 0);
    }

    // ------------------------------------------------------- gap verdicts

    #[test]
    fn forged_gap_marker_is_rejected() {
        use alidrone_tee::SignedGapMarker;
        let a = auditor();
        let d = registered(&a);
        let mut sub = submission(d, 5);
        // Signature by the wrong key: verification under T⁺ must fail.
        let sig = operator_key()
            .sign(
                &SignedGapMarker::signing_bytes(
                    Timestamp::from_secs(1.2),
                    Timestamp::from_secs(1.8),
                ),
                HashAlg::Sha1,
            )
            .unwrap();
        sub.poa.push_gap(SignedGapMarker::from_parts(
            Timestamp::from_secs(1.2),
            Timestamp::from_secs(1.8),
            sig,
            HashAlg::Sha1,
        ));
        let rep = a.verify_submission(&sub, Timestamp::EPOCH).unwrap();
        assert_eq!(rep.verdict, Verdict::BadGapMarker { index: 0 });
    }

    #[test]
    fn sample_inside_declared_gap_is_a_contradiction() {
        let a = auditor();
        let d = registered(&a);
        let mut sub = submission(d, 5);
        // Samples sit at t = 0..4; a declared outage over (1.5, 2.5)
        // contains the t = 2 sample.
        sub.poa.push_gap(crate::test_support::signed_gap(1.5, 2.5));
        let rep = a.verify_submission(&sub, Timestamp::EPOCH).unwrap();
        assert_eq!(rep.verdict, Verdict::GapContradiction { index: 2 });
    }

    #[test]
    fn declared_gap_weakens_sufficiency_margin() {
        let a = auditor();
        let d = registered(&a);
        a.register_zone(far_zone());
        // The gap (1.1, 1.9) lies inside pair 1's interval [1, 2].
        let pair1_margin = |rep: &VerificationReport| {
            rep.sufficiency
                .as_ref()
                .expect("pipeline reached step 7")
                .pairs[1]
                .margin_m
        };
        let clean = a
            .verify_submission(&submission(d, 5), Timestamp::EPOCH)
            .unwrap();
        assert!(clean.is_compliant());
        // Same trace with a declared outage strictly between two samples:
        // the overlapping pair's budget inflates by v_max · 0.8 s.
        let mut sub = submission(d, 5);
        sub.poa.push_gap(crate::test_support::signed_gap(1.1, 1.9));
        let gapped = a.verify_submission(&sub, Timestamp::EPOCH).unwrap();
        let penalty = pair1_margin(&clean) - pair1_margin(&gapped);
        let expected = FAA_MAX_SPEED.mps() * 0.8;
        assert!(
            (penalty - expected).abs() < 1e-6,
            "margin penalty {penalty} m, expected {expected} m"
        );
    }

    // -------------------------------------------------- audit transparency

    use crate::audit::{verify_consistency, verify_inclusion};

    #[test]
    fn tree_head_and_proofs_verify_offline() {
        let a = auditor();
        let d1 = registered(&a);
        let d2 = registered(&a);
        a.register_zone(far_zone());
        a.verify_submission(&submission(d1, 5), Timestamp::EPOCH)
            .unwrap();
        let sth1 = a.signed_tree_head().unwrap();
        assert!(sth1.verify(auditor_key().public_key()));
        assert_eq!(sth1.size, a.audit_tree_size());

        a.verify_submission(&submission(d2, 5), Timestamp::EPOCH)
            .unwrap();
        a.verify_submission(&submission(d1, 6), Timestamp::EPOCH)
            .unwrap();
        let sth2 = a.signed_tree_head().unwrap();
        assert!(sth2.verify(auditor_key().public_key()));
        assert!(sth2.size > sth1.size);
        // A tree head from the wrong key must not verify.
        assert!(!sth2.verify(operator_key().public_key()));

        // Inclusion of each drone's latest verdict, checked with the
        // pure offline verifier — no auditor trust involved.
        for d in [d1, d2] {
            let proof = a.audit_inclusion_proof(d, 0).unwrap();
            assert_eq!(proof.size, sth2.size);
            assert!(verify_inclusion(
                &proof.leaf,
                proof.index,
                proof.size,
                &proof.path,
                &sth2.root,
            ));
            // Same proof against the wrong root must fail.
            assert!(!verify_inclusion(
                &proof.leaf,
                proof.index,
                proof.size,
                &proof.path,
                &sth1.root,
            ));
        }

        // Append-only ordering between the two observed heads.
        let cons = a.audit_consistency_proof(sth1.size, sth2.size).unwrap();
        assert!(verify_consistency(
            cons.old_size,
            cons.new_size,
            &cons.path,
            &sth1.root,
            &sth2.root,
        ));

        // No verdict stored for a fresh drone: typed error.
        let d3 = registered(&a);
        assert!(matches!(
            a.audit_inclusion_proof(d3, 0),
            Err(ProtocolError::PoaNotFound)
        ));
    }

    #[test]
    fn tee_countersigned_tree_head_verifies() {
        use alidrone_tee::{CostModel, SecureWorldBuilder, GPS_SAMPLER_UUID};
        let world = SecureWorldBuilder::new()
            .with_sign_key(tee_key().clone())
            .with_cost_model(CostModel::free())
            .with_hash_alg(HashAlg::Sha256)
            .build()
            .unwrap();
        let client = world.client();

        let a = auditor();
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        assert!(
            a.set_checkpoint_countersigner(Arc::new(move |bytes: &[u8]| {
                session.sign_checkpoint(bytes).ok()
            }))
        );

        let d = registered(&a);
        a.verify_submission(&submission(d, 5), Timestamp::EPOCH)
            .unwrap();
        let sth = a.signed_tree_head().unwrap();
        assert!(sth.verify(auditor_key().public_key()));
        assert!(
            sth.verify_countersignature(&client.tee_public_key()),
            "enclave countersignature must verify under T⁺"
        );
        // The countersignature binds this exact head: not some other key.
        assert!(!sth.verify_countersignature(operator_key().public_key()));
    }

    fn checkpoint_config() -> AuditorConfig {
        AuditorConfig {
            checkpoint_interval: 2,
            ..AuditorConfig::default()
        }
    }

    #[test]
    fn checkpoints_are_journaled_and_survive_recovery() {
        let backend = Arc::new(MemBackend::new());
        let (a, _) =
            Auditor::recover(backend.clone(), checkpoint_config(), auditor_key().clone()).unwrap();
        let d = registered(&a);
        a.register_zone(far_zone());
        for i in 0..4 {
            a.verify_submission(&submission(d, 5 + i), Timestamp::EPOCH)
                .unwrap();
        }
        let sth = a.signed_tree_head().unwrap();

        let (b, rep) =
            Auditor::recover(backend.clone(), checkpoint_config(), auditor_key().clone()).unwrap();
        // Checkpoint records were journaled alongside the six audited
        // records (2 registrations + 4 verdicts, interval 2 → 3 due).
        assert!(rep.records_applied > 6, "applied {}", rep.records_applied);
        let sth_b = b.signed_tree_head().unwrap();
        assert_eq!(sth_b.size, sth.size);
        assert_eq!(sth_b.root, sth.root);
        assert_eq!(sth_b.chain_head, sth.chain_head);
    }

    #[test]
    fn crash_at_every_offset_around_checkpoint_restores_exact_chain_head() {
        let backend = Arc::new(MemBackend::new());
        let (a, _) =
            Auditor::recover(backend.clone(), checkpoint_config(), auditor_key().clone()).unwrap();
        let d = registered(&a);
        a.register_zone(far_zone());
        // Record the (size, chain head) frontier after every audited
        // append so any recovered prefix can be checked exactly.
        let mut frontier = vec![{
            let sth = a.signed_tree_head().unwrap();
            (sth.size, sth.chain_head)
        }];
        let before_checkpoint = backend.len();
        // Third audited record: crosses interval 2, so this append
        // carries a Merkle checkpoint record in the same batch.
        a.verify_submission(&submission(d, 5), Timestamp::EPOCH)
            .unwrap();
        let sth = a.signed_tree_head().unwrap();
        frontier.push((sth.size, sth.chain_head));
        let after_checkpoint = backend.len();
        drop(a);

        let bytes = backend.bytes();
        for cut in before_checkpoint..=after_checkpoint {
            let truncated = Arc::new(MemBackend::with_bytes(bytes[..cut].to_vec()));
            let (b, rep) = Auditor::recover(truncated, checkpoint_config(), auditor_key().clone())
                .unwrap_or_else(|e| panic!("recovery at cut {cut} failed: {e}"));
            let sth = b.signed_tree_head().unwrap();
            assert!(
                frontier.contains(&(sth.size, sth.chain_head)),
                "cut {cut}: recovered head (size {}) not on the honest frontier \
                 (torn_tail={})",
                sth.size,
                rep.torn_tail,
            );
        }
    }

    #[test]
    fn consistency_proofs_span_compaction() {
        let backend = Arc::new(MemBackend::new());
        let (a, _) =
            Auditor::recover(backend.clone(), checkpoint_config(), auditor_key().clone()).unwrap();
        let d = registered(&a);
        a.register_zone(far_zone());
        a.verify_submission(&submission(d, 5), Timestamp::EPOCH)
            .unwrap();
        let sth1 = a.signed_tree_head().unwrap();

        a.compact_journal().unwrap();
        a.verify_submission(&submission(d, 6), Timestamp::EPOCH)
            .unwrap();
        let sth2 = a.signed_tree_head().unwrap();

        // The chain spans the snapshot: a consistency proof between a
        // pre-compaction head and a post-compaction head still verifies.
        let cons = a.audit_consistency_proof(sth1.size, sth2.size).unwrap();
        assert!(verify_consistency(
            cons.old_size,
            cons.new_size,
            &cons.path,
            &sth1.root,
            &sth2.root,
        ));

        // And the whole audit state survives recovery from the
        // compacted journal — including the verdict index.
        let (b, rep) =
            Auditor::recover(backend, checkpoint_config(), auditor_key().clone()).unwrap();
        assert!(rep.snapshot_loaded);
        let sth_b = b.signed_tree_head().unwrap();
        assert_eq!((sth_b.size, sth_b.root), (sth2.size, sth2.root));
        let cons = b.audit_consistency_proof(sth1.size, 0).unwrap();
        assert!(verify_consistency(
            cons.old_size,
            cons.new_size,
            &cons.path,
            &sth1.root,
            &sth_b.root,
        ));
        let proof = b.audit_inclusion_proof(d, 0).unwrap();
        assert!(verify_inclusion(
            &proof.leaf,
            proof.index,
            proof.size,
            &proof.path,
            &sth_b.root,
        ));
    }
}
