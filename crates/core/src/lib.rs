//! The AliDrone Proof-of-Alibi protocol.
//!
//! This crate is the paper's primary contribution (ICDCS 2018, §III–§IV):
//! a protocol by which a drone proves to a third-party **Auditor** that it
//! never entered any no-fly zone (NFZ) during a flight, even though the
//! **Drone Operator** — who controls every piece of software outside the
//! TEE — is the adversary.
//!
//! # Roles
//!
//! * [`Auditor`] — registers drones and zones, answers zone queries,
//!   verifies submitted Proofs-of-Alibi, and retains them for later
//!   accusations by zone owners.
//! * [`DroneOperator`] — owns the operator keypair `D = (D⁺, D⁻)` and the
//!   drone's TEE handle; queries zones before flying, runs the Adapter
//!   sampling loop during flight, submits the PoA afterwards.
//! * [`ZoneOwner`] — registers a (circular or polygonal) NFZ over their
//!   property and may report sighted drones.
//!
//! # Protocol steps (paper §IV-B)
//!
//! * Step 0 — **drone registration**: operator submits `D⁺` and the TEE
//!   verification key `T⁺`; auditor issues `id_drone`.
//! * Step 1 — **zone registration**: zone owner submits `z = (lat, lon, r)`;
//!   auditor issues `id_zone`.
//! * Steps 2–3 — **zone query/response**: operator sends a signed-nonce
//!   query for a rectangular navigation area; auditor returns the NFZs
//!   inside it.
//! * Step 4 — **PoA submission**: after the flight the operator submits
//!   `PoA = {(Sᵢ, Sig(Sᵢ, T⁻))}`; the auditor verifies signatures,
//!   timestamps, physical feasibility, and alibi sufficiency (eq. 1).
//!
//! # Sampling
//!
//! [`sampling`] implements both the paper's Algorithm 1
//! ([`sampling::AdaptiveSampler`]) and the fixed-rate baseline with
//! wait-for-update semantics ([`sampling::FixedRateSampler`]);
//! [`run_flight`] drives either against a simulated receiver + TEE and
//! produces the metrics the evaluation section plots.
//!
//! # Extensions (paper §VII)
//!
//! * [`privacy`] — one-time-key encrypted PoAs with selective disclosure.
//! * [`symmetric`] — per-flight DH-established HMAC keys instead of
//!   per-sample RSA.
//! * Batch signing lives in the TEE crate
//!   ([`alidrone_tee::SignedTrace`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod auditor;
mod error;
mod flight;
mod identity;
mod messages;
mod operator;
mod poa;
#[cfg(test)]
mod test_support;
mod zone_owner;

pub mod audit;
pub mod cache;
pub mod journal;
pub mod privacy;
pub mod repl;
pub mod sampling;
pub mod symmetric;
pub mod verify_pool;
pub mod wire;

pub use auditor::{
    AccusationOutcome, Auditor, AuditorConfig, RecoveryReport, StoredPoa, Verdict,
    VerificationReport,
};
pub use error::ProtocolError;
pub use flight::{
    run_flight, run_flight_with_hook, run_flight_with_obs, FlightRecord, SampleEvent,
    SamplingStrategy,
};
pub use identity::{DroneId, ZoneId};
pub use messages::{Accusation, PoaSubmission, Submission, ZoneQuery, ZoneResponse};
pub use operator::DroneOperator;
pub use poa::{EncryptedPoa, ProofOfAlibi};
pub use zone_owner::ZoneOwner;
