//! Bounded caches for the verification hot path.
//!
//! Two users inside the auditor (DESIGN.md §12):
//!
//! * a verify-result cache mapping `(key fingerprint, message hash,
//!   signature hash, hash alg)` to the signature verdict, so identical
//!   resubmissions — retries after a lost response, duplicate PoA
//!   uploads — skip the RSA exponentiation entirely;
//! * zone-snapshot / zone-query caches keyed by a registry *generation*
//!   that every zone mutation bumps, so invalidation is a single atomic
//!   increment and stale entries can never be served (they simply stop
//!   matching and age out of the LRU).
//!
//! Everything is `std`-only and bounded: a cache miss costs one map
//! lookup, and the memory ceiling is `capacity × entry size` regardless
//! of how adversarial the key stream is.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use alidrone_crypto::rsa::{HashAlg, RsaVerifier};
use alidrone_crypto::sha256::sha256;
use alidrone_obs::{Counter, Obs};

/// A bounded least-recently-used map.
///
/// Recency is tracked with a monotonic tick per access; eviction removes
/// the entry with the smallest tick. Both `get` and `insert` are
/// `O(log capacity)`. Not thread-safe — wrap in a `Mutex` (see
/// [`VerifyResultCache`]) to share.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    /// tick → key, ordered oldest-first for eviction.
    order: BTreeMap<u64, K>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let tick = self.next_tick();
        match self.map.get_mut(key) {
            Some((_, old)) => {
                self.order.remove(old);
                self.order.insert(tick, key.clone());
                *old = tick;
                self.map.get(key).map(|(v, _)| v)
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        let tick = self.next_tick();
        if let Some((_, old)) = self.map.remove(&key) {
            self.order.remove(&old);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&oldest) {
                    self.map.remove(&victim);
                }
            }
        }
        self.order.insert(tick, key.clone());
        self.map.insert(key, (value, tick));
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Cache key for one signature check: key fingerprint, SHA-256 of the
/// message, SHA-256 of the signature, and the hash algorithm tag.
type VerifyKey = ([u8; 32], [u8; 32], [u8; 32], u8);

/// A shared, bounded cache of signature-check outcomes.
///
/// Keyed by the verifier's [fingerprint](RsaVerifier::fingerprint) plus
/// hashes of message and signature, so a hit requires the *same* key,
/// bytes, and algorithm — any tampering changes the key and misses.
/// Both outcomes are cached: a forged signature resubmitted in a retry
/// storm costs one lookup, not one exponentiation per attempt.
#[derive(Debug)]
pub struct VerifyResultCache {
    inner: Mutex<LruCache<VerifyKey, bool>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl VerifyResultCache {
    /// Creates a cache bounded to `capacity` outcomes, with hit/miss
    /// counters `auditor.verify_cache.{hits,misses}` on `obs`.
    pub fn new(capacity: usize, obs: &Obs) -> Self {
        VerifyResultCache {
            inner: Mutex::new(LruCache::new(capacity)),
            hits: obs.counter("auditor.verify_cache.hits"),
            misses: obs.counter("auditor.verify_cache.misses"),
        }
    }

    /// Checks `sig` over `msg` under `verifier`, consulting the cache
    /// first. Returns `true` when the signature verifies.
    pub fn check(&self, verifier: &RsaVerifier, msg: &[u8], sig: &[u8], alg: HashAlg) -> bool {
        let key: VerifyKey = (
            *verifier.fingerprint(),
            sha256(msg),
            sha256(sig),
            match alg {
                HashAlg::Sha1 => 1,
                HashAlg::Sha256 => 2,
            },
        );
        // Invariant: lock holders only touch the map, never panic
        // mid-mutation of anything observable, so a poisoned lock still
        // guards sound data.
        if let Some(&hit) = self
            .inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            self.hits.add(1);
            return hit;
        }
        self.misses.add(1);
        let ok = verifier.verify(msg, sig, alg).is_ok();
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, ok);
        ok
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drops every cached outcome (used by chaos tests to prove verdicts
    /// do not depend on cache state).
    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_crypto::rng::XorShift64;
    use alidrone_crypto::rsa::RsaPrivateKey;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh "a"
        c.insert("c", 3); // evicts "b"
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_insert_refreshes_existing_key() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh, not a new entry
        c.insert("c", 3); // evicts "b" (oldest), not "a"
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn lru_capacity_clamped_to_one() {
        let mut c = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, "x");
        c.insert(2, "y");
        assert_eq!(c.len(), 1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&"y"));
    }

    #[test]
    fn verify_cache_hits_on_resubmission_and_caches_failures() {
        let mut rng = XorShift64::seed_from_u64(3);
        let key = RsaPrivateKey::generate(512, &mut rng);
        let verifier = key.public_key().verifier();
        let sig = key.sign(b"msg", HashAlg::Sha1).unwrap();
        let cache = VerifyResultCache::new(16, &Obs::noop());

        assert!(cache.check(&verifier, b"msg", &sig, HashAlg::Sha1));
        assert!(cache.check(&verifier, b"msg", &sig, HashAlg::Sha1));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // A tampered signature misses (different key) and caches `false`.
        let mut bad = sig.clone();
        bad[0] ^= 1;
        assert!(!cache.check(&verifier, b"msg", &bad, HashAlg::Sha1));
        assert!(!cache.check(&verifier, b"msg", &bad, HashAlg::Sha1));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));

        // Same bytes under a different algorithm tag is a different key.
        assert!(!cache.check(&verifier, b"msg", &sig, HashAlg::Sha256));
        assert_eq!(cache.misses(), 3);

        cache.clear();
        assert!(cache.check(&verifier, b"msg", &sig, HashAlg::Sha1));
        assert_eq!(cache.misses(), 4);
    }
}
