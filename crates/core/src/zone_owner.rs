//! The Zone Owner role.

use alidrone_geo::polygon::PolygonZone;
use alidrone_geo::{GeoError, NoFlyZone, Timestamp};

use crate::auditor::Auditor;
use crate::messages::Accusation;
use crate::{DroneId, ZoneId};

/// A property owner who registers a no-fly zone over their land and may
/// report sighted drones (paper §III-A).
#[derive(Debug, Clone)]
pub struct ZoneOwner {
    zone: NoFlyZone,
    zone_id: Option<ZoneId>,
}

impl ZoneOwner {
    /// Creates an owner of a circular property zone.
    pub fn new(zone: NoFlyZone) -> Self {
        ZoneOwner {
            zone,
            zone_id: None,
        }
    }

    /// Creates an owner of a polygonal property; the zone stored is the
    /// polygon's smallest enclosing circle (§VII-B2).
    ///
    /// # Errors
    ///
    /// Propagates degenerate-polygon errors.
    pub fn with_polygon(polygon: &PolygonZone) -> Result<Self, GeoError> {
        Ok(ZoneOwner {
            zone: polygon.enclosing_zone(),
            zone_id: None,
        })
    }

    /// The property zone.
    pub fn zone(&self) -> &NoFlyZone {
        &self.zone
    }

    /// The issued zone id, if registered.
    pub fn zone_id(&self) -> Option<ZoneId> {
        self.zone_id
    }

    /// Step 1 — registers the zone with the auditor.
    pub fn register_with(&mut self, auditor: &Auditor) -> ZoneId {
        let id = auditor.register_zone(self.zone);
        self.zone_id = Some(id);
        id
    }

    /// Builds an accusation: "I saw `drone_id` near my zone at `time`".
    ///
    /// Returns `None` when the owner has not registered a zone yet (there
    /// is nothing to accuse against).
    pub fn report(&self, drone_id: DroneId, time: Timestamp) -> Option<Accusation> {
        Some(Accusation {
            zone_id: self.zone_id?,
            drone_id,
            time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::AuditorConfig;
    use crate::test_support::{auditor_key, origin};
    use alidrone_geo::{Distance, GeoPoint};

    fn owner() -> ZoneOwner {
        ZoneOwner::new(NoFlyZone::new(origin(), Distance::from_meters(20.0)))
    }

    #[test]
    fn registration_issues_id() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let mut o = owner();
        assert!(o.zone_id().is_none());
        assert!(o.report(DroneId::new(1), Timestamp::EPOCH).is_none());
        let id = o.register_with(&auditor);
        assert_eq!(o.zone_id(), Some(id));
        assert!(auditor.zone(id).is_some());
    }

    #[test]
    fn report_carries_ids_and_time() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let mut o = owner();
        let zid = o.register_with(&auditor);
        let acc = o
            .report(DroneId::new(9), Timestamp::from_secs(55.0))
            .unwrap();
        assert_eq!(acc.zone_id, zid);
        assert_eq!(acc.drone_id, DroneId::new(9));
        assert!((acc.time.secs() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn polygon_owner_registers_enclosing_circle() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let verts: Vec<GeoPoint> = [0.0, 90.0, 180.0, 270.0]
            .iter()
            .map(|&b| origin().destination(b, Distance::from_meters(30.0)))
            .collect();
        let poly = PolygonZone::new(verts).unwrap();
        let mut o = ZoneOwner::with_polygon(&poly).unwrap();
        let id = o.register_with(&auditor);
        let stored = auditor.zone(id).unwrap();
        assert!((stored.radius().meters() - 30.0).abs() < 0.5);
    }
}
