//! Shared fixtures for this crate's unit tests.

use std::sync::OnceLock;

use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone_geo::{Distance, GeoPoint, GpsSample, Timestamp};
use alidrone_tee::{SignedGapMarker, SignedSample};

/// 512-bit keys are test-size: keygen and signing in debug builds must
/// stay fast. Each role gets a distinct cached key.
fn cached_key(cell: &'static OnceLock<RsaPrivateKey>, seed: u64) -> &'static RsaPrivateKey {
    cell.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(seed);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

/// The drone TEE sign key `T`.
pub(crate) fn tee_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    cached_key(&KEY, 0xD201)
}

/// The auditor's encryption keypair.
pub(crate) fn auditor_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    cached_key(&KEY, 0xA0D1)
}

/// The drone operator's keypair `D`.
pub(crate) fn operator_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    cached_key(&KEY, 0x09E0)
}

/// Common test origin.
pub(crate) fn origin() -> GeoPoint {
    GeoPoint::new(40.1, -88.2).expect("valid test origin")
}

/// A well-formed eastbound trace at 10 m/s, one sample per second,
/// signed with [`tee_key`].
pub(crate) fn signed_samples(n: usize) -> Vec<SignedSample> {
    (0..n)
        .map(|i| {
            let sample = GpsSample::new(
                origin().destination(90.0, Distance::from_meters(10.0 * i as f64)),
                Timestamp::from_secs(i as f64),
            );
            let sig = tee_key()
                .sign(&sample.to_bytes(), HashAlg::Sha1)
                .expect("test signing");
            SignedSample::from_parts(sample, sig, HashAlg::Sha1)
        })
        .collect()
}

/// A gap marker over `[start, end]` seconds, signed with [`tee_key`].
pub(crate) fn signed_gap(start: f64, end: f64) -> SignedGapMarker {
    let (start, end) = (Timestamp::from_secs(start), Timestamp::from_secs(end));
    let sig = tee_key()
        .sign(&SignedGapMarker::signing_bytes(start, end), HashAlg::Sha1)
        .expect("test signing");
    SignedGapMarker::from_parts(start, end, sig, HashAlg::Sha1)
}
