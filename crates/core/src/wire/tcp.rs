//! Networked serving over `std::net`: the paper's Fig. 4 deployment,
//! where drones reach the AliDrone Server through a socket.
//!
//! # Framing
//!
//! Both directions carry the existing codec frames unchanged, one per
//! length-prefixed TCP message:
//!
//! ```text
//! request:  | u32 len (BE) | f64 now_secs (BE) | request frame… |
//! response: | u32 len (BE) | response frame…                    |
//! ```
//!
//! The `request frame` is byte-for-byte what [`AuditorServer::handle`]
//! accepts in-process — bare or wrapped in the `0xE7` trace envelope —
//! so verdicts, PoA outcomes, and stitched traces are identical over
//! TCP and over [`InProcess`](crate::wire::transport::InProcess). The
//! `now_secs` prologue carries the caller's (possibly simulated) clock
//! in-frame, keeping simulation runs deterministic across the socket.
//!
//! # Threading model
//!
//! [`TcpServer`] runs one accept thread plus a bounded worker pool
//! ([`ServeConfig::workers`](crate::wire::server::ServeConfig)); each accepted connection is handed to
//! one worker, which owns it for its lifetime and streams frames
//! sequentially (concurrency comes from connections, not from frames
//! within one). Workers set per-connection read/write timeouts from
//! [`ServeConfig`](crate::wire::server::ServeConfig); an idle read timeout between frames is the
//! shutdown-check point, while a stall *mid-frame* drops the
//! connection. [`TcpServer::shutdown`] drains: in-flight requests
//! finish and their responses are written before threads join.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use alidrone_geo::Timestamp;
use alidrone_obs::{Counter, Level, Obs};

use crate::wire::server::AuditorServer;
use crate::wire::transport::Transport;
use crate::ProtocolError;

/// Hard cap on one TCP message body (matches the codec's own limit).
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How often blocked accept/worker loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

// ---------------------------------------------------------------- framing

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Blocking read of one length-prefixed frame (client side: the socket
/// read timeout bounds the wait).
fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 16 MiB cap",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Pops one complete frame body off the front of `buf`, if present.
fn extract_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, io::Error> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 16 MiB cap",
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let body = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(body))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// -------------------------------------------------------------- TcpServer

/// A listening front end serving one shared [`AuditorServer`] over TCP.
///
/// Created with [`TcpServer::bind`]; serving starts immediately on
/// background threads. Dropping the handle shuts down gracefully, or
/// call [`shutdown`](TcpServer::shutdown) explicitly to join the
/// threads and observe completion.
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an OS-assigned loopback port) and
    /// starts serving `server` with the worker count and timeouts from
    /// its [`ServeConfig`](crate::wire::server::ServeConfig).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, server: Arc<AuditorServer>) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe shutdown without
        // a wake-up connection.
        listener.set_nonblocking(true)?;

        let cfg = server.serve_config();
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = server.obs().counter("server.connections");
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let server = Arc::clone(&server);
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || loop {
                    let next = match rx.lock() {
                        Ok(queue) => queue.recv_timeout(POLL_INTERVAL),
                        // A sibling worker panicked while holding the
                        // queue: treat it like a closed queue and exit
                        // instead of cascading the panic pool-wide.
                        Err(_) => break,
                    };
                    match next {
                        Ok(stream) => {
                            if let Err(e) = serve_connection(&server, stream, &shutdown, &cfg) {
                                server.obs().emit(
                                    Level::Warn,
                                    "wire.tcp",
                                    "connection_error",
                                    |f| {
                                        f.field("error", e.to_string());
                                    },
                                );
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                        // Accept loop gone and queue drained.
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = thread::spawn(move || {
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        connections.inc();
                        // Workers use blocking reads with timeouts.
                        if stream.set_nonblocking(false).is_ok() && tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(ref e) if is_timeout(e) => thread::sleep(POLL_INTERVAL),
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
            // Dropping `tx` lets idle workers exit once the queue is dry.
        });

        Ok(TcpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stops accepting, lets workers finish (and
    /// answer) every request already received, then joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one connection until the peer closes, shutdown drains it, or
/// an error/mid-frame stall drops it.
fn serve_connection(
    server: &AuditorServer,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    cfg: &crate::wire::server::ServeConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout.max(POLL_INTERVAL)))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 8192];
    loop {
        // Serve every complete frame already received — including after
        // shutdown, so in-flight requests drain with responses.
        while let Some(body) = extract_frame(&mut buf)? {
            let response = handle_framed(server, &body);
            write_frame(&mut stream, &response)?;
        }
        if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            return Ok(());
        }
        match stream.read(&mut tmp) {
            // Peer closed; a partial trailing frame is a peer bug but
            // not ours to report.
            Ok(0) => return Ok(()),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(ref e) if is_timeout(e) && buf.is_empty() => {
                // Idle between frames: loop around to re-check shutdown.
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Mid-frame stall or hard error: drop the connection.
            Err(e) => return Err(e),
        }
    }
}

/// Unpacks the `now_secs` prologue and hands the frame to the server.
/// A body too short to carry the prologue is fed through anyway so it
/// lands in the server's malformed-frame accounting.
fn handle_framed(server: &AuditorServer, body: &[u8]) -> Vec<u8> {
    match body.get(..8) {
        Some(prologue) => {
            // Invariant: `get(..8)` returned `Some`, so the slice is
            // exactly 8 bytes and the conversion cannot fail.
            let now = f64::from_be_bytes(prologue.try_into().expect("8-byte slice"));
            server.handle(&body[8..], Timestamp::from_secs(now))
        }
        None => server.handle(body, Timestamp::from_secs(0.0)),
    }
}

// ------------------------------------------------------------ TcpTransport

/// A client-side [`Transport`] over one TCP connection.
///
/// Connects lazily on the first call and keeps the stream behind a
/// mutex, so the transport is `Send + Sync`; calls on one transport
/// serialise (use one transport per thread for parallelism — the
/// server end is concurrent across connections).
///
/// A write failure on a *reused* stream means the pooled connection
/// died since the last call (server restart, idle drop): the transport
/// reconnects once and resends, emitting `transport.reconnects`. A
/// *read* failure is never resent here — whether the request executed
/// is unknown, so the typed error surfaces and only the
/// [`AuditorClient`](crate::wire::transport::AuditorClient) retry
/// layer, which knows idempotency, may resend.
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    stream: Mutex<Option<TcpStream>>,
    read_timeout: Duration,
    write_timeout: Duration,
    calls: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    reconnects: Arc<Counter>,
    obs: Obs,
}

impl TcpTransport {
    /// A transport for `addr` (untraced; connects on first use).
    pub fn new(addr: SocketAddr) -> Self {
        TcpTransport::with_obs(addr, &Obs::noop())
    }

    /// As [`new`](Self::new), counting traffic into `obs` under the
    /// same `transport.*` names the in-process transport uses, plus
    /// `transport.reconnects`.
    pub fn with_obs(addr: SocketAddr, obs: &Obs) -> Self {
        TcpTransport {
            addr,
            stream: Mutex::new(None),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            calls: obs.counter("transport.calls"),
            bytes_in: obs.counter("transport.bytes_in"),
            bytes_out: obs.counter("transport.bytes_out"),
            reconnects: obs.counter("transport.reconnects"),
            obs: obs.clone(),
        }
    }

    /// Socket-level read/write timeouts (default 5 s each). An elapsed
    /// read timeout surfaces as [`ProtocolError::Timeout`].
    pub fn timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// The server address this transport dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn connect(&self) -> Result<TcpStream, ProtocolError> {
        let stream = TcpStream::connect(self.addr).map_err(io_to_protocol)?;
        stream
            .set_read_timeout(Some(self.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.write_timeout)))
            .map_err(io_to_protocol)?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }
}

fn io_to_protocol(e: io::Error) -> ProtocolError {
    if is_timeout(&e) {
        ProtocolError::Timeout
    } else {
        ProtocolError::Transport(e.to_string())
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        self.calls.inc();
        self.bytes_in.add(request.len() as u64);
        let mut body = Vec::with_capacity(8 + request.len());
        body.extend_from_slice(&now.secs().to_be_bytes());
        body.extend_from_slice(request);

        let mut guard = self.stream.lock().unwrap_or_else(|poisoned| {
            // A previous call panicked mid-frame, so the pooled stream
            // may hold half-written bytes: drop it and start clean.
            let mut guard = poisoned.into_inner();
            *guard = None;
            guard
        });
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        // Invariant: the branch above just ensured the slot is `Some`.
        let stream = guard.as_mut().expect("stream just ensured");
        if let Err(e) = write_frame(stream, &body) {
            if !reused {
                *guard = None;
                return Err(io_to_protocol(e));
            }
            // Broken pipe on a pooled connection: reconnect and resend.
            // Safe because the request bytes never reached a live
            // server — the failure was on write, not read.
            self.reconnects.inc();
            self.obs.emit(Level::Warn, "wire.tcp", "reconnecting", |f| {
                f.field("error", e.to_string());
            });
            *guard = Some(self.connect()?);
            // Invariant: the line above just stored a fresh stream.
            write_frame(guard.as_mut().expect("fresh stream"), &body).map_err(|e| {
                *guard = None;
                io_to_protocol(e)
            })?;
        }
        // Invariant: every error path above returned early, and every
        // surviving path left a connected stream in the slot.
        match read_frame(guard.as_mut().expect("stream present")) {
            Ok(response) => {
                self.bytes_out.add(response.len() as u64);
                Ok(response)
            }
            Err(e) => {
                // The response is lost and the stream state unknown:
                // drop it so the next call starts clean.
                *guard = None;
                Err(io_to_protocol(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{Auditor, AuditorConfig};
    use crate::test_support::{auditor_key, operator_key, origin, tee_key};
    use crate::wire::transport::AuditorClient;
    use crate::wire::{ErrorCode, Request, Response};
    use alidrone_geo::{Distance, NoFlyZone};

    fn spawn_server(workers: usize) -> (TcpServer, Arc<AuditorServer>, Obs) {
        let obs = Obs::noop();
        let server = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .obs(&obs)
            .workers(workers)
            .read_timeout(Duration::from_millis(200))
            .build(),
        );
        let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).unwrap();
        (tcp, server, obs)
    }

    fn now() -> Timestamp {
        Timestamp::from_secs(42.0)
    }

    #[test]
    fn register_and_query_over_loopback() {
        let (tcp, server, _obs) = spawn_server(2);
        let mut client = AuditorClient::new(TcpTransport::new(tcp.local_addr()));
        let id = client
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let zid = client
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(25.0)), now())
            .unwrap();
        assert_eq!(server.auditor().drone_count(), 1);
        assert_eq!(server.auditor().zone_count(), 1);
        let zones = client
            .query_rect(
                id,
                origin().destination(225.0, Distance::from_km(1.0)),
                origin().destination(45.0, Distance::from_km(1.0)),
                [7u8; 16],
                operator_key(),
                now(),
            )
            .unwrap();
        assert_eq!(zones.len(), 1);
        assert_eq!(zones[0].0, zid);
        tcp.shutdown();
    }

    #[test]
    fn malformed_tcp_body_gets_an_error_response() {
        let (tcp, _server, obs) = spawn_server(1);
        let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Too short to even carry the now-prologue.
        write_frame(&mut stream, &[0xAB, 0xCD]).unwrap();
        let resp = Response::from_bytes(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
        assert_eq!(obs.snapshot().counter("server.malformed_frames"), 1);
        tcp.shutdown();
    }

    #[test]
    fn now_prologue_carries_the_callers_clock() {
        // The server stores PoAs stamped with the *request's* timestamp,
        // not its own wall clock — submit at a chosen sim time and check
        // the retention boundary honours it.
        let (tcp, server, _obs) = spawn_server(1);
        let mut client = AuditorClient::new(TcpTransport::new(tcp.local_addr()));
        let id = client
            .register_drone(
                operator_key().public_key().clone(),
                tee_public(),
                Timestamp::from_secs(0.0),
            )
            .unwrap();
        let poa = crate::ProofOfAlibi::from_entries(crate::test_support::signed_samples(3));
        client
            .submit_poa(
                id,
                (Timestamp::from_secs(0.0), Timestamp::from_secs(2.0)),
                &poa,
                Timestamp::from_secs(1_000.0),
            )
            .unwrap();
        let stored = server.auditor().latest_stored(id).unwrap();
        assert_eq!(stored.stored_at, Timestamp::from_secs(1_000.0));
        tcp.shutdown();
    }

    fn tee_public() -> alidrone_crypto::rsa::RsaPublicKey {
        tee_key().public_key().clone()
    }

    #[test]
    fn connection_counter_and_multiple_clients() {
        let (tcp, server, obs) = spawn_server(2);
        for _ in 0..3 {
            let mut client = AuditorClient::new(TcpTransport::new(tcp.local_addr()));
            client
                .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                .unwrap();
        }
        assert_eq!(server.auditor().zone_count(), 3);
        tcp.shutdown();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.connections"), 3);
        assert_eq!(snap.counter("server.requests"), 3);
    }

    #[test]
    fn transport_reconnects_after_server_restart_on_same_port() {
        let (tcp, _server, _obs) = spawn_server(1);
        let addr = tcp.local_addr();
        let obs = Obs::noop();
        let transport = TcpTransport::with_obs(addr, &obs);
        let req = Request::RegisterZone {
            zone: NoFlyZone::new(origin(), Distance::from_meters(10.0)),
        };
        transport.call(&req.to_bytes(), now()).unwrap();

        // Kill the server; the pooled stream is now dead.
        tcp.shutdown();
        let server2 = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .build(),
        );
        let tcp2 = TcpServer::bind(addr, Arc::clone(&server2)).unwrap();

        // The first call may surface the stale-stream failure (written
        // bytes vanished into the dead socket's buffer); the transport
        // reconnects on the write-failure path or drops the stream on
        // the read-failure path, so a bounded number of calls must get
        // through without constructing a new transport.
        let mut ok = false;
        for _ in 0..3 {
            if transport.call(&req.to_bytes(), now()).is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "transport never recovered after server restart");
        assert!(server2.auditor().zone_count() >= 1);
        tcp2.shutdown();
    }

    #[test]
    fn graceful_shutdown_answers_inflight_requests() {
        let (tcp, server, _obs) = spawn_server(2);
        let addr = tcp.local_addr();
        // Park a request on the wire, then shut down while it is being
        // handled: the response must still arrive.
        let handle = thread::spawn(move || {
            let mut client = AuditorClient::new(TcpTransport::new(addr));
            client.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
        });
        // Give the request time to hit a worker, then drain.
        thread::sleep(Duration::from_millis(50));
        tcp.shutdown();
        handle.join().unwrap().unwrap();
        assert_eq!(server.auditor().zone_count(), 1);
    }
}
